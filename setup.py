"""Legacy setup shim.

Kept so ``pip install -e .`` works on machines without the ``wheel``
package (offline environments): with no ``[build-system]`` table in
pyproject.toml and this file present, pip uses the legacy editable path.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
