"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one solution on one workload, print the summary;
* ``compare`` — run several solutions on one workload, print the
  normalized table (Fig. 4's presentation);
* ``list`` — show the available solutions and workloads;
* ``trace`` — query the migration-provenance log of a ``--obs`` run
  ("why did page N move?"), or tail a live stream with ``--follow``;
* ``watch`` — live dashboard over a streaming (``--obs-stream``) run,
  from its NDJSON file or as a listening socket server (``--connect``);
* ``report`` — summarize an observability export (event counts,
  metrics; ``--json`` for scripts, with the ping-pong summary folded in
  when an analytics store exists);
* ``query`` — columnar analytics over an artifact directory: ingests it
  into ``analytics.npz`` on first use, then answers dwell-time,
  top-K hot pages, lifecycle funnel, ping-pong, or generic
  filter/group/top-N table queries;
* ``diff`` — compare two runs metric-by-metric (deltas, bootstrap CIs,
  verdicts, optional ``--html`` report), or ``--bench`` to check the
  newest ``BENCH_history.jsonl`` record against earlier entries;
* ``serve`` — the fault-tolerant sweep scheduler daemon: lease-based
  cell assignment, crash-safe result cache, journal-backed resume;
* ``worker`` — one fleet member serving cells for a ``serve`` daemon;
* ``submit`` — hand a workload x solution matrix job to a daemon and
  print the assembled table;
* ``fleet`` — live fleet dashboard over a ``serve`` daemon (wire poll
  with ``--connect``, or tail its ``--obs-stream`` NDJSON).

``run`` and ``compare`` accept ``--obs [--obs-out DIR]`` to record
structured events, phase spans, metrics, and migration provenance, and
export them as a Perfetto-loadable ``trace.json`` plus JSONL sinks;
``--obs-stream``/``--obs-socket`` additionally publish the telemetry
incrementally while the run is live.  Observability never changes
simulated results.

Example::

    python -m repro run --solution mtm --workload gups --intervals 80
    python -m repro compare --workload voltdb --solutions first-touch,mtm
    python -m repro run --solution mtm --workload gups --obs --obs-out out
    python -m repro trace --run out --page 4096
    python -m repro run --solution mtm --workload gups --obs-stream --obs-out out &
    python -m repro watch --run out
"""

from __future__ import annotations

import argparse
import sys

from repro import perfflags
from repro.core.baselines import make_engine, solution_names
from repro.errors import ReproError
from repro.metrics.breakdown import TimeBreakdown
from repro.metrics.report import Table, normalize
from repro.units import format_bytes, format_time
from repro.workloads.registry import WORKLOAD_SPECS, workload_names

DEFAULT_SCALE_DENOM = 256


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", default="gups", choices=workload_names(),
        help="workload from Table 2 (default: gups)",
    )
    parser.add_argument(
        "--intervals", type=int, default=80,
        help="profiling intervals to simulate (default: 80)",
    )
    parser.add_argument(
        "--scale-denominator", type=int, default=DEFAULT_SCALE_DENOM,
        metavar="N", help="machine capacity scale 1/N (default: 256)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--backend", choices=perfflags.BACKENDS, default="vectorized",
        help="hot-path implementation tier: legacy (pre-optimization "
             "Python loops), vectorized (numpy pipelines, the default), "
             "or compiled (repro.kernels: Numba/C where available, "
             "numpy otherwise); all tiers are bit-identical",
    )
    parser.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="uniform fault-injection rate in [0, 1] across all fault "
             "models (default: 0 = no injector)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault injector's private RNG (default: 0)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="disable retry/backoff recovery: transient faults abort the "
             "interval (the resilience baseline)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="record observability data (events/spans/metrics/provenance) "
             "and export it after the run (results are identical either way)",
    )
    parser.add_argument(
        "--obs-out", default="obs-out", metavar="DIR",
        help="directory for the observability export (default: obs-out)",
    )
    parser.add_argument(
        "--obs-stream", action="store_true",
        help="stream telemetry incrementally to OBS_OUT/stream.ndjson "
             "while the run is live (tail it with `repro watch --run` or "
             "`repro trace --run DIR --follow`); implies --obs",
    )
    parser.add_argument(
        "--obs-socket", default=None, metavar="ADDR",
        help="also stream to a line-protocol socket (unix:PATH or "
             "HOST:PORT) served by `repro watch --connect ADDR`; "
             "implies --obs",
    )
    parser.add_argument(
        "--obs-compress", action="store_true",
        help="gzip the exported JSONL artifacts (*.jsonl.gz); every "
             "reader (trace/report/query) handles both forms",
    )


def _make_injector(args: argparse.Namespace):
    """Injector from ``--faults``/``--fault-seed``, or ``None`` at rate 0."""
    if args.faults == 0:
        return None
    from repro.faults.injector import FaultConfig, FaultInjector

    return FaultInjector(FaultConfig.uniform(args.faults), seed=args.fault_seed)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MTM (EuroSys'24) multi-tiered memory simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one solution on one workload")
    run.add_argument(
        "--solution", default="mtm", choices=solution_names(),
        help="page-management solution (default: mtm)",
    )
    _add_common(run)

    compare = sub.add_parser("compare", help="compare solutions on one workload")
    compare.add_argument(
        "--solutions",
        default="first-touch,tiered-autonuma,mtm",
        help="comma-separated solution names (first is the baseline)",
    )
    compare.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="worker processes to run solutions in parallel (default: 1; "
             "results are identical for any K)",
    )
    _add_common(compare)

    sub.add_parser("list", help="list solutions and workloads")

    trace = sub.add_parser(
        "trace", help="query the migration provenance of an --obs run"
    )
    trace.add_argument(
        "--run", default=None, metavar="DIR",
        help="observability export directory (an earlier run's --obs-out)",
    )
    trace.add_argument(
        "--job", default=None, metavar="PATH",
        help="summarize a stitched per-job fleet trace instead: a job "
             "directory under the scheduler's STATE_DIR/traces/ (or its "
             "trace.json, or the traces/ root to list jobs)",
    )
    trace.add_argument(
        "--page", type=int, default=None, metavar="N",
        help="page to explain (omit for a summary of all migrations)",
    )
    trace.add_argument(
        "--limit", type=int, default=50,
        help="max provenance rows to print (default: 50)",
    )
    trace.add_argument(
        "--follow", action="store_true",
        help="tail the live NDJSON stream of a still-running --obs-stream "
             "run instead of reading the final export (tolerates a "
             "truncated final line)",
    )
    trace.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="with --follow: stop after this many seconds without new "
             "stream data (default: wait for the end record)",
    )

    watch = sub.add_parser(
        "watch", help="live dashboard over a streaming (--obs-stream) run"
    )
    src = watch.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--run", metavar="DIR",
        help="tail DIR/stream.ndjson (an --obs-stream run's --obs-out)",
    )
    src.add_argument(
        "--connect", metavar="ADDR",
        help="listen on ADDR (unix:PATH or HOST:PORT) for simulations "
             "streaming with --obs-socket ADDR",
    )
    watch.add_argument(
        "--refresh", type=float, default=1.0, metavar="SEC",
        help="dashboard refresh period (default: 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print one frame from the currently-available stream and exit",
    )
    watch.add_argument(
        "--wait", type=float, default=None, metavar="SEC",
        help="with --once: wait up to SEC for the stream to appear",
    )
    watch.add_argument(
        "--duration", type=float, default=None, metavar="SEC",
        help="stop after SEC seconds even if the stream has not ended",
    )
    watch.add_argument(
        "--html", default=None, metavar="FILE",
        help="also write a static HTML dashboard to FILE each refresh",
    )
    watch.add_argument(
        "--budget", type=float, default=0.05, metavar="FRAC",
        help="profiling-overhead budget fraction to gauge against "
             "(default: 0.05, the paper's constraint)",
    )

    report = sub.add_parser(
        "report", help="summarize an observability export"
    )
    report.add_argument(
        "--run", required=True, metavar="DIR",
        help="observability export directory (an earlier run's --obs-out)",
    )
    report.add_argument(
        "--obs", action="store_true", default=True,
        help="include the observability summary (default; reserved for "
             "future report sections)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit the report as machine-readable JSON (scriptable; "
             "folds the ping-pong summary when an analytics store exists)",
    )

    query = sub.add_parser(
        "query", help="columnar analytics over an --obs artifact directory"
    )
    query.add_argument(
        "--run", required=True, metavar="DIR",
        help="artifact directory: a run/sweep --obs-out, a service "
             "state dir, or a bare --obs-stream directory",
    )
    query.add_argument(
        "--store", default=None, metavar="FILE",
        help="analytics bundle path (default: DIR/analytics.npz; "
             "ingested on first use)",
    )
    query.add_argument(
        "--reingest", action="store_true",
        help="rebuild the analytics store even if one exists",
    )
    query.add_argument(
        "--analysis", default="summary",
        choices=["summary", "dwell", "top-pages", "funnel", "ping-pong",
                 "table"],
        help="built-in analysis to run (default: summary); 'table' is "
             "the generic filter/group/top-N verb over --table",
    )
    query.add_argument(
        "--table", default="events", metavar="NAME",
        help="table for --analysis table (provenance/events/metrics/"
             "spans/journal; default: events)",
    )
    query.add_argument(
        "--where", action="append", default=None, metavar="COL=VAL",
        help="row filter, repeatable (ops: = != < > <= >=)",
    )
    query.add_argument(
        "--group", default=None, metavar="COL",
        help="group rows by this column (with --analysis table)",
    )
    query.add_argument(
        "--agg", default="count", metavar="SPEC",
        help="aggregate per group: count, sum:COL, mean:COL, min:COL, "
             "max:COL (default: count)",
    )
    query.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="keep only the N largest groups (or hot pages for "
             "--analysis top-pages)",
    )
    query.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="ungrouped row limit (default: 20)",
    )
    query.add_argument(
        "--from", dest="start", type=int, default=None, metavar="I",
        help="restrict windowed analyses to intervals >= I",
    )
    query.add_argument(
        "--to", dest="end", type=int, default=None, metavar="I",
        help="restrict windowed analyses to intervals < I",
    )
    query.add_argument(
        "--min-trips", type=int, default=2, metavar="N",
        help="ping-pong: round trips needed to flag a page (default: 2)",
    )
    query.add_argument(
        "--window", type=int, default=8, metavar="I",
        help="ping-pong: max intervals for a return to count as a "
             "round trip (default: 8)",
    )
    query.add_argument(
        "--json", action="store_true",
        help="print the raw machine-readable report",
    )
    query.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the machine-readable report to FILE",
    )

    diff = sub.add_parser(
        "diff", help="compare two runs (or the bench history) metric by "
                     "metric",
    )
    diff.add_argument(
        "a", nargs="?", default=None, metavar="A",
        help="baseline artifact directory (or analytics.npz)",
    )
    diff.add_argument(
        "b", nargs="?", default=None, metavar="B",
        help="candidate artifact directory (or analytics.npz)",
    )
    diff.add_argument(
        "--bench", action="store_true",
        help="diff the newest BENCH_history.jsonl record against the "
             "trajectory of earlier records instead of two run dirs",
    )
    diff.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE",
        help="bench history file for --bench (default: "
             "BENCH_history.jsonl)",
    )
    diff.add_argument(
        "--driver", default=None, metavar="NAME",
        help="with --bench: restrict to one driver's records "
             "(e.g. bench_perf_smoke)",
    )
    diff.add_argument(
        "--tol", type=float, default=None, metavar="FRAC",
        help="relative change treated as noise (default: 0.01 for runs, "
             "0.05 for --bench)",
    )
    diff.add_argument(
        "--reingest", action="store_true",
        help="rebuild both analytics stores before diffing",
    )
    diff.add_argument(
        "--limit", type=int, default=40, metavar="N",
        help="max changed metrics to print (default: 40)",
    )
    diff.add_argument(
        "--json", action="store_true",
        help="print the raw machine-readable diff",
    )
    diff.add_argument(
        "--html", default=None, metavar="FILE",
        help="also write a self-contained HTML diff report to FILE",
    )

    serve = sub.add_parser(
        "serve", help="run the fault-tolerant sweep scheduler daemon"
    )
    serve.add_argument(
        "--address", default="127.0.0.1:0", metavar="ADDR",
        help="listen address (unix:PATH or HOST:PORT; port 0 picks a "
             "free port, printed on startup; default: 127.0.0.1:0)",
    )
    serve.add_argument(
        "--state-dir", default="service-state", metavar="DIR",
        help="directory for the result cache, job journal, dead-letter "
             "log, and telemetry stream (default: service-state)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SEC",
        help="heartbeat-free seconds before a cell lease expires and "
             "requeues (default: 30)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=5, metavar="N",
        help="lease grants per cell before dead-lettering (default: 5)",
    )
    serve.add_argument(
        "--no-inline", action="store_true",
        help="disable the in-process serial fallback that runs cells "
             "while no workers are registered",
    )
    serve.add_argument(
        "--no-resume", action="store_true",
        help="skip journal replay of jobs interrupted by a previous "
             "scheduler exit",
    )
    serve.add_argument(
        "--obs-stream", action="store_true",
        help="stream service telemetry to STATE_DIR/stream.ndjson "
             "(watch it with `repro watch --run STATE_DIR`)",
    )
    serve.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the shared frame-authentication secret "
             "(fallback: the REPRO_SERVICE_SECRET environment variable); "
             "required to bind TCP on a non-loopback address",
    )
    serve.add_argument(
        "--insecure", action="store_true",
        help="allow binding plaintext TCP on a non-loopback address "
             "without a secret (the wire protocol is pickle: anyone who "
             "can reach the port can execute code — trusted networks only)",
    )
    serve.add_argument(
        "--affinity-staleness", type=float, default=5.0, metavar="SEC",
        help="max seconds the FIFO head may wait while claims redirect "
             "to cells matching a worker's warm snapshots (0 disables "
             "affinity; default: 5)",
    )
    serve.add_argument(
        "--no-compress", action="store_true",
        help="never negotiate frame compression with peers",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text), /healthz, and "
             "/fleet.json on this loopback HTTP port (0 picks a free "
             "port, printed on startup; default: off)",
    )
    serve.add_argument(
        "--metrics-host", default="127.0.0.1", metavar="HOST",
        help="bind address of the metrics endpoint (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="stitch per-job Perfetto traces (scheduler + worker tracks) "
             "into STATE_DIR/traces/<job>/trace.json; query with "
             "`repro trace --job` (default: off)",
    )
    serve.add_argument(
        "--alerts", action="store_true",
        help="evaluate the stock SLO alert rules each tick (worker "
             "staleness, lease-expiry storms, cache corruption, dead "
             "letters); transitions emit obs events and journal records "
             "(default: off)",
    )
    serve.add_argument(
        "--alert-rules", default=None, metavar="FILE",
        help="JSON file of custom alert rules (implies --alerts)",
    )

    fleet = sub.add_parser(
        "fleet", help="live fleet dashboard over a scheduler daemon"
    )
    fsrc = fleet.add_mutually_exclusive_group(required=True)
    fsrc.add_argument(
        "--connect", metavar="ADDR",
        help="poll the scheduler's fleet snapshot over its wire address "
             "(as printed by `repro serve`)",
    )
    fsrc.add_argument(
        "--run", metavar="DIR",
        help="tail DIR/stream.ndjson of a `repro serve --obs-stream` "
             "state directory instead of connecting",
    )
    fleet.add_argument(
        "--refresh", type=float, default=1.0, metavar="SEC",
        help="dashboard refresh period (default: 1.0)",
    )
    fleet.add_argument(
        "--once", action="store_true",
        help="print one frame and exit",
    )
    fleet.add_argument(
        "--wait", type=float, default=None, metavar="SEC",
        help="with --once: wait up to SEC for the source to appear",
    )
    fleet.add_argument(
        "--duration", type=float, default=None, metavar="SEC",
        help="stop after SEC seconds",
    )
    fleet.add_argument(
        "--html", default=None, metavar="FILE",
        help="also write a static HTML fleet page to FILE each refresh",
    )
    fleet.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the scheduler's shared frame-authentication "
             "secret (fallback: REPRO_SERVICE_SECRET; --connect only)",
    )

    worker = sub.add_parser(
        "worker", help="serve sweep cells for a scheduler daemon"
    )
    worker.add_argument(
        "--address", required=True, metavar="ADDR",
        help="scheduler address (as printed by `repro serve`)",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity (default: derived from pid)",
    )
    worker.add_argument(
        "--max-idle-claims", type=int, default=None, metavar="N",
        help="exit after N consecutive idle claims (default: serve forever)",
    )
    worker.add_argument(
        "--chaos-kill-after-cells", type=int, default=None, metavar="N",
        help="chaos: SIGKILL this worker after its Nth completed cell "
             "(crash between cells)",
    )
    worker.add_argument(
        "--chaos-kill-cell", type=int, default=None, metavar="N",
        help="chaos: arm a delayed SIGKILL when starting the Nth cell "
             "(crash mid-cell; 0 = the first cell)",
    )
    worker.add_argument(
        "--chaos-kill-delay", type=float, default=0.05, metavar="SEC",
        help="chaos: delay of the mid-cell SIGKILL (default: 0.05)",
    )
    worker.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the chaos injector's private RNG (default: 0)",
    )
    worker.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the scheduler's shared frame-authentication "
             "secret (fallback: REPRO_SERVICE_SECRET)",
    )
    worker.add_argument(
        "--no-warm", action="store_true",
        help="disable the warm-snapshot cache (every sweep cell "
             "re-simulates its warmup from scratch)",
    )
    worker.add_argument(
        "--warm-bytes", type=int, default=None, metavar="BYTES",
        help="in-memory byte budget of the warm-snapshot cache "
             "(default: 512 MiB)",
    )
    worker.add_argument(
        "--warm-spill-dir", default=None, metavar="DIR",
        help="directory for spilled warm snapshots (default: a private "
             "temp dir, removed on drain)",
    )
    worker.add_argument(
        "--no-pipeline", action="store_true",
        help="disable prefetching the next lease while a cell runs",
    )
    worker.add_argument(
        "--no-compress", action="store_true",
        help="do not offer frame compression at hello",
    )

    submit = sub.add_parser(
        "submit", help="submit a matrix job to a scheduler daemon"
    )
    submit.add_argument(
        "--address", required=True, metavar="ADDR",
        help="scheduler address (as printed by `repro serve`)",
    )
    submit.add_argument(
        "--workloads", default="gups",
        help="comma-separated workload names (default: gups)",
    )
    submit.add_argument(
        "--solutions", default="first-touch,mtm",
        help="comma-separated solution names (first is the baseline)",
    )
    submit.add_argument(
        "--intervals", type=int, default=None,
        help="profiling intervals per cell (default: the profile's "
             "per-workload defaults)",
    )
    submit.add_argument(
        "--scale-denominator", type=int, default=DEFAULT_SCALE_DENOM,
        metavar="N", help="machine capacity scale 1/N (default: 256)",
    )
    submit.add_argument("--seed", type=int, default=0, help="RNG seed")
    submit.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="per-cell fault-injection rate in [0, 1] (default: 0)",
    )
    submit.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for each cell's fault injector (default: 0)",
    )
    submit.add_argument(
        "--fail-fast", action="store_true",
        help="disable in-cell retry/backoff recovery",
    )
    submit.add_argument(
        "--tag", default="", help="free-form job label (journal, status)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="give up waiting for the job after SEC seconds",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit without waiting for results",
    )
    submit.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the scheduler's shared frame-authentication "
             "secret (fallback: REPRO_SERVICE_SECRET)",
    )
    submit.add_argument(
        "--no-compress", action="store_true",
        help="do not offer frame compression at hello",
    )
    return parser


def _make_obs(args: argparse.Namespace):
    """Collector from ``--obs``, or ``None`` when the flag is absent.

    ``--obs-stream``/``--obs-socket`` imply ``--obs`` and attach the
    matching sinks; the NDJSON file sink creates ``--obs-out`` lazily at
    its first flush, so a run that fails early leaves no directory.
    """
    stream = getattr(args, "obs_stream", False)
    socket_addr = getattr(args, "obs_socket", None)
    if not (getattr(args, "obs", False) or stream or socket_addr):
        return None
    from repro.obs.context import ObsConfig, ObsContext

    ctx = ObsContext(ObsConfig(stream=bool(stream or socket_addr)),
                     label="cli")
    if stream:
        import os

        from repro.obs.sinks import NdjsonFileSink

        ctx.add_sink(NdjsonFileSink(os.path.join(args.obs_out,
                                                 "stream.ndjson")))
    if socket_addr:
        from repro.obs.sinks import SocketSink

        ctx.add_sink(SocketSink(socket_addr))
    return ctx


def _abort_obs(ctx) -> None:
    """Failure-path teardown: close the stream (no end record) and
    remove an ``--obs-out`` directory the sink created but never used."""
    if ctx is None:
        return
    ctx.stream_abort()
    for sink in ctx.stream_sinks:
        cleanup = getattr(sink, "cleanup_if_empty", None)
        if cleanup is not None:
            cleanup()


def _export_obs(ctx, args: argparse.Namespace) -> None:
    if ctx is None:
        return
    paths = ctx.export(args.obs_out,
                       compress=getattr(args, "obs_compress", False))
    ctx.stream_close()
    print(f"observability export written to {paths['trace']} "
          f"(open in ui.perfetto.dev); query with "
          f"`python -m repro trace --run {args.obs_out}`")


def cmd_run(args: argparse.Namespace) -> int:
    """``run``: simulate one solution and print its summary."""
    perfflags.set_backend(args.backend)
    scale = 1.0 / args.scale_denominator
    obs = _make_obs(args)
    try:
        engine = make_engine(
            args.solution, args.workload, scale=scale, seed=args.seed,
            injector=_make_injector(args), recovery=not args.fail_fast,
            obs=obs,
        )
        result = engine.run(args.intervals)
    except BaseException:
        _abort_obs(obs)
        raise
    b = TimeBreakdown.from_result(result)
    print(f"{args.solution} on {args.workload} "
          f"(scale 1/{args.scale_denominator}, {args.intervals} intervals)")
    print(f"  total       : {format_time(b.total)}")
    print(f"  app         : {format_time(b.app)}")
    print(f"  profiling   : {format_time(b.profiling)} ({b.profiling_share():.1%})")
    print(f"  migration   : {format_time(b.migration)} ({b.migration_share():.1%})")
    print(f"  async copy  : {format_time(b.background)} (overlapped)")
    print(f"  fast tier   : {result.fast_tier_share():.1%} of accesses")
    log = result.migration_log
    print(f"  migrated    : {format_bytes(log.promoted_bytes)} up / "
          f"{format_bytes(log.demoted_bytes)} down")
    if result.fault_log is not None:
        from repro.metrics.robustness import robustness_summary

        rob = robustness_summary(result)
        print(f"  faults      : {rob.fault_events} injected "
              f"({rob.busy_events} EBUSY, {rob.enomem_events} ENOMEM, "
              f"{rob.sample_loss_events} sample-loss, "
              f"{rob.truncated_scans} truncated scans, "
              f"{rob.helper_stalls} stalls)")
        print(f"  recovery    : {rob.retries_scheduled} retries scheduled, "
              f"{rob.retries_succeeded} succeeded, "
              f"{rob.retries_exhausted} exhausted, "
              f"{rob.fallback_moves} fallback moves")
        print(f"  degraded    : {rob.degraded_intervals} intervals "
              f"({result.degraded_share:.1%})")
    _export_obs(obs, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``compare``: run several solutions, print the normalized table."""
    perfflags.set_backend(args.backend)
    solutions = [s.strip() for s in args.solutions.split(",") if s.strip()]
    if len(solutions) < 2:
        print("compare needs at least two solutions", file=sys.stderr)
        return 2
    from repro.bench.runner import run_matrix
    from repro.bench.scaling import BenchProfile

    profile = BenchProfile(
        name="cli", scale=1.0 / args.scale_denominator, seed=args.seed
    )
    obs = _make_obs(args)
    try:
        matrix = run_matrix(
            [args.workload],
            solutions,
            profile,
            baseline=solutions[0],
            intervals=args.intervals,
            workers=args.workers,
            fault_rate=args.faults,
            fault_seed=args.fault_seed,
            recovery=not args.fail_fast,
            obs=obs,
        )
    except BaseException:
        _abort_obs(obs)
        raise
    times = matrix.total_times(args.workload)
    norm = normalize(times, solutions[0])
    table = Table(
        f"{args.workload}: execution time normalized to {solutions[0]}",
        ["solution", "time", "normalized"],
    )
    for solution in solutions:
        table.add_row(solution, format_time(times[solution]), f"{norm[solution]:.3f}")
    print(table.render())
    _export_obs(obs, args)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: answer a provenance query from an export directory."""
    if args.job is not None:
        from repro.obs.cli import trace_job_report

        print(trace_job_report(args.job))
        return 0
    if args.run is None:
        print("trace needs --run DIR (provenance) or --job PATH "
              "(stitched fleet trace)", file=sys.stderr)
        return 2
    if args.follow:
        from repro.obs.cli import trace_follow

        trace_follow(args.run, page=args.page, timeout=args.timeout,
                     limit=args.limit if args.limit > 0 else None)
        return 0
    from repro.obs.cli import trace_report

    print(trace_report(args.run, page=args.page, limit=args.limit))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """``watch``: live dashboard over a streaming run."""
    from repro.obs.watch import run_watch

    return run_watch(
        run=args.run,
        connect=args.connect,
        refresh=args.refresh,
        once=args.once,
        duration=args.duration,
        wait=args.wait,
        html=args.html,
        budget=args.budget,
    )


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet``: live fleet dashboard (wire poll or stream tail)."""
    from repro.obs.watch import run_fleet
    from repro.service.protocol import resolve_secret

    return run_fleet(
        connect=args.connect,
        run=args.run,
        refresh=args.refresh,
        once=args.once,
        duration=args.duration,
        wait=args.wait,
        html=args.html,
        secret=resolve_secret(args.secret_file) if args.connect else None,
    )


def cmd_report(args: argparse.Namespace) -> int:
    """``report``: summarize an export directory."""
    import json as _json

    from repro.obs.cli import obs_report

    if args.json:
        print(_json.dumps(obs_report(args.run, as_json=True), indent=2,
                          sort_keys=True))
    else:
        print(obs_report(args.run))
    return 0


def _render_query_text(report: dict) -> str:
    """Terminal rendering of one analysis report."""
    analysis = report.get("analysis")
    if analysis == "dwell":
        table = Table("Per-tier dwell time (intervals between migrations)",
                      ["tier", "closed", "mean", "max", "open", "open mean"])
        for tier, stats in sorted(report["tiers"].items(),
                                  key=lambda kv: int(kv[0])):
            table.add_row(tier, stats["closed_count"],
                          f"{stats['mean']:.2f}", stats["max"],
                          stats["open_count"], f"{stats['open_mean']:.2f}")
        return (table.render()
                + f"\n{report['samples_total']} closed dwell samples "
                  f"(migrated pages only)")
    if analysis == "top-pages":
        table = Table(f"Top-{report['k']} hot pages (hotness-mass share)",
                      ["page", "score", "share"])
        for entry in report["pages"]:
            table.add_row(entry["page"], f"{entry['score']:.4g}",
                          f"{entry['share']:.2%}")
        return table.render()
    if analysis == "funnel":
        table = Table("Migration lifecycle funnel", ["stage", "records"])
        for stage, count in report["stages"].items():
            table.add_row(stage, count)
        lat = report["latency"]
        return (table.render()
                + f"\ncommit share {report['commit_share']:.1%}; "
                  f"plan->commit latency over {report['occurrences']} "
                  f"occurrence(s): mean {lat['mean']:.2f}, "
                  f"p50 {lat['p50']:g}, p95 {lat['p95']:g}, "
                  f"max {lat['max']}")
    if analysis == "ping-pong":
        params = report["params"]
        table = Table(
            f"Ping-pong pages (>= {params['min_round_trips']} round trips "
            f"within {params['window']} intervals)",
            ["page", "round trips"])
        for entry in report["pages"][:20]:
            table.add_row(entry["page"], entry["round_trips"])
        lines = [table.render(),
                 f"{report['page_count']} page(s) flagged, "
                 f"{len(report['deny_ranges'])} deny range(s)"]
        if report["deny_ranges"]:
            shown = ", ".join(f"[{a}, {b})"
                              for a, b in report["deny_ranges"][:10])
            lines.append(f"deny-list seed: {shown}"
                         + (" ..." if len(report["deny_ranges"]) > 10
                            else ""))
        return "\n".join(lines)
    if analysis == "summary":
        table = Table(f"Analytics store summary "
                      f"({report['meta'].get('label', '?')})",
                      ["table", "rows"])
        for name, rows in sorted(report["tables"].items()):
            table.add_row(name, rows)
        lines = [table.render(),
                 f"{report['meta'].get('intervals', 0)} interval(s), "
                 f"source: {report['meta'].get('source', '?')}"]
        if report.get("stages"):
            lines.append("stages: " + ", ".join(
                f"{k}={v}" for k, v in report["stages"].items()))
        return "\n".join(lines)
    # generic table query
    if "group" in report:
        table = Table(f"{report['table']}: {report['agg']} by "
                      f"{report['group']} ({report['matched']} rows matched)",
                      [report["group"], report["agg"]])
        for key, value in report["rows"]:
            table.add_row(key, f"{value:g}")
        return table.render()
    lines = [f"{report['matched']} row(s) matched in {report['table']}:"]
    lines += [str(row) for row in report["rows"]]
    return "\n".join(lines)


def cmd_query(args: argparse.Namespace) -> int:
    """``query``: run one built-in analysis (or a table query)."""
    import json as _json

    from repro.obs import analytics

    store = analytics.ensure_store(args.run, store_path=args.store,
                                   reingest=args.reingest)
    with store:
        if args.analysis == "summary":
            report = analytics.store_summary(store)
        elif args.analysis == "dwell":
            report = analytics.dwell_time(store, start=args.start,
                                          end=args.end)
        elif args.analysis == "top-pages":
            report = analytics.top_pages(store, k=args.top or 10)
        elif args.analysis == "funnel":
            report = analytics.lifecycle_funnel(store)
        elif args.analysis == "ping-pong":
            report = analytics.ping_pong(store,
                                         min_round_trips=args.min_trips,
                                         window=args.window)
        else:
            report = analytics.query_table(
                store, args.table, where=args.where, group=args.group,
                agg=args.agg, top=args.top, limit=args.limit)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_query_text(report))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """``diff``: compare two runs, or the bench-history trajectory."""
    import json as _json

    from repro.obs import analytics

    if args.bench:
        diff = analytics.diff_bench(args.history, driver=args.driver,
                                    tol=args.tol if args.tol is not None
                                    else 0.05)
    else:
        if not args.a or not args.b:
            print("diff needs two artifact directories (or --bench)",
                  file=sys.stderr)
            return 2
        diff = analytics.diff_runs(args.a, args.b,
                                   tol=args.tol if args.tol is not None
                                   else 0.01, reingest=args.reingest)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(analytics.render_diff_html(diff))
        print(f"HTML diff written to {args.html}",
              file=sys.stderr if args.json else sys.stdout)
    if args.json:
        print(_json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(analytics.render_diff_text(diff, limit=args.limit))
    return 1 if diff["summary"]["regressed"] else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the sweep scheduler daemon in the foreground."""
    import os
    import signal

    from repro.service.cache import ResultCache
    from repro.service.journal import Journal, pid_file_write
    from repro.service.protocol import resolve_secret
    from repro.service.scheduler import (
        SchedulerConfig,
        SchedulerCore,
        SchedulerServer,
    )

    secret = resolve_secret(args.secret_file)
    obs = None
    if args.obs_stream:
        from repro.obs.context import ObsConfig, ObsContext
        from repro.obs.sinks import NdjsonFileSink

        obs = ObsContext(ObsConfig(stream=True), label="service")
        obs.add_sink(NdjsonFileSink(os.path.join(args.state_dir,
                                                 "stream.ndjson")))
    journal = Journal(args.state_dir)
    traces = None
    if args.trace:
        from repro.service.tracing import JobTraceBook

        traces = JobTraceBook(os.path.join(args.state_dir, "traces"))
    core = SchedulerCore(
        cache=ResultCache(os.path.join(args.state_dir, "cache")),
        journal=journal,
        config=SchedulerConfig(
            lease_timeout=args.lease_timeout,
            max_attempts=args.max_attempts,
            inline_fallback=not args.no_inline,
            affinity_staleness=args.affinity_staleness,
        ),
        obs=obs,
        traces=traces,
    )
    alerts = None
    if args.alerts or args.alert_rules:
        from repro.service.alerts import AlertEngine, default_rules, load_rules

        rules = (load_rules(args.alert_rules) if args.alert_rules
                 else default_rules(args.lease_timeout))
        alerts = AlertEngine(rules, obs=obs, journal=journal)
    server = SchedulerServer(core, address=args.address, secret=secret,
                             allow_insecure_tcp=args.insecure,
                             compress=not args.no_compress,
                             alerts=alerts)
    health = None
    if args.metrics_port is not None:
        from repro.service.health import HealthServer

        health = HealthServer(core, alerts=alerts, host=args.metrics_host,
                              port=args.metrics_port)
        health.start()
        print(f"metrics at {health.url}/metrics "
              f"(also /healthz, /fleet.json)", flush=True)
    pid_file_write(args.state_dir)
    if not args.no_resume:
        resumed = core.resume()
        if resumed:
            print(f"resumed {len(resumed)} interrupted job(s): "
                  + ", ".join(resumed))

    def _drain(_signum, _frame):
        # SIGTERM/SIGINT: stop granting, let in-flight leases land,
        # journal the interruption point, then exit.
        import threading

        threading.Thread(target=server.shutdown, kwargs={"drain": True},
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(f"scheduler listening on {server.address} "
          f"(state: {args.state_dir})", flush=True)
    try:
        server.serve_forever()
    finally:
        if health is not None:
            health.stop()
    print("scheduler drained; exiting")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """``worker``: claim and run cells for a scheduler daemon."""
    from repro.service.protocol import resolve_secret
    from repro.service.worker import worker_main

    return worker_main(
        args.address,
        worker_id=args.id,
        chaos_kill_after_cells=args.chaos_kill_after_cells,
        chaos_kill_cell=args.chaos_kill_cell,
        chaos_kill_delay=args.chaos_kill_delay,
        chaos_seed=args.chaos_seed,
        max_idle_claims=args.max_idle_claims,
        secret=resolve_secret(args.secret_file),
        warm=not args.no_warm,
        warm_bytes=args.warm_bytes,
        warm_spill_dir=args.warm_spill_dir,
        pipeline=not args.no_pipeline,
        compress=not args.no_compress,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """``submit``: send a matrix job to a daemon, print the table."""
    from repro.bench.scaling import BenchProfile
    from repro.service.client import ServiceClient
    from repro.service.protocol import JobSpec, resolve_secret

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    solutions = [s.strip() for s in args.solutions.split(",") if s.strip()]
    if not workloads or not solutions:
        print("submit needs at least one workload and one solution",
              file=sys.stderr)
        return 2
    spec = JobSpec(
        workloads=tuple(workloads),
        solutions=tuple(solutions),
        profile=BenchProfile(
            name="submit", scale=1.0 / args.scale_denominator, seed=args.seed
        ),
        intervals=args.intervals,
        baseline=solutions[0],
        fault_rate=args.faults,
        fault_seed=args.fault_seed,
        recovery=not args.fail_fast,
        tag=args.tag,
    )
    with ServiceClient(args.address,
                       secret=resolve_secret(args.secret_file),
                       compress=not args.no_compress) as client:
        job_id = client.submit(spec)
        print(f"submitted {job_id} "
              f"({len(workloads)}x{len(solutions)} cells)", flush=True)
        if args.no_wait:
            return 0

        def _progress(status: dict) -> None:
            print(f"  {status['cells_done']}/{status['cells_total']} cells "
                  f"({status['cache_hits']} from cache)", flush=True)

        client.wait(job_id, timeout=args.timeout, on_progress=_progress)
        matrix = client.fetch(job_id)
    print(matrix.table(
        f"normalized execution time (baseline: {spec.baseline})"
    ).render())
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    """``list``: print the available solutions and workloads."""
    from repro.core.baselines import SOLUTIONS

    table = Table("Solutions", ["name", "description"])
    for spec in SOLUTIONS.values():
        table.add_row(spec.name, spec.description)
    print(table.render())
    print()
    table = Table("Workloads (Table 2)", ["name", "paper footprint", "R/W", "description"])
    for spec in WORKLOAD_SPECS.values():
        table.add_row(
            spec.name, format_bytes(spec.footprint_bytes), spec.rw_mix, spec.description
        )
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "compare":
            return cmd_compare(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "watch":
            return cmd_watch(args)
        if args.command == "fleet":
            return cmd_fleet(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "query":
            return cmd_query(args)
        if args.command == "diff":
            return cmd_diff(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "worker":
            return cmd_worker(args)
        if args.command == "submit":
            return cmd_submit(args)
        return cmd_list(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head & friends
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
