"""Performance-counter substrate: PEBS-like sampling and PCM-like counting.

MTM uses PEBS (``MEM_LOAD_RETIRED.LOCAL_PMM`` / ``REMOTE_PMM``, one sample
per 200 accesses) to find regions with activity on the slowest tier, and
HeMem relies on PEBS alone.  Table 6's per-tier access counts come from the
Intel PCM-style counters.
"""

from repro.perf.events import (
    PebsEvent,
    PEBS_ALL_EVENTS,
    PEBS_PMM_EVENTS,
    PEBS_SLOW_MEMORY_EVENTS,
)
from repro.perf.pebs import PebsSampler, PebsSampleSet
from repro.perf.pcm import PcmCounters

__all__ = [
    "PebsEvent",
    "PEBS_PMM_EVENTS",
    "PEBS_SLOW_MEMORY_EVENTS",
    "PEBS_ALL_EVENTS",
    "PebsSampler",
    "PebsSampleSet",
    "PcmCounters",
]
