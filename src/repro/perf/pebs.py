"""PEBS-like statistical sampler over an access batch.

Each memory access matching a programmed event is sampled independently
with probability ``1/period`` (the paper's production setting is
``period = 200``).  Samples land in a bounded buffer; when the buffer
fills, the overflow is dropped — exactly the randomness that makes
"perf-counters alone" miss hot pages and motivates MTM's use of PEBS only
as a *region filter* (Sec. 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SampleLossError
from repro.faults.injector import FaultInjector
from repro.hw.topology import TierTopology
from repro.mm.pagetable import PageTable
from repro.perf.events import PebsEvent, PEBS_SLOW_MEMORY_EVENTS
from repro.sim.trace import AccessBatch


@dataclass
class PebsSampleSet:
    """Samples collected during one activation window.

    Attributes:
        pages: unique sampled page numbers.
        samples: sample count per page.
        nodes: component node each sampled page resided on.
        dropped: samples lost to buffer overflow.
    """

    pages: np.ndarray
    samples: np.ndarray
    nodes: np.ndarray
    dropped: int = 0

    @property
    def total_samples(self) -> int:
        return int(self.samples.sum())

    @classmethod
    def empty(cls) -> "PebsSampleSet":
        return cls(
            pages=np.empty(0, dtype=np.int64),
            samples=np.empty(0, dtype=np.int64),
            nodes=np.empty(0, dtype=np.int16),
            dropped=0,
        )


class PebsSampler:
    """Samples an access batch the way PEBS would.

    Args:
        topology: machine description (for event matching).
        period: one sample per ``period`` eligible accesses.
        buffer_capacity: max samples retained per activation window.
        events: programmed events (default: slow-memory loads — PM on the
            Optane machine, CXL on expander machines).
        rng: random source.
        injector: optional fault injector (ring-buffer overflow events
            beyond the modeled steady-state thinning).
        strict: raise :class:`~repro.errors.SampleLossError` whenever a
            window drops samples instead of returning the thinned set
            (callers that cannot tolerate loss; default off — real PEBS
            drops silently).
    """

    def __init__(
        self,
        topology: TierTopology,
        period: int = 200,
        buffer_capacity: int = 1 << 16,
        events: tuple[PebsEvent, ...] = PEBS_SLOW_MEMORY_EVENTS,
        rng: np.random.Generator | None = None,
        injector: FaultInjector | None = None,
        strict: bool = False,
    ) -> None:
        if period < 1:
            raise ConfigError(f"period must be >= 1, got {period}")
        if buffer_capacity < 1:
            raise ConfigError(f"buffer_capacity must be >= 1, got {buffer_capacity}")
        if not events:
            raise ConfigError("at least one event must be programmed")
        self.topology = topology
        self.period = period
        self.buffer_capacity = buffer_capacity
        self.events = events
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.injector = injector
        self.strict = strict
        self.total_samples_taken = 0
        self.total_dropped = 0
        #: Optional ObsContext; the engine wires it in (batch telemetry).
        self.obs = None

    def eligible_nodes(self, socket: int = 0) -> frozenset[int]:
        """Component nodes whose accesses match any programmed event."""
        eligible = set()
        for component in self.topology.components:
            is_local = component.socket == socket
            for event in self.events:
                if event.matches(component.kind, is_local):
                    eligible.add(component.node_id)
                    break
        return frozenset(eligible)

    def sample(
        self,
        batch: AccessBatch,
        page_table: PageTable,
        socket: int = 0,
        duty_cycle: float = 1.0,
    ) -> PebsSampleSet:
        """Sample the batch's eligible accesses.

        Args:
            batch: the interval's access histogram.
            page_table: current placement (decides event eligibility).
            socket: viewpoint socket for local/remote event matching.
            duty_cycle: fraction of the interval the counters were on
                (MTM activates PEBS for 10% of each interval, Sec. 5.5).
        """
        if not 0.0 < duty_cycle <= 1.0:
            raise ConfigError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        if batch.pages.size == 0:
            return PebsSampleSet.empty()

        nodes = page_table.node_of(batch.pages)
        eligible = self.eligible_nodes(socket)
        mask = np.isin(nodes, list(eligible))
        if not np.any(mask):
            return PebsSampleSet.empty()

        pages = batch.pages[mask]
        # The programmed events are load-retired events: only the read
        # accesses are sampled.  Write-mostly pages are PEBS-invisible —
        # one reason counters alone miss hot pages (Sec. 5.5).
        counts = batch.counts[mask] - batch.writes[mask]
        node_of = nodes[mask]
        nonzero = counts > 0
        pages, counts, node_of = pages[nonzero], counts[nonzero], node_of[nonzero]
        if pages.size == 0:
            return PebsSampleSet.empty()

        # Each access is sampled w.p. duty_cycle / period.
        p = duty_cycle / self.period
        draws = self.rng.binomial(counts, p)
        hit = draws > 0
        pages, draws, node_of = pages[hit], draws[hit], node_of[hit]

        total = int(draws.sum())
        dropped = 0
        if total > self.buffer_capacity:
            # Thin samples uniformly to model buffer overflow drops; the
            # buffer is a hard limit, so trim any statistical excess.
            dropped = total - self.buffer_capacity
            keep_p = self.buffer_capacity / total
            draws = self.rng.binomial(draws, keep_p)
            excess = int(draws.sum()) - self.buffer_capacity
            if excess > 0:
                order = np.argsort(draws)[::-1]
                for idx in order:
                    take = min(excess, int(draws[idx]))
                    draws[idx] -= take
                    excess -= take
                    if excess == 0:
                        break
            kept = draws > 0
            pages, draws, node_of = pages[kept], draws[kept], node_of[kept]

        # Injected ring-buffer overflow: an activation window that loses a
        # slab of samples beyond the steady-state thinning above.
        if self.injector is not None:
            draws, lost = self.injector.apply_sample_loss(draws)
            if lost:
                dropped += lost
                kept = draws > 0
                pages, draws, node_of = pages[kept], draws[kept], node_of[kept]

        self.total_samples_taken += int(draws.sum())
        self.total_dropped += dropped
        if self.obs is not None:
            from repro.obs.events import EV_PEBS_BATCH

            self.obs.emit(EV_PEBS_BATCH, samples=int(draws.sum()),
                          pages=int(pages.size), dropped=dropped,
                          duty_cycle=duty_cycle)
            self.obs.inc("pebs.samples", int(draws.sum()))
            if dropped:
                self.obs.inc("pebs.dropped", dropped)
        if self.strict and dropped:
            raise SampleLossError(
                f"PEBS buffer overflow: {dropped} samples dropped this window",
                interval=-1,
            )
        return PebsSampleSet(
            pages=pages,
            samples=draws.astype(np.int64),
            nodes=node_of.astype(np.int16),
            dropped=dropped,
        )
