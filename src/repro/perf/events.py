"""PEBS event definitions.

An event selects which memory accesses are eligible for sampling, by the
technology kind of the component serving the access and (optionally) its
locality relative to the issuing socket.  The two events the paper
programs are loads retired from local and remote PM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.tier import MemoryKind


@dataclass(frozen=True)
class PebsEvent:
    """One programmable sampling event.

    Attributes:
        name: the hardware event name (informational).
        kinds: component kinds whose accesses this event captures.
        local: restrict to local (True) / remote (False) accesses, or
            ``None`` for both.
    """

    name: str
    kinds: frozenset[MemoryKind]
    local: bool | None = None

    def matches(self, kind: MemoryKind, is_local: bool) -> bool:
        """Whether an access served by ``kind`` memory matches this event."""
        if kind not in self.kinds:
            return False
        if self.local is None:
            return True
        return self.local == is_local


MEM_LOAD_RETIRED_LOCAL_PMM = PebsEvent(
    name="MEM_LOAD_RETIRED.LOCAL_PMM",
    kinds=frozenset({MemoryKind.PM}),
    local=True,
)

MEM_LOAD_RETIRED_REMOTE_PMM = PebsEvent(
    name="MEM_LOAD_RETIRED.REMOTE_PMM",
    kinds=frozenset({MemoryKind.PM}),
    local=False,
)

MEM_LOAD_RETIRED_DRAM = PebsEvent(
    name="MEM_LOAD_RETIRED.LOCAL_DRAM",
    kinds=frozenset({MemoryKind.DRAM}),
    local=None,
)

#: Loads served by CXL-attached expanders.  The paper notes MTM only needs
#: "memory access-related events for slow and fast memories" to exist on
#: an architecture (Sec. 8); on CXL parts this is the cross-socket/remote
#: load event family.
MEM_LOAD_RETIRED_CXL = PebsEvent(
    name="MEM_LOAD_RETIRED.CXL_MEM",
    kinds=frozenset({MemoryKind.CXL}),
    local=None,
)

#: The pair MTM programs on Optane (Sec. 8): PM loads, local and remote.
PEBS_PMM_EVENTS = (MEM_LOAD_RETIRED_LOCAL_PMM, MEM_LOAD_RETIRED_REMOTE_PMM)

#: Slow-memory loads generally (PM or CXL) — the architecture-independent
#: set the default sampler programs.
PEBS_SLOW_MEMORY_EVENTS = (
    MEM_LOAD_RETIRED_LOCAL_PMM,
    MEM_LOAD_RETIRED_REMOTE_PMM,
    MEM_LOAD_RETIRED_CXL,
)

#: Everything, as HeMem programs (DRAM + NVM reads and writes).
PEBS_ALL_EVENTS = (
    MEM_LOAD_RETIRED_DRAM,
    MEM_LOAD_RETIRED_LOCAL_PMM,
    MEM_LOAD_RETIRED_REMOTE_PMM,
    MEM_LOAD_RETIRED_CXL,
)
