"""PCM-style per-component access counters.

Table 6 of the paper counts application memory accesses per tier with
Intel Processor Counter Monitor, *excluding* migration traffic.  The
simulator gets the same separation for free: only workload batches are
counted here; mechanism copies are charged by the migration planner.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, perfflags
from repro.hw.topology import TierTopology
from repro.mm.pagetable import PageTable
from repro.sim.trace import AccessBatch


class PcmCounters:
    """Accumulates application access counts per component node.

    Args:
        topology: the machine being monitored.
    """

    def __init__(self, topology: TierTopology) -> None:
        self.topology = topology
        self.node_accesses: dict[int, int] = {n: 0 for n in topology.node_ids}
        self.node_writes: dict[int, int] = {n: 0 for n in topology.node_ids}

    def count(self, batch: AccessBatch, page_table: PageTable) -> None:
        """Attribute the batch's accesses to the nodes currently holding
        each page."""
        if batch.pages.size == 0:
            return
        nodes = page_table.node_of(batch.pages)
        if perfflags.compiled():
            # Compiled integer histogram; exact sums match the weighted
            # float bincount below bit-for-bit (counts stay below 2**53).
            length = max(self.topology.node_ids) + 2
            acc, wr = kernels.node_accumulate(nodes, batch.counts, batch.writes, length)
            for node in self.topology.node_ids:
                if acc[node + 1] or wr[node + 1]:
                    self.node_accesses[node] += int(acc[node + 1])
                    self.node_writes[node] += int(wr[node + 1])
            return
        if perfflags.vectorized():
            # One weighted histogram instead of a mask + two sums per node.
            # Unmapped pages (node -1) are shifted into bin 0 and dropped,
            # matching the per-node masks below.
            shifted = nodes.astype(np.int64) + 1
            length = max(self.topology.node_ids) + 2
            acc = np.bincount(shifted, weights=batch.counts, minlength=length)
            wr = np.bincount(shifted, weights=batch.writes, minlength=length)
            for node in self.topology.node_ids:
                if acc[node + 1] or wr[node + 1]:
                    self.node_accesses[node] += int(acc[node + 1])
                    self.node_writes[node] += int(wr[node + 1])
            return
        for node in self.topology.node_ids:
            mask = nodes == node
            if np.any(mask):
                self.node_accesses[node] += int(batch.counts[mask].sum())
                self.node_writes[node] += int(batch.writes[mask].sum())

    def tier_accesses(self, socket: int = 0) -> dict[int, int]:
        """Access counts keyed by 1-based tier rank in ``socket``'s view.

        This is the presentation Table 6 uses (tiers defined from the
        clients' socket).
        """
        view = self.topology.view(socket)
        return {
            tier: self.node_accesses[view.node_at_tier(tier)]
            for tier in range(1, view.num_tiers + 1)
        }

    def total_accesses(self) -> int:
        return sum(self.node_accesses.values())

    def fastest_tier_share(self, socket: int = 0) -> float:
        """Fraction of all accesses served by tier 1 (0 when idle)."""
        total = self.total_accesses()
        if total == 0:
            return 0.0
        return self.tier_accesses(socket)[1] / total

    def reset(self) -> None:
        for node in self.node_accesses:
            self.node_accesses[node] = 0
            self.node_writes[node] = 0
