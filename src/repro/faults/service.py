"""Process-level fault injection for the sweep service.

:mod:`repro.faults.injector` perturbs the *simulated* kernel (EBUSY,
ENOMEM, sample loss) inside one process.  This module extends the same
discipline to the failure modes a *fleet* has and a process pool cannot
survive:

* **worker crash** — SIGKILL the current process between cells or on a
  delay mid-cell (no atexit, no flush, no goodbye — exactly what a
  OOM-killed or preempted worker looks like to the scheduler);
* **severed socket** — hard-close a connection without shutdown
  handshake, so the peer sees a reset instead of a clean EOF;
* **cache corruption** — flip a bit (or truncate) inside an on-disk
  result-cache entry, the rot the checksum discipline must catch.

Rates draw from a private seeded generator (mirroring
:class:`~repro.faults.injector.FaultInjector`), and the imperative
helpers (``kill_now``, ``flip_byte``) are what the chaos tests and the
``repro worker --chaos-*`` flags use for deterministic scripting.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceFaultConfig:
    """Per-model process-level fault rates (all default off).

    Attributes:
        worker_kill_rate: probability a worker SIGKILLs itself after
            finishing a cell (crash *between* cells).
        midcell_kill_rate: probability a worker arms a delayed SIGKILL
            when starting a cell (crash *mid*-cell).
        midcell_kill_delay: seconds between cell start and the armed
            mid-cell SIGKILL.
        sever_rate: probability a socket send is preceded by a hard
            close of the connection.
        cache_flip_rate: probability a just-written cache entry gets one
            byte flipped (storage rot).
    """

    worker_kill_rate: float = 0.0
    midcell_kill_rate: float = 0.0
    midcell_kill_delay: float = 0.05
    sever_rate: float = 0.0
    cache_flip_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigError(f"{f.name} must be in [0, 1], got {value}")
        if self.midcell_kill_delay < 0:
            raise ConfigError(
                f"midcell_kill_delay must be >= 0, got {self.midcell_kill_delay}"
            )

    @property
    def enabled(self) -> bool:
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self) if f.name.endswith("_rate")
        )


class ServiceFaultInjector:
    """Deterministic, seeded source of process-level chaos.

    One injector serves one process (a worker, or a test harness acting
    on others).  Draws come from a private generator so arming chaos
    never perturbs simulation RNG streams — the same independence
    guarantee the in-process injector gives.
    """

    def __init__(self, config: ServiceFaultConfig | None = None,
                 seed: int = 0) -> None:
        self.config = config if config is not None else ServiceFaultConfig()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.severed = 0
        self.flips = 0
        self.kills_armed = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- worker crash ----------------------------------------------------------

    @staticmethod
    def kill_now(pid: int | None = None) -> None:
        """SIGKILL ``pid`` (default: this process). No cleanup runs."""
        os.kill(pid if pid is not None else os.getpid(), signal.SIGKILL)

    def arm_midcell_kill(self, delay: float | None = None) -> threading.Timer:
        """Schedule a SIGKILL of this process ``delay`` seconds from now.

        Returns the timer so a test can cancel it; the worker never
        does — once armed, the crash lands wherever the cell happens to
        be (that unpredictability *is* the point; determinism lives in
        the requeued re-execution, not the crash site).
        """
        if delay is None:
            delay = self.config.midcell_kill_delay
        timer = threading.Timer(delay, self.kill_now)
        timer.daemon = True
        timer.start()
        self.kills_armed += 1
        return timer

    def maybe_kill_between_cells(self) -> None:
        """Draw the between-cells crash model (kills, or returns)."""
        rate = self.config.worker_kill_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return
        self.kill_now()

    def maybe_arm_midcell_kill(self) -> threading.Timer | None:
        """Draw the mid-cell crash model at cell start."""
        rate = self.config.midcell_kill_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return None
        return self.arm_midcell_kill()

    # -- severed sockets -------------------------------------------------------

    def maybe_sever(self, sock) -> bool:
        """Hard-close ``sock`` per the sever model; True if severed."""
        rate = self.config.sever_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return False
        self.sever(sock)
        return True

    def sever(self, sock) -> None:
        """Abortive close: RST to the peer, no shutdown handshake."""
        import socket as _socket
        import struct

        try:
            sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
        self.severed += 1

    # -- cache corruption ------------------------------------------------------

    def flip_byte(self, path, offset: int | None = None) -> int:
        """XOR one payload byte of the file at ``path``; returns offset.

        The flip lands past the header (magic + digest) when the file is
        long enough, so it corrupts *data* the checksum must catch, not
        the magic the reader rejects trivially.
        """
        from repro.service.cache import MAGIC, _DIGEST_BYTES

        size = os.path.getsize(path)
        if size == 0:
            raise ConfigError(f"cannot flip a byte of empty file {path}")
        if offset is None:
            header = len(MAGIC) + _DIGEST_BYTES
            lo = header if size > header + 1 else 0
            offset = int(self.rng.integers(lo, size))
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        self.flips += 1
        return offset

    def truncate(self, path, keep: int | None = None) -> None:
        """Chop the file at ``path`` (default: halfway), as a torn write."""
        size = os.path.getsize(path)
        if keep is None:
            keep = size // 2
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        self.flips += 1

    def maybe_flip_cache_entry(self, path) -> bool:
        """Draw the cache-rot model against a just-written entry."""
        rate = self.config.cache_flip_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return False
        self.flip_byte(path)
        return True


__all__ = ["ServiceFaultConfig", "ServiceFaultInjector"]
