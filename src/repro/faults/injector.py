"""Seeded fault models for the kernel behaviors the simulator hides.

Each fault model stands in for one documented failure mode of the real
system (docs/paper_mapping.md maps them one by one):

* **migration busy** — ``move_pages()`` returning EBUSY for a subset of a
  request's pages (pinned, under writeback, raced by reclaim): a chunk
  move succeeds only partially and the pinned pages must be retried.
* **tier pressure** — destination allocation failing with ENOMEM even
  though the accountant shows room (fragmentation, kernel reserves,
  concurrent allocations): the daemon must demote before re-promoting.
* **sample loss** — the PEBS ring buffer overflowing mid-window, dropping
  a slab of samples beyond the modeled steady-state thinning.
* **scan truncation** — a profiling pass preempted before covering its
  sampled pages, so only a prefix of the scan's PTEs was visited.
* **helper stall** — MTM's async copy threads descheduled under CPU
  pressure, inflating the background copy window.

All draws come from the injector's own generator, seeded independently of
the simulation streams, and every model short-circuits *before* drawing
when its rate is zero — a zero-rate injector is bit-identical to no
injector at all (the determinism guard in tests/test_property_faults.py).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class FaultConfig:
    """Per-model fault rates (all default off).

    Attributes:
        migration_busy_rate: probability a migration chunk hits EBUSY on
            a subset of its pages.
        tier_pressure_rate: probability a destination allocation fails
            with ENOMEM despite accounted-for capacity.
        sample_loss_rate: probability a PEBS activation window overflows
            its ring buffer and loses a slab of samples.
        scan_truncation_rate: probability a region's scan pass is
            preempted and covers only a prefix of its sampled pages.
        stall_rate: probability the async helper threads stall during a
            region copy.
        busy_fraction_max: upper bound on the fraction of a chunk's pages
            that pin on one EBUSY event.
        stall_factor: background-time inflation when helpers stall.
    """

    migration_busy_rate: float = 0.0
    tier_pressure_rate: float = 0.0
    sample_loss_rate: float = 0.0
    scan_truncation_rate: float = 0.0
    stall_rate: float = 0.0
    busy_fraction_max: float = 0.5
    stall_factor: float = 4.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigError(f"{f.name} must be in [0, 1], got {value}")
        if not 0.0 < self.busy_fraction_max <= 1.0:
            raise ConfigError(
                f"busy_fraction_max must be in (0, 1], got {self.busy_fraction_max}"
            )
        if self.stall_factor < 1.0:
            raise ConfigError(f"stall_factor must be >= 1, got {self.stall_factor}")

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultConfig":
        """Every fault model at the same ``rate`` (the CLI's ``--faults``)."""
        return cls(
            migration_busy_rate=rate,
            tier_pressure_rate=rate,
            sample_loss_rate=rate,
            scan_truncation_rate=rate,
            stall_rate=rate,
            **overrides,
        )

    @property
    def enabled(self) -> bool:
        return any(
            getattr(self, f.name) > 0.0 for f in fields(self) if f.name.endswith("_rate")
        )


@dataclass
class FaultLog:
    """Counts of every injected fault, by model."""

    busy_events: int = 0
    busy_pages: int = 0
    enomem_events: int = 0
    sample_loss_events: int = 0
    samples_dropped: int = 0
    truncated_scans: int = 0
    scan_samples_lost: int = 0
    helper_stalls: int = 0

    @property
    def total_events(self) -> int:
        return (
            self.busy_events
            + self.enomem_events
            + self.sample_loss_events
            + self.truncated_scans
            + self.helper_stalls
        )


class FaultInjector:
    """Deterministic, seeded source of injected kernel faults.

    One injector serves a whole run; each subsystem consults the model
    relevant to it (the planner asks :meth:`migration_busy_mask` and
    :meth:`tier_pressure`, the PEBS sampler :meth:`apply_sample_loss`,
    the profiler :meth:`truncated_scan_keep`, the mechanisms
    :meth:`helper_stall`).  All injected events accumulate in
    :attr:`log` for the run report.

    Args:
        config: per-model fault rates (default: everything off).
        seed: seed for the injector's private generator — independent of
            the simulation's RNG streams, so attaching an injector never
            perturbs workload/profiler randomness.
    """

    def __init__(self, config: FaultConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else FaultConfig()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.log = FaultLog()
        #: Optional ObsContext; the engine wires it in.  Every injected
        #: fault is emitted as a structured event.  Purely observational:
        #: the injector's RNG draws are identical with or without it.
        self.obs = None
        #: Interval hint the engine refreshes each step (obs-only; the
        #: injector itself never reads simulation progress).
        self.current_interval = -1

    def _emit(self, model: str, **fields) -> None:
        if self.obs is not None:
            from repro.obs.events import EV_FAULT_INJECTED

            self.obs.emit(EV_FAULT_INJECTED, interval=self.current_interval,
                          model=model, **fields)
            self.obs.inc("faults.injected", model=model)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def reset(self) -> None:
        """Rewind the generator and clear the log (fresh run, same faults)."""
        self.rng = np.random.default_rng(self.seed)
        self.log = FaultLog()

    # -- fault models -----------------------------------------------------------

    def migration_busy_mask(self, npages: int) -> np.ndarray | None:
        """EBUSY: which of a chunk's pages fail to move (None = no fault)."""
        cfg = self.config
        if cfg.migration_busy_rate <= 0.0 or npages <= 0:
            return None
        if self.rng.random() >= cfg.migration_busy_rate:
            return None
        fraction = self.rng.uniform(0.0, cfg.busy_fraction_max)
        n_busy = min(npages, max(1, int(round(npages * fraction))))
        mask = np.zeros(npages, dtype=bool)
        mask[self.rng.choice(npages, size=n_busy, replace=False)] = True
        self.log.busy_events += 1
        self.log.busy_pages += n_busy
        self._emit("migration_busy", npages=npages, busy_pages=n_busy)
        return mask

    def tier_pressure(self, node_id: int) -> bool:
        """ENOMEM: does the allocation on ``node_id`` fail under pressure?"""
        if self.config.tier_pressure_rate <= 0.0:
            return False
        if self.rng.random() >= self.config.tier_pressure_rate:
            return False
        self.log.enomem_events += 1
        self._emit("tier_pressure", node=node_id)
        return True

    def apply_sample_loss(self, draws: np.ndarray) -> tuple[np.ndarray, int]:
        """Ring-buffer overflow: thin per-page sample counts, return loss."""
        if self.config.sample_loss_rate <= 0.0 or draws.size == 0:
            return draws, 0
        total = int(draws.sum())
        if total == 0 or self.rng.random() >= self.config.sample_loss_rate:
            return draws, 0
        keep_p = self.rng.uniform(0.1, 0.9)
        kept = self.rng.binomial(draws, keep_p)
        lost = total - int(kept.sum())
        self.log.sample_loss_events += 1
        self.log.samples_dropped += lost
        self._emit("sample_loss", samples_lost=lost)
        return kept, lost

    def truncated_scan_keep(self, n_samples: int) -> int:
        """Preempted scan pass: how many of ``n_samples`` were covered."""
        if self.config.scan_truncation_rate <= 0.0 or n_samples <= 1:
            return n_samples
        if self.rng.random() >= self.config.scan_truncation_rate:
            return n_samples
        keep = int(self.rng.integers(1, n_samples))
        self.log.truncated_scans += 1
        self.log.scan_samples_lost += n_samples - keep
        self._emit("scan_truncation", samples_lost=n_samples - keep)
        return keep

    def helper_stall(self) -> float:
        """Async copy-thread stall: background-time factor (1.0 = none)."""
        if self.config.stall_rate <= 0.0:
            return 1.0
        if self.rng.random() >= self.config.stall_rate:
            return 1.0
        self.log.helper_stalls += 1
        self._emit("helper_stall", factor=self.config.stall_factor)
        return self.config.stall_factor
