"""Interval watchdog: degraded-mode control for the daemon loop.

The paper's daemon must hold its overhead target even when the machine
misbehaves — a profiling pass that blows the budget or a burst of
migration faults must lead to *load shedding*, not a crash or an
ever-growing backlog.  The watchdog watches each interval's management
share (profiling + migration time over application time) and injected
fault activity; after ``patience`` consecutive bad intervals it arms
``shed_intervals`` degraded intervals, during which the engine skips the
profiling scan and sheds new migration work (pending retries still
drain, so the backlog empties while the daemon backs off).

The watchdog is purely deterministic — its decisions depend only on
observed interval records — so an idle watchdog never perturbs a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WatchdogConfig:
    """Degraded-mode trigger thresholds.

    Attributes:
        overhead_limit: management share of application time above which
            an interval counts as over budget (well above the 5% target;
            this is the "blown budget" tripwire, not the steady target).
        fault_burst: injected fault events in one interval that mark it
            as fault-hot even when timing looks fine.
        patience: consecutive bad intervals before shedding starts.
        shed_intervals: degraded intervals armed per trigger.
    """

    overhead_limit: float = 0.5
    fault_burst: int = 2
    patience: int = 2
    shed_intervals: int = 1

    def __post_init__(self) -> None:
        if self.overhead_limit <= 0.0:
            raise ConfigError(f"overhead_limit must be positive, got {self.overhead_limit}")
        if self.fault_burst < 1:
            raise ConfigError(f"fault_burst must be >= 1, got {self.fault_burst}")
        if self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")
        if self.shed_intervals < 1:
            raise ConfigError(f"shed_intervals must be >= 1, got {self.shed_intervals}")


class IntervalWatchdog:
    """Arms degraded intervals when the daemon loop runs hot."""

    def __init__(self, config: WatchdogConfig | None = None) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.degraded_intervals = 0
        self.triggers = 0
        self._streak = 0
        self._shed_pending = 0

    def should_shed(self) -> bool:
        """Is a degraded interval armed for the upcoming step?"""
        return self._shed_pending > 0

    def begin_shed(self) -> None:
        """Consume one armed degraded interval (the engine is shedding)."""
        if self._shed_pending > 0:
            self._shed_pending -= 1
        self.degraded_intervals += 1

    def observe(self, app_time: float, management_time: float, fault_events: int) -> None:
        """Fold one finished interval into the trigger state."""
        over_budget = app_time > 0 and management_time / app_time > self.config.overhead_limit
        fault_hot = fault_events >= self.config.fault_burst
        if over_budget or fault_hot:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.config.patience:
            self._shed_pending = self.config.shed_intervals
            self.triggers += 1
            self._streak = 0
