"""Fault injection and degraded-mode control (robustness plane).

The real MTM artifact runs against a kernel where ``move_pages()``
partially fails (EBUSY on pinned pages, ENOMEM under tier pressure), PEBS
ring buffers overflow, and profiling passes get preempted — yet the
daemon must keep converging.  This package provides the seeded,
deterministic :class:`FaultInjector` that stands in for those kernel
behaviors, and the :class:`IntervalWatchdog` that puts the daemon loop
into a degraded mode (shed migration budget, skip scans) instead of
letting a blown overhead budget or a fault burst crash the run.

:class:`ServiceFaultInjector` lifts the same discipline to the *process*
level for the sweep service (:mod:`repro.service`): SIGKILLed workers,
severed sockets, and bit-flipped cache entries, seeded and scriptable so
the chaos suites can assert a sweep under fire still produces results
bit-identical to a clean serial run.
"""

from repro.faults.injector import FaultConfig, FaultInjector, FaultLog
from repro.faults.service import ServiceFaultConfig, ServiceFaultInjector
from repro.faults.watchdog import IntervalWatchdog, WatchdogConfig

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultLog",
    "IntervalWatchdog",
    "ServiceFaultConfig",
    "ServiceFaultInjector",
    "WatchdogConfig",
]
