"""Per-component physical frame accounting.

Migration policies only need to know *how many* pages fit on each component,
not which physical frames hold them, so this is a counting allocator: fast,
exact, and sufficient for capacity-driven decisions ("does tier 2 have room
for this 200 MB promotion?").
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigError, TierPressureError
from repro.hw.topology import TierTopology
from repro.units import PAGE_SIZE, format_bytes


class FrameAccountant:
    """Tracks used/free base pages on every component of a topology.

    Args:
        topology: the machine whose components to account for.
        reserved_fraction: fraction of each component held back from
            allocation (models kernel/metadata reservations; the paper's
            daemon keeps headroom on the fast tiers for promotions).
    """

    def __init__(self, topology: TierTopology, reserved_fraction: float = 0.0) -> None:
        if not 0.0 <= reserved_fraction < 1.0:
            raise ConfigError(
                f"reserved_fraction must be in [0, 1), got {reserved_fraction}"
            )
        self._topology = topology
        self._capacity: dict[int, int] = {}
        self._used: dict[int, int] = {}
        for component in topology.components:
            usable = int(component.capacity_pages * (1.0 - reserved_fraction))
            if usable < 1:
                raise ConfigError(f"{component.name}: no usable pages after reserve")
            self._capacity[component.node_id] = usable
            self._used[component.node_id] = 0

    # -- queries --------------------------------------------------------------

    def capacity_pages(self, node_id: int) -> int:
        """Usable capacity of ``node_id`` in pages."""
        self._check(node_id)
        return self._capacity[node_id]

    def used_pages(self, node_id: int) -> int:
        """Pages currently allocated on ``node_id``."""
        self._check(node_id)
        return self._used[node_id]

    def free_pages(self, node_id: int) -> int:
        """Pages still available on ``node_id``."""
        self._check(node_id)
        return self._capacity[node_id] - self._used[node_id]

    def utilization(self, node_id: int) -> float:
        """Fraction of usable capacity in use, in [0, 1]."""
        self._check(node_id)
        return self._used[node_id] / self._capacity[node_id]

    def can_fit(self, node_id: int, npages: int) -> bool:
        """Whether ``npages`` more pages fit on ``node_id``."""
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        return self.free_pages(node_id) >= npages

    # -- mutations --------------------------------------------------------------

    def allocate(self, node_id: int, npages: int) -> None:
        """Claim ``npages`` on ``node_id``.

        Raises:
            TierPressureError: if the component does not have enough free
                pages (a :class:`~repro.errors.CapacityError` carrying the
                pressured tier as structured context).
        """
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if not self.can_fit(node_id, npages):
            raise TierPressureError(
                f"node {node_id}: cannot allocate {npages} pages "
                f"({self.free_pages(node_id)} free of {self._capacity[node_id]})",
                tier=node_id,
            )
        self._used[node_id] += npages

    def release(self, node_id: int, npages: int) -> None:
        """Return ``npages`` on ``node_id`` to the free pool."""
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if self._used.get(node_id, 0) < npages:
            raise CapacityError(
                f"node {node_id}: releasing {npages} pages but only "
                f"{self._used.get(node_id, 0)} are allocated"
            )
        self._used[node_id] -= npages

    def move(self, src_node: int, dst_node: int, npages: int) -> None:
        """Atomically transfer accounting of ``npages`` between components."""
        self.allocate(dst_node, npages)
        self.release(src_node, npages)

    # -- helpers --------------------------------------------------------------

    def _check(self, node_id: int) -> None:
        if node_id not in self._capacity:
            raise ConfigError(f"unknown node id {node_id}")

    def snapshot(self) -> dict[int, tuple[int, int]]:
        """``{node_id: (used_pages, capacity_pages)}`` for reporting."""
        return {n: (self._used[n], self._capacity[n]) for n in self._capacity}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for node_id, (used, cap) in sorted(self.snapshot().items()):
            parts.append(
                f"node{node_id}: {format_bytes(used * PAGE_SIZE)}/"
                f"{format_bytes(cap * PAGE_SIZE)}"
            )
        return "FrameAccountant(" + ", ".join(parts) + ")"
