"""Hardware model: memory components, tier topologies, frame accounting.

This subpackage encodes everything the paper's Table 1 describes about the
testbed: the four memory components of the two-socket Optane machine, the
per-socket access costs that make them appear as four *tiers*, and the
capacity bookkeeping used by allocation and migration.  It also provides the
hardware-managed DRAM-cache mode (Optane "Memory Mode") used as the HMC
baseline.
"""

from repro.hw.tier import AccessCost, MemoryComponent, MemoryKind
from repro.hw.topology import (
    TierTopology,
    TierView,
    cxl_topology,
    optane_4tier,
    optane_2tier,
    uniform_topology,
)
from repro.hw.frames import FrameAccountant
from repro.hw.dram_cache import DramCache, DramCacheStats
from repro.hw.placement import (
    Placer,
    TierOrderPlacer,
    first_touch_placer,
    slow_tier_first_placer,
)

__all__ = [
    "AccessCost",
    "MemoryComponent",
    "MemoryKind",
    "TierTopology",
    "TierView",
    "optane_4tier",
    "optane_2tier",
    "cxl_topology",
    "uniform_topology",
    "FrameAccountant",
    "DramCache",
    "DramCacheStats",
    "Placer",
    "TierOrderPlacer",
    "first_touch_placer",
    "slow_tier_first_placer",
]
