"""Initial page-placement strategies.

Where freshly allocated pages land before any migration:

* :class:`Placer` — everything on one fixed node (tests, microbenches);
* :class:`FirstTouchPlacer` — the Linux default and the baselines' choice:
  fill the toucher's fastest tier, spill downward when full;
* :class:`SlowTierFirstPlacer` — MTM's choice (Sec. 9.1, Table 4): start
  in the local *slow* tier and let promotion pull hot pages up, keeping
  the fast tiers free for pages that prove themselves hot.

Chunks returned by a placer are huge-page aligned (except the final tail)
so THP mappings are not torn at placement time.
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigError
from repro.hw.frames import FrameAccountant
from repro.hw.topology import TierTopology
from repro.units import PAGES_PER_HUGE_PAGE


class Placer:
    """Places every allocation on one fixed node.

    The frame accounting, when provided, is charged so capacity stays
    consistent with the page table.
    """

    def __init__(self, node: int, frames: FrameAccountant | None = None) -> None:
        self.node = node
        self.frames = frames

    def place(self, npages: int) -> list[tuple[int, int]]:
        """Split an ``npages`` allocation into ``(chunk_pages, node)`` parts."""
        if npages < 1:
            raise ConfigError(f"npages must be >= 1, got {npages}")
        if self.frames is not None:
            self.frames.allocate(self.node, npages)
        return [(npages, self.node)]


class TierOrderPlacer(Placer):
    """Fills components in a fixed preference order, spilling when full.

    Args:
        topology: the machine.
        frames: capacity accounting (charged as chunks are placed).
        preference: component node ids, most-preferred first.
    """

    def __init__(
        self,
        topology: TierTopology,
        frames: FrameAccountant,
        preference: list[int],
    ) -> None:
        if not preference:
            raise ConfigError("preference order must not be empty")
        for node in preference:
            topology.component(node)  # validates
        super().__init__(preference[0], frames)
        self.topology = topology
        self.preference = list(preference)

    def place(self, npages: int) -> list[tuple[int, int]]:
        if npages < 1:
            raise ConfigError(f"npages must be >= 1, got {npages}")
        assert self.frames is not None
        chunks: list[tuple[int, int]] = []
        remaining = npages
        for node in self.preference:
            if remaining == 0:
                break
            free = self.frames.free_pages(node)
            if free <= 0:
                continue
            take = min(remaining, free)
            if remaining > take:
                # Keep the spill boundary huge-aligned.
                take = (take // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
                if take == 0:
                    continue
            self.frames.allocate(node, take)
            chunks.append((take, node))
            remaining -= take
        if remaining > 0:
            raise CapacityError(
                f"machine out of memory: {remaining} of {npages} pages unplaced"
            )
        return chunks


def first_touch_placer(
    topology: TierTopology, frames: FrameAccountant, socket: int = 0
) -> TierOrderPlacer:
    """Fastest tier of the toucher's view first, then down the ladder."""
    view = topology.view(socket)
    return TierOrderPlacer(topology, frames, list(view.ranked_nodes))


def slow_tier_first_placer(
    topology: TierTopology, frames: FrameAccountant, socket: int = 0
) -> TierOrderPlacer:
    """MTM's initial placement: the slowest *local* tier first, then the
    remaining tiers slowest-to-fastest (fast tiers stay free for
    promotions).  CPU-less components (CXL expanders) count as local to
    every socket."""
    view = topology.view(socket)
    local_slowest = None
    for tier in range(view.num_tiers, 0, -1):
        node = view.node_at_tier(tier)
        owner = topology.component(node).socket
        if owner == socket or owner is None:
            local_slowest = node
            break
    order: list[int] = []
    if local_slowest is not None:
        order.append(local_slowest)
    for tier in range(view.num_tiers, 0, -1):
        node = view.node_at_tier(tier)
        if node not in order:
            order.append(node)
    return TierOrderPlacer(topology, frames, order)
