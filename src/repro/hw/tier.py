"""Memory components and access costs.

A *component* is a physical memory node (a DRAM DIMM set or a PM module
attached to one socket).  Whether a component is a "fast" or "slow" *tier*
depends on who is asking: the same DRAM is tier 1 for the local socket and
tier 2 for the remote one (the paper's "multi-view of tiered memory",
Sec. 6.2).  Components therefore carry only identity and capacity; access
costs live on the topology as (socket, component) pairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import PAGE_SIZE, format_bytes


class MemoryKind(enum.Enum):
    """Technology class of a memory component."""

    DRAM = "dram"
    PM = "pm"  # persistent memory (Optane DC PM in the paper)
    CXL = "cxl"  # CXL-attached expansion (CPU-less node)


@dataclass(frozen=True)
class AccessCost:
    """Cost of accessing one component from one socket.

    Attributes:
        latency: seconds per access (the paper quotes idle load latency).
        bandwidth: bytes per second of sustained transfer.
    """

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ConfigError(f"latency must be positive, got {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {self.bandwidth}")

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` through this link: latency + size/BW."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth

    def sort_key(self) -> tuple[float, float]:
        """Ordering key: lower latency first, higher bandwidth breaks ties."""
        return (self.latency, -self.bandwidth)


@dataclass(frozen=True)
class MemoryComponent:
    """One physical memory node.

    Attributes:
        node_id: stable integer id (the NUMA node number).
        name: human-readable label, e.g. ``"dram0"``.
        kind: technology class.
        capacity: size in bytes; must be a whole number of base pages.
        socket: the socket this component is attached to, or ``None`` for
            CPU-less nodes (CXL expanders appear this way in Linux).
    """

    node_id: int
    name: str
    kind: MemoryKind
    capacity: int
    socket: int | None = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.capacity % PAGE_SIZE != 0:
            raise ConfigError(
                f"{self.name}: capacity {self.capacity} is not page-aligned"
            )

    @property
    def capacity_pages(self) -> int:
        """Capacity expressed in base pages."""
        return self.capacity // PAGE_SIZE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.kind.value}, {format_bytes(self.capacity)})"
