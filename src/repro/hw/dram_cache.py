"""Hardware-managed DRAM cache (Optane "Memory Mode") — the HMC baseline.

In Memory Mode the DRAM is a direct-mapped, physically-indexed cache in
front of PM: software sees only the PM capacity, every miss fetches a whole
cache block from PM, and dirty victims are written back first (the write
amplification the paper cites from Hildebrand et al. as HMC's weakness).

We model the cache at page granularity with a direct-mapped tag array.
Access batches are page-indexed histograms, so a page's first access in a
batch decides hit/miss and the remaining accesses to it in the same batch
hit in DRAM — which matches how a direct-mapped cache behaves for a batch
with temporal locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import PAGE_SIZE


@dataclass
class DramCacheStats:
    """Running hit/miss/write-back counters for a :class:`DramCache`."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bytes_fetched: int = 0
    bytes_written_back: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from DRAM; 0 when never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def write_amplification(self) -> float:
        """Bytes moved between DRAM and PM per byte of demand traffic.

        >1 means the cache moved more data than the application asked for —
        the effect that makes HMC lose to software tiering in the paper.
        """
        demand = self.accesses * PAGE_SIZE
        if demand == 0:
            return 0.0
        return (self.bytes_fetched + self.bytes_written_back) / demand


class DramCache:
    """Direct-mapped page-granularity DRAM cache over a PM backing store.

    Args:
        num_sets: number of page-sized cache slots (DRAM capacity / 4 KB).
        block_pages: pages fetched per miss (1 models Optane's near-page
            blocks after scaling; >1 exaggerates amplification for studies).
        block_bytes: bytes actually transferred per miss/write-back; Optane
            Memory Mode moves multiples of the 256 B XPLine, far less than
            a full page.  Defaults to a whole block.
    """

    EMPTY = -1

    def __init__(self, num_sets: int, block_pages: int = 1, block_bytes: int | None = None) -> None:
        if num_sets < 1:
            raise ConfigError(f"num_sets must be >= 1, got {num_sets}")
        if block_pages < 1:
            raise ConfigError(f"block_pages must be >= 1, got {block_pages}")
        self.num_sets = num_sets
        self.block_pages = block_pages
        self.block_bytes = (
            block_bytes if block_bytes is not None else block_pages * PAGE_SIZE
        )
        if self.block_bytes < 1:
            raise ConfigError(f"block_bytes must be >= 1, got {self.block_bytes}")
        self._tags = np.full(num_sets, self.EMPTY, dtype=np.int64)
        self._dirty = np.zeros(num_sets, dtype=bool)
        self.stats = DramCacheStats()

    def access_batch(self, pages: np.ndarray, counts: np.ndarray, writes: np.ndarray) -> tuple[int, int]:
        """Apply a batch of page accesses and return ``(dram_hits, pm_misses)``.

        Args:
            pages: unique page numbers accessed this batch.
            counts: accesses per page (same length as ``pages``).
            writes: write accesses per page (``writes <= counts``).

        Returns:
            Tuple of (accesses served by DRAM, accesses that missed to PM).
            Only the *first* access to a page in the batch can miss; the
            rest hit the freshly-filled block.
        """
        pages = np.asarray(pages, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        writes = np.asarray(writes, dtype=np.int64)
        if not (pages.shape == counts.shape == writes.shape):
            raise ConfigError("pages/counts/writes must have identical shapes")
        if pages.size == 0:
            return (0, 0)
        if np.any(counts < 1):
            raise ConfigError("every listed page must have at least one access")
        if np.any(writes > counts) or np.any(writes < 0):
            raise ConfigError("writes per page must be within [0, counts]")

        sets = pages % self.num_sets
        hit_mask = self._tags[sets] == pages

        miss_pages = pages[~hit_mask]
        miss_sets = sets[~hit_mask]
        n_misses = int(miss_pages.size)

        # Victims that are dirty must be written back before the fill.
        victim_tags = self._tags[miss_sets]
        victim_dirty = self._dirty[miss_sets] & (victim_tags != self.EMPTY)
        n_writebacks = int(np.count_nonzero(victim_dirty))

        # Install the new blocks.  If two missing pages in the batch map to
        # the same set, numpy's last-write-wins matches a sequential fill.
        self._tags[miss_sets] = miss_pages
        self._dirty[miss_sets] = False

        # Mark dirtiness from this batch's writes (hits and fresh fills).
        written = writes > 0
        self._dirty[sets[written]] = True

        hits = int(counts.sum()) - n_misses
        self.stats.hits += hits
        self.stats.misses += n_misses
        self.stats.writebacks += n_writebacks
        self.stats.bytes_fetched += n_misses * self.block_bytes
        self.stats.bytes_written_back += n_writebacks * self.block_bytes
        return (hits, n_misses)

    def resident(self, page: int) -> bool:
        """Whether ``page`` is currently cached in DRAM."""
        return bool(self._tags[page % self.num_sets] == page)

    def flush(self) -> int:
        """Write back all dirty blocks and empty the cache.

        Returns:
            Number of blocks written back.
        """
        n_dirty = int(np.count_nonzero(self._dirty & (self._tags != self.EMPTY)))
        self.stats.writebacks += n_dirty
        self.stats.bytes_written_back += n_dirty * self.block_bytes
        self._tags.fill(self.EMPTY)
        self._dirty.fill(False)
        return n_dirty
