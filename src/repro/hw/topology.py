"""Tier topologies: components + per-socket access costs + tier views.

The paper's testbed (Table 1) is a two-socket Optane machine whose four
memory components form four tiers *from the point of view of one socket*:

====  =========================  ========  =========
tier  component                  latency   bandwidth
====  =========================  ========  =========
1     local DRAM                 90 ns     95 GB/s
2     remote DRAM                145 ns    35 GB/s
3     local Optane PM            275 ns    35 GB/s
4     remote Optane PM           340 ns    1 GB/s
====  =========================  ========  =========

:func:`optane_4tier` builds exactly this machine (capacities scaled for
simulation); :func:`optane_2tier` builds the single-socket DRAM+PM system
of Sec. 9.6; :func:`uniform_topology` builds arbitrary synthetic ladders
for tests and sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.tier import AccessCost, MemoryComponent, MemoryKind
from repro.units import GiB, gb_per_s, ns


@dataclass(frozen=True)
class TierView:
    """One socket's ordering of components into tiers.

    Attributes:
        socket: the viewing socket.
        ranked_nodes: component node ids ordered fastest (tier 1) first.
    """

    socket: int
    ranked_nodes: tuple[int, ...]

    def tier_of(self, node_id: int) -> int:
        """1-based tier rank of ``node_id`` in this view."""
        try:
            return self.ranked_nodes.index(node_id) + 1
        except ValueError:
            raise ConfigError(f"node {node_id} not in view of socket {self.socket}")

    def node_at_tier(self, tier: int) -> int:
        """Component node id at 1-based tier ``tier``."""
        if not 1 <= tier <= len(self.ranked_nodes):
            raise ConfigError(f"tier {tier} out of range 1..{len(self.ranked_nodes)}")
        return self.ranked_nodes[tier - 1]

    @property
    def num_tiers(self) -> int:
        return len(self.ranked_nodes)


@dataclass
class TierTopology:
    """A multi-tier memory machine: components plus per-socket access costs.

    Attributes:
        components: all memory components, keyed by insertion order.
        costs: mapping ``(socket, node_id) -> AccessCost``.  Every socket
            must have a cost to every component.
        num_sockets: number of CPU sockets.
    """

    components: tuple[MemoryComponent, ...]
    costs: dict[tuple[int, int], AccessCost]
    num_sockets: int
    _views: dict[int, TierView] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigError("topology needs at least one component")
        if self.num_sockets < 1:
            raise ConfigError("topology needs at least one socket")
        node_ids = [c.node_id for c in self.components]
        if len(set(node_ids)) != len(node_ids):
            raise ConfigError(f"duplicate node ids: {node_ids}")
        for socket in range(self.num_sockets):
            for component in self.components:
                if (socket, component.node_id) not in self.costs:
                    raise ConfigError(
                        f"missing cost for socket {socket} -> {component.name}"
                    )
        for socket in range(self.num_sockets):
            ranked = sorted(
                self.components,
                key=lambda c: self.costs[(socket, c.node_id)].sort_key(),
            )
            self._views[socket] = TierView(
                socket=socket, ranked_nodes=tuple(c.node_id for c in ranked)
            )

    # -- lookups --------------------------------------------------------------

    @property
    def num_tiers(self) -> int:
        """Number of distinct tiers (== number of components)."""
        return len(self.components)

    @property
    def node_ids(self) -> tuple[int, ...]:
        return tuple(c.node_id for c in self.components)

    def component(self, node_id: int) -> MemoryComponent:
        for c in self.components:
            if c.node_id == node_id:
                return c
        raise ConfigError(f"unknown node id {node_id}")

    def cost(self, socket: int, node_id: int) -> AccessCost:
        """Access cost from ``socket`` to component ``node_id``."""
        try:
            return self.costs[(socket, node_id)]
        except KeyError:
            raise ConfigError(f"no cost for socket {socket} -> node {node_id}")

    def view(self, socket: int) -> TierView:
        """Tier ordering as seen from ``socket``."""
        try:
            return self._views[socket]
        except KeyError:
            raise ConfigError(f"unknown socket {socket}")

    def copy_cost(self, src_node: int, dst_node: int, socket: int = 0) -> AccessCost:
        """Effective cost of copying between two components.

        A page copy reads from the source and writes to the destination, so
        its bandwidth is limited by the slower of the two links and its
        latency is the sum of both.
        """
        src = self.cost(socket, src_node)
        dst = self.cost(socket, dst_node)
        return AccessCost(
            latency=src.latency + dst.latency,
            bandwidth=min(src.bandwidth, dst.bandwidth),
        )

    def total_capacity(self) -> int:
        """Sum of all component capacities in bytes."""
        return sum(c.capacity for c in self.components)


# -- canonical machines -------------------------------------------------------

#: Default capacity scaling applied to the paper's testbed so hundreds of
#: megabytes stand in for hundreds of gigabytes (see DESIGN.md, scaling rule).
DEFAULT_SCALE = 1.0 / 1024.0


def _scaled_capacity(nbytes: float) -> int:
    """Round a scaled capacity down to a whole number of 2 MiB chunks.

    Keeping capacities huge-page aligned avoids spurious fragmentation in
    the frame accounting when THP is enabled.
    """
    from repro.units import HUGE_PAGE_SIZE

    chunks = max(1, int(nbytes) // HUGE_PAGE_SIZE)
    return chunks * HUGE_PAGE_SIZE


def optane_4tier(scale: float = DEFAULT_SCALE) -> TierTopology:
    """The paper's two-socket, four-tier Optane machine (Table 1).

    Args:
        scale: capacity scale factor.  1.0 reproduces the physical machine
            (2 x 96 GB DRAM + 2 x 756 GB PM); the default shrinks it ~1000x
            while preserving all capacity ratios.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    dram0 = MemoryComponent(0, "dram0", MemoryKind.DRAM, _scaled_capacity(96 * GiB * scale), socket=0)
    dram1 = MemoryComponent(1, "dram1", MemoryKind.DRAM, _scaled_capacity(96 * GiB * scale), socket=1)
    pm0 = MemoryComponent(2, "pm0", MemoryKind.PM, _scaled_capacity(756 * GiB * scale), socket=0)
    pm1 = MemoryComponent(3, "pm1", MemoryKind.PM, _scaled_capacity(756 * GiB * scale), socket=1)

    local_dram = AccessCost(latency=ns(90), bandwidth=gb_per_s(95))
    remote_dram = AccessCost(latency=ns(145), bandwidth=gb_per_s(35))
    local_pm = AccessCost(latency=ns(275), bandwidth=gb_per_s(35))
    remote_pm = AccessCost(latency=ns(340), bandwidth=gb_per_s(1))

    costs = {
        (0, 0): local_dram, (0, 1): remote_dram, (0, 2): local_pm, (0, 3): remote_pm,
        (1, 1): local_dram, (1, 0): remote_dram, (1, 3): local_pm, (1, 2): remote_pm,
    }
    return TierTopology(components=(dram0, dram1, pm0, pm1), costs=costs, num_sockets=2)


def optane_2tier(scale: float = DEFAULT_SCALE) -> TierTopology:
    """Single-socket DRAM + Optane system used in Sec. 9.6 (vs HeMem)."""
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    dram = MemoryComponent(0, "dram0", MemoryKind.DRAM, _scaled_capacity(96 * GiB * scale), socket=0)
    pm = MemoryComponent(1, "pm0", MemoryKind.PM, _scaled_capacity(756 * GiB * scale), socket=0)
    costs = {
        (0, 0): AccessCost(latency=ns(90), bandwidth=gb_per_s(95)),
        (0, 1): AccessCost(latency=ns(275), bandwidth=gb_per_s(35)),
    }
    return TierTopology(components=(dram, pm), costs=costs, num_sockets=1)


def cxl_topology(
    scale: float = DEFAULT_SCALE,
    expander_capacity: int = 512 * GiB,
    expander_latency_ns: float = 250.0,
    expander_bandwidth_gbs: float = 28.0,
) -> TierTopology:
    """A CXL-era three-tier machine: DRAM, remote DRAM, CXL expander.

    The paper's introduction names CXL memory expansion as the trend adding
    tiers; this topology models a two-socket DRAM machine plus a CPU-less
    CXL Type-3 expander (latencies in the published 170-250 ns range,
    bandwidth of a x8 CXL 2.0 link).  The expander appears to both sockets
    at the same cost — a CPU-less node, exactly how Linux exposes it.

    Args:
        scale: capacity scale factor.
        expander_capacity: expander size at paper scale.
        expander_latency_ns / expander_bandwidth_gbs: CXL link costs.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    dram0 = MemoryComponent(0, "dram0", MemoryKind.DRAM, _scaled_capacity(96 * GiB * scale), socket=0)
    dram1 = MemoryComponent(1, "dram1", MemoryKind.DRAM, _scaled_capacity(96 * GiB * scale), socket=1)
    cxl = MemoryComponent(
        2, "cxl0", MemoryKind.CXL, _scaled_capacity(expander_capacity * scale), socket=None
    )
    local = AccessCost(latency=ns(90), bandwidth=gb_per_s(95))
    remote = AccessCost(latency=ns(145), bandwidth=gb_per_s(35))
    link = AccessCost(latency=ns(expander_latency_ns), bandwidth=gb_per_s(expander_bandwidth_gbs))
    costs = {
        (0, 0): local, (0, 1): remote, (0, 2): link,
        (1, 1): local, (1, 0): remote, (1, 2): link,
    }
    return TierTopology(components=(dram0, dram1, cxl), costs=costs, num_sockets=2)


def uniform_topology(
    capacities: list[int],
    latencies_ns: list[float] | None = None,
    bandwidths_gbs: list[float] | None = None,
    num_sockets: int = 1,
) -> TierTopology:
    """Synthetic single-view ladder of tiers, for tests and sweeps.

    Args:
        capacities: per-tier capacities in bytes, fastest first.
        latencies_ns: per-tier latencies (defaults to 100ns * 2^i).
        bandwidths_gbs: per-tier bandwidths (defaults to 64 / 2^i GB/s).
        num_sockets: all sockets share the same view of every component.
    """
    n = len(capacities)
    if n == 0:
        raise ConfigError("need at least one tier")
    if latencies_ns is None:
        latencies_ns = [100.0 * (2**i) for i in range(n)]
    if bandwidths_gbs is None:
        bandwidths_gbs = [64.0 / (2**i) for i in range(n)]
    if not (len(latencies_ns) == len(bandwidths_gbs) == n):
        raise ConfigError("capacities/latencies/bandwidths lengths differ")
    components = tuple(
        MemoryComponent(
            i,
            f"tier{i + 1}",
            MemoryKind.DRAM if i == 0 else MemoryKind.PM,
            capacities[i],
            socket=0,
        )
        for i in range(n)
    )
    costs = {
        (s, i): AccessCost(latency=ns(latencies_ns[i]), bandwidth=gb_per_s(bandwidths_gbs[i]))
        for s in range(num_sockets)
        for i in range(n)
    }
    return TierTopology(components=components, costs=costs, num_sockets=num_sockets)
