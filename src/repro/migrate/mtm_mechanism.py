"""MTM's ``move_memory_regions()``: adaptive async/sync migration (Sec. 7.2).

The asynchronous scheme: helper threads run page allocation and page copy
*off the critical path*, overlapped with application execution; the main
thread only pays for unmap/remap, page-table migration, and dirtiness
tracking.  Writes to the region during the copy would make the fresh copy
stale, so MTM write-protects the region through the reserved PTE bit
(one TLB flush, one ~40 us fault on first write) and, on the first
detected write, **switches to the synchronous copy** — the whole copy
lands back on the critical path, plus the already-copied pages were copied
for nothing (the "extra page copy" cost).

Whether a write lands mid-copy is a Bernoulli draw with
``p = 1 - exp(-write_rate * copy_window)`` — the region's measured write
rate applied over the async copy window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes
from repro.sim.costmodel import CostModel


@dataclass(frozen=True)
class MtmMechanismConfig:
    """``move_memory_regions()`` tunables.

    Attributes:
        copy_threads: helper threads driving the async copy.
        recopy_fraction: expected fraction of pages already copied when the
            switch to sync happens (they are copied again).
        tlb_flush_cost: one full flush to arm write tracking.
        remap_batch_factor: fraction of the per-page unmap/remap cost the
            region-granular API pays.  ``move_pages()`` unmaps and remaps
            4 KB pages one by one (per-page shootdowns and walks);
            ``move_memory_regions()`` operates on whole regions and
            batches that work — part of how it reaches the paper's 4.37x
            critical-path advantage (Fig. 3).
    """

    copy_threads: int = 4
    recopy_fraction: float = 0.5
    tlb_flush_cost: float = 4e-6
    remap_batch_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.copy_threads < 1:
            raise ConfigError("copy_threads must be >= 1")
        if not 0.0 <= self.recopy_fraction <= 1.0:
            raise ConfigError("recopy_fraction must be in [0, 1]")
        if not 0.0 < self.remap_batch_factor <= 1.0:
            raise ConfigError("remap_batch_factor must be in (0, 1]")


class MoveMemoryRegionsMechanism(Mechanism):
    """Adaptive asynchronous page migration."""

    name = "move_memory_regions"

    def __init__(
        self,
        cost_model: CostModel,
        config: MtmMechanismConfig | None = None,
        rng: np.random.Generator | None = None,
        force_sync: bool = False,
    ) -> None:
        super().__init__(cost_model)
        self.config = config if config is not None else MtmMechanismConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Ablation switch ("w/o async migration", Fig. 7): behave like a
        #: parallel synchronous mechanism.
        self.force_sync = force_sync

    def timing(
        self,
        npages: int,
        src_node: int,
        dst_node: int,
        write_rate: float = 0.0,
    ) -> MigrationTiming:
        self._check(npages, write_rate)
        cm = self.cost_model
        cfg = self.config
        copy_time = cm.copy_time(npages, src_node, dst_node, parallelism=cfg.copy_threads)
        alloc_time = cm.alloc_time(npages)
        unmap_remap = (cm.unmap_time(npages) + cm.map_time(npages)) * cfg.remap_batch_factor
        pte_migrate = cm.pte_migrate_time(npages)

        if self.force_sync:
            # "w/o async migration": the plain synchronous scheme — no
            # background staging, hence no batched remap either.  A stall
            # preempts the main-thread copy loop.
            critical = StepTimes(
                allocate=alloc_time,
                unmap_remap=cm.unmap_time(npages) + cm.map_time(npages),
                copy=copy_time * self._stall_factor(),
                migrate_page_table=pte_migrate,
            )
            return self._record_timing(
                MigrationTiming(critical=critical), npages, src_node, dst_node
            )

        # Async attempt: arm write tracking (reserved bit + one flush).
        # An injected stall deschedules the helper threads, stretching the
        # overlapped allocate/copy window (and with it the exposure to
        # mid-copy writes).
        tracking = cfg.tlb_flush_cost
        stall = self._stall_factor()
        write_hits = self._write_lands_mid_copy(write_rate, (copy_time + alloc_time) * stall)

        if not write_hits:
            critical = StepTimes(
                unmap_remap=unmap_remap,
                migrate_page_table=pte_migrate,
                dirtiness_tracking=tracking,
            )
            background = StepTimes(allocate=alloc_time * stall, copy=copy_time * stall)
            return self._record_timing(
                MigrationTiming(critical=critical, background=background),
                npages, src_node, dst_node,
            )

        # A write landed: one write-protect fault, abandon the async copy
        # (recopy_fraction of it was wasted) and redo synchronously.  The
        # synchronous path degenerates to the classic four steps — fresh
        # allocation, per-page unmap/remap (the region-batched remap needs
        # the async protocol), and the copy — all on the critical path,
        # which is why the paper measures the write-heavy case on par with
        # move_pages() (Fig. 11 "W").
        extra_pages = int(npages * cfg.recopy_fraction)
        critical = StepTimes(
            allocate=alloc_time,
            unmap_remap=cm.unmap_time(npages) + cm.map_time(npages),
            copy=copy_time,
            migrate_page_table=pte_migrate,
            dirtiness_tracking=tracking + cm.params.write_protect_fault_cost,
        )
        background = StepTimes(
            copy=copy_time * cfg.recopy_fraction,  # the wasted async portion
        )
        return self._record_timing(
            MigrationTiming(
                critical=critical,
                background=background,
                switched_to_sync=True,
                extra_copied_pages=extra_pages,
            ),
            npages, src_node, dst_node,
        )

    def _write_lands_mid_copy(self, write_rate: float, window: float) -> bool:
        """Bernoulli draw: does a write hit the region during the window?"""
        if write_rate <= 0 or window <= 0:
            return False
        p = 1.0 - math.exp(-write_rate * window)
        return bool(self.rng.random() < p)
