"""Migration planner: applies policy orders through a mechanism.

The planner is the glue the paper's daemon service provides (Sec. 8):
take the interval's orders, make them safe (drop pages that already moved,
split any huge page an order would tear — the fragmentation cost
non-huge-aware baselines pay), compute timing through the mechanism, and
commit the moves to the page table and frame accounting.

The daemon also owns *recovery*.  Against a real kernel, ``move_pages()``
partially fails (EBUSY on pinned pages) and destination allocation fails
under tier pressure (ENOMEM); the planner therefore keeps a bounded retry
queue with exponential backoff across intervals, demotes cold resident
pages to make room before dropping a promotion, and falls back from the
adaptive async mechanism to plain synchronous ``move_pages()`` for orders
that keep failing.  With ``retry_policy=None`` the planner is fail-fast
instead: injected faults raise their :class:`~repro.errors.TransientError`
subclass — the baseline the resilience benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nputil

from repro import perfflags
from repro.errors import MigrationBusyError, MigrationError, TierPressureError
from repro.faults.injector import FaultInjector
from repro.hw.frames import FrameAccountant
from repro.hw.topology import TierTopology
from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.obs.events import (
    EV_MIG_FAILED,
    EV_MIG_ISSUED,
    EV_MIG_PLANNED,
    EV_MIG_RETRIED,
)
from repro.obs.provenance import (
    STAGE_BUSY,
    STAGE_COMMITTED,
    STAGE_DEMOTE_FOR_ROOM,
    STAGE_EXHAUSTED,
    STAGE_FALLBACK,
    STAGE_PLANNED,
    STAGE_PRESSURE,
    STAGE_RETRY,
)
from repro.policy.base import MigrationOrder
from repro.units import PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, in units of intervals.

    Attributes:
        max_attempts: total tries per order before it is dropped.
        backoff_base: intervals to wait after the first failure.
        backoff_factor: multiplicative backoff growth per failure.
        backoff_cap: ceiling on the inter-attempt delay.
        fallback_after: failed attempts after which the planner retries
            through the fallback mechanism (sync ``move_pages()``) instead
            of the primary one.
    """

    max_attempts: int = 4
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    fallback_after: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise MigrationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 1.0 or self.backoff_factor < 1.0:
            raise MigrationError("backoff base and factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise MigrationError("backoff_cap must be >= backoff_base")
        if self.fallback_after < 1:
            raise MigrationError(f"fallback_after must be >= 1, got {self.fallback_after}")

    def delay_intervals(self, failures: int) -> int:
        """Intervals to wait before the next attempt after ``failures``."""
        if failures < 1:
            raise MigrationError(f"failures must be >= 1, got {failures}")
        raw = self.backoff_base * self.backoff_factor ** (failures - 1)
        return max(1, int(min(raw, self.backoff_cap)))


@dataclass
class _PendingRetry:
    """One backed-off order waiting in the retry queue."""

    order: MigrationOrder
    failures: int
    due_interval: int


@dataclass
class MigrationLog:
    """Aggregate migration accounting across intervals."""

    promoted_pages: int = 0
    demoted_pages: int = 0
    orders_executed: int = 0
    orders_skipped: int = 0
    huge_pages_torn: int = 0
    sync_switches: int = 0
    extra_copied_pages: int = 0
    critical_time: float = 0.0
    background_time: float = 0.0
    critical_steps: StepTimes = field(default_factory=StepTimes)
    # -- robustness counters (fault recovery) --------------------------------
    busy_pages: int = 0
    partial_orders: int = 0
    enomem_events: int = 0
    demoted_for_room_pages: int = 0
    retries_scheduled: int = 0
    retries_succeeded: int = 0
    retries_exhausted: int = 0
    fallback_moves: int = 0
    retry_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def promoted_bytes(self) -> int:
        return self.promoted_pages * PAGE_SIZE

    @property
    def demoted_bytes(self) -> int:
        return self.demoted_pages * PAGE_SIZE


class MigrationPlanner:
    """Executes migration orders for one managed process.

    Args:
        page_table: the process's page table.
        frames: machine frame accounting.
        mechanism: the migration mechanism to charge timing through.
        interval: profiling-interval length (converts interval write
            counts into write rates for the adaptive mechanism).
        time_scale: factor applied to all mechanism timings.  On a
            capacity-scaled machine every quantity shrinks with ``scale``
            except the 2 MB region quantum; scaling the per-move cost keeps
            migration's share of an interval faithful to the full-size
            system.  Mechanism timings used directly (the Fig. 3/11
            microbenchmarks) remain paper-absolute.
        injector: optional fault injector (EBUSY / ENOMEM models).
        retry_policy: bounded-backoff retry schedule; ``None`` makes the
            planner fail fast — transient failures raise instead of being
            queued (the resilience benchmark's baseline).
        fallback_mechanism: mechanism used for orders that failed
            ``retry_policy.fallback_after`` times (the paper's daemon falls
            back from ``move_memory_regions()`` to sync ``move_pages()``).
        topology: machine description; enables demotion-for-room when a
            promotion's destination tier is full.
        socket: viewpoint socket for the demotion tier ladder.
    """

    def __init__(
        self,
        page_table: PageTable,
        frames: FrameAccountant,
        mechanism: Mechanism,
        interval: float = 10.0,
        time_scale: float = 1.0,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        fallback_mechanism: Mechanism | None = None,
        topology: TierTopology | None = None,
        socket: int = 0,
    ) -> None:
        if time_scale <= 0:
            raise MigrationError(f"time_scale must be positive, got {time_scale}")
        self.page_table = page_table
        self.frames = frames
        self.mechanism = mechanism
        self.interval = interval
        self.time_scale = time_scale
        self.injector = injector
        self.retry_policy = retry_policy
        self.fallback_mechanism = fallback_mechanism
        self.topology = topology
        self.socket = socket
        self.log = MigrationLog()
        self._interval_index = -1
        self._retry_queue: list[_PendingRetry] = []
        #: Optional ObsContext; the engine wires it in.  The planner emits
        #: per-order lifecycle events and migration provenance records.
        self.obs = None

    def _prov(
        self, stage: str, page_start: int, npages: int, src: int, dst: int,
        reason: str = "", score: float = 0.0, attempt: int = 0,
        detail: str = "",
    ) -> None:
        if self.obs is not None:
            self.obs.record_provenance(
                self._interval_index, stage, page_start, npages, src, dst,
                reason=reason, score=score, attempt=attempt, detail=detail,
            )

    @property
    def pending_retries(self) -> int:
        """Orders currently waiting in the backoff queue."""
        return len(self._retry_queue)

    def execute(self, orders: list[MigrationOrder], mmu: Mmu | None = None) -> MigrationTiming:
        """Run all orders sequentially; returns the summed timing.

        Orders are validated against live page-table state: pages that are
        no longer on the claimed source node are dropped from the order
        (a later order may have raced an earlier one in policy space).
        Due retries from earlier intervals run first — they were promised
        the capacity their backoff was waiting for.
        """
        self._interval_index += 1
        total = MigrationTiming()
        due = [p for p in self._retry_queue if p.due_interval <= self._interval_index]
        if due:
            self._retry_queue = [
                p for p in self._retry_queue if p.due_interval > self._interval_index
            ]
        for pending in due:
            if self.obs is not None:
                pages = np.asarray(pending.order.pages)
                self.obs.emit(
                    EV_MIG_RETRIED, interval=self._interval_index,
                    disposition="executing", attempt=pending.failures,
                    pages=int(pages.size), src=pending.order.src_node,
                    dst=pending.order.dst_node,
                )
            timing = self._attempt(pending.order, mmu, failures=pending.failures)
            if timing is None:
                continue
            self.log.retries_succeeded += 1
            self._accumulate(total, timing)
        for order in orders:
            timing = self._attempt(order, mmu, failures=0)
            if timing is None:
                continue
            self._accumulate(total, timing)
        self.log.critical_time += total.critical_time
        self.log.background_time += total.background_time
        return total

    def drain_retries(self, mmu: Mmu | None = None) -> MigrationTiming:
        """One interval of retry-queue-only work (degraded mode).

        The watchdog sheds *new* migration work during a degraded
        interval; the backlog still drains so backed-off orders complete.
        """
        return self.execute([], mmu)

    # -- internals --------------------------------------------------------------

    def _attempt(
        self, order: MigrationOrder, mmu: Mmu | None, failures: int
    ) -> MigrationTiming | None:
        pages = np.asarray(order.pages, dtype=np.int64)
        on_src = self.page_table.node[pages] == order.src_node
        pages = pages[on_src]
        if pages.size == 0:
            self.log.orders_skipped += 1
            return None

        if self.obs is not None:
            self.obs.emit(
                EV_MIG_PLANNED, interval=self._interval_index,
                pages=int(pages.size), src=order.src_node,
                dst=order.dst_node, reason=order.reason,
                score=float(order.score), attempt=failures,
            )
            self._prov(STAGE_PLANNED, int(pages[0]), int(pages.size),
                       order.src_node, order.dst_node, order.reason,
                       float(order.score), failures)

        total = MigrationTiming()

        # Destination capacity: demote resident pages to make room for a
        # promotion instead of silently dropping the move (the planner
        # used to under-promote at high fill ratios); failing that, back
        # off and retry when space may have appeared.
        if not self.frames.can_fit(order.dst_node, int(pages.size)):
            demote_timing = None
            if order.reason == "promotion":
                shortfall = int(pages.size) - self.frames.free_pages(order.dst_node)
                demote_timing = self._demote_for_room(order.dst_node, shortfall, pages, mmu)
            if demote_timing is not None:
                self._accumulate(total, demote_timing)
            if not self.frames.can_fit(order.dst_node, int(pages.size)):
                self.log.orders_skipped += 1
                self._transient_failure(
                    self._suborder(order, pages),
                    failures + 1,
                    TierPressureError(
                        f"node {order.dst_node} cannot take {pages.size} pages",
                        tier=order.dst_node,
                        region=int(pages[0]),
                        interval=self._interval_index,
                    ),
                )
                return total if total.critical_time or total.background_time else None

        # Injected ENOMEM: the kernel's allocator says no even though the
        # accountant shows room (fragmentation, reserves).  Recovery is
        # demote-before-promote re-planning: push cold residents one tier
        # down to relieve the pressure, then proceed with the move.
        if self.injector is not None and self.injector.tier_pressure(order.dst_node):
            self.log.enomem_events += 1
            demote_timing = self._demote_for_room(
                order.dst_node, int(pages.size), pages, mmu
            )
            if demote_timing is None:
                self.log.orders_skipped += 1
                self._transient_failure(
                    self._suborder(order, pages),
                    failures + 1,
                    TierPressureError(
                        f"node {order.dst_node} allocation failed under pressure",
                        tier=order.dst_node,
                        region=int(pages[0]),
                        interval=self._interval_index,
                    ),
                )
                return None
            self._accumulate(total, demote_timing)

        # Injected EBUSY: a subset of the pages is pinned and fails to
        # move; the rest proceed, the pinned remainder is backed off.
        if self.injector is not None:
            busy_mask = self.injector.migration_busy_mask(int(pages.size))
            if busy_mask is not None:
                busy = pages[busy_mask]
                pages = pages[~busy_mask]
                self.log.busy_pages += int(busy.size)
                self.log.partial_orders += 1
                self._transient_failure(
                    self._suborder(order, busy),
                    failures + 1,
                    MigrationBusyError(
                        f"{busy.size} of {busy.size + pages.size} pages are pinned",
                        tier=order.src_node,
                        region=int(busy[0]),
                        interval=self._interval_index,
                    ),
                )
                if pages.size == 0:
                    return total if total.critical_time or total.background_time else None

        mechanism = self.mechanism
        if (
            self.retry_policy is not None
            and self.fallback_mechanism is not None
            and failures >= self.retry_policy.fallback_after
        ):
            mechanism = self.fallback_mechanism
            self.log.fallback_moves += 1
            self._prov(STAGE_FALLBACK, int(pages[0]), int(pages.size),
                       order.src_node, order.dst_node, order.reason,
                       float(order.score), failures,
                       detail=mechanism.name)

        move_timing = self._commit_move(
            pages, order.src_node, order.dst_node, order.reason, mmu, mechanism
        )
        self._accumulate(total, move_timing)
        return total

    def _suborder(self, order: MigrationOrder, pages: np.ndarray) -> MigrationOrder:
        return MigrationOrder(
            pages=pages,
            src_node=order.src_node,
            dst_node=order.dst_node,
            reason=order.reason,
            score=order.score,
        )

    def _transient_failure(
        self, order: MigrationOrder, failures: int, error: Exception
    ) -> None:
        """Queue a failed order for backoff retry, or raise in fail-fast mode."""
        if self.obs is not None:
            pages = np.asarray(order.pages)
            start = int(pages[0]) if pages.size else -1
            stage = STAGE_BUSY if isinstance(error, MigrationBusyError) else STAGE_PRESSURE
            self._prov(stage, start, int(pages.size), order.src_node,
                       order.dst_node, order.reason, float(order.score),
                       failures, detail=type(error).__name__)
        if self.retry_policy is None:
            if self.obs is not None:
                self.obs.emit(
                    EV_MIG_FAILED, interval=self._interval_index,
                    disposition="fail-fast", attempt=failures,
                    error=type(error).__name__,
                )
            raise error
        self.log.retry_histogram[failures] = self.log.retry_histogram.get(failures, 0) + 1
        if failures >= self.retry_policy.max_attempts:
            self.log.retries_exhausted += 1
            if self.obs is not None:
                pages = np.asarray(order.pages)
                start = int(pages[0]) if pages.size else -1
                self._prov(STAGE_EXHAUSTED, start, int(pages.size),
                           order.src_node, order.dst_node, order.reason,
                           float(order.score), failures)
                self.obs.emit(
                    EV_MIG_FAILED, interval=self._interval_index,
                    disposition="exhausted", attempt=failures,
                    pages=int(pages.size), src=order.src_node,
                    dst=order.dst_node,
                )
            return
        delay = self.retry_policy.delay_intervals(failures)
        self._retry_queue.append(
            _PendingRetry(order, failures, self._interval_index + delay)
        )
        self.log.retries_scheduled += 1
        if self.obs is not None:
            pages = np.asarray(order.pages)
            start = int(pages[0]) if pages.size else -1
            self._prov(STAGE_RETRY, start, int(pages.size), order.src_node,
                       order.dst_node, order.reason, float(order.score),
                       failures, detail=f"due interval {self._interval_index + delay}")
            self.obs.emit(
                EV_MIG_RETRIED, interval=self._interval_index,
                disposition="scheduled", attempt=failures,
                due=self._interval_index + delay, pages=int(pages.size),
            )

    def _demote_for_room(
        self,
        dst_node: int,
        need_pages: int,
        exclude: np.ndarray,
        mmu: Mmu | None,
    ) -> MigrationTiming | None:
        """Demote cold residents of ``dst_node`` one tier down.

        Victims are pages on the destination that the current interval's
        access batch did not touch (the coldest observable choice the
        planner can make without a profiler), taken from the top of the
        component so repeated calls walk distinct ranges.  Returns the
        demotion's timing, or None when no lower tier has room or the
        planner has no topology to rank tiers with.
        """
        if self.topology is None or need_pages <= 0:
            return None
        view = self.topology.view(self.socket)
        dst_tier = view.tier_of(dst_node)
        lower_node = None
        for tier in range(dst_tier + 1, view.num_tiers + 1):
            node = view.node_at_tier(tier)
            if self.frames.free_pages(node) >= need_pages:
                lower_node = node
                break
        if lower_node is None:
            return None
        resident = np.flatnonzero(self.page_table.node == dst_node)
        if exclude.size:
            resident = resident[~np.isin(resident, exclude)]
        if resident.size < need_pages:
            return None
        batch = getattr(mmu, "_current_batch", None) if mmu is not None else None
        if batch is not None:
            touched = np.isin(resident, batch.pages)
            resident = np.concatenate([resident[~touched], resident[touched]])
        victims = resident[:need_pages]
        self._prov(STAGE_DEMOTE_FOR_ROOM, int(victims[0]), int(victims.size),
                   dst_node, lower_node, "demotion")
        timing = self._commit_move(
            victims, dst_node, lower_node, "demotion", mmu, self.mechanism
        )
        self.log.demoted_for_room_pages += int(victims.size)
        return timing

    def _commit_move(
        self,
        pages: np.ndarray,
        src_node: int,
        dst_node: int,
        reason: str,
        mmu: Mmu | None,
        mechanism: Mechanism,
    ) -> MigrationTiming:
        """Apply one validated move: tear huge pages, time it, commit it."""
        torn = self._tear_partial_huge_pages(pages)
        self.log.huge_pages_torn += torn

        # The kernel moves one 2 MB region at a time (Fig. 3's unit), so a
        # large order is a sequence of region moves — each with its own
        # write-tracking window, so one written huge page only forces *its*
        # chunk to the synchronous path, not the whole order.
        timing = MigrationTiming()
        writes_per_chunk: np.ndarray | None = None
        if (
            perfflags.vectorized()
            and mmu is not None
            and self.interval > 0
            and pages.size
        ):
            # Group the per-chunk "writes over distinct entries" sums into
            # one pass: resolve every page's entry once, dedupe
            # (chunk, entry) pairs, and bincount the write counts per
            # chunk.  The timing calls below keep their exact per-chunk
            # order and arguments (they draw from the mechanism's RNG).
            ents_all = self.page_table.entry_index(pages)
            n_chunks = (int(pages.size) + PAGES_PER_HUGE_PAGE - 1) // PAGES_PER_HUGE_PAGE
            chunk_ids = np.arange(pages.size, dtype=np.int64) // PAGES_PER_HUGE_PAGE
            keys = nputil.unique(chunk_ids * np.int64(self.page_table.n_pages) + ents_all)
            writes_per_chunk = np.bincount(
                keys // self.page_table.n_pages,
                weights=mmu.entry_write_count(keys % self.page_table.n_pages).astype(
                    np.float64
                ),
                minlength=n_chunks,
            )
        for lo in range(0, int(pages.size), PAGES_PER_HUGE_PAGE):
            chunk = pages[lo : lo + PAGES_PER_HUGE_PAGE]
            write_rate = 0.0
            if writes_per_chunk is not None:
                write_rate = int(writes_per_chunk[lo // PAGES_PER_HUGE_PAGE]) / self.interval
            elif mmu is not None and self.interval > 0:
                entries = np.unique(self.page_table.entry_index(chunk))
                writes = int(mmu.entry_write_count(entries).sum())
                write_rate = writes / self.interval
            chunk_timing = mechanism.timing(
                int(chunk.size), src_node, dst_node, write_rate=write_rate
            )
            self._accumulate(timing, chunk_timing)
        if self.time_scale != 1.0:
            for step in (
                "allocate", "unmap_remap", "copy", "migrate_page_table", "dirtiness_tracking",
            ):
                setattr(timing.critical, step, getattr(timing.critical, step) * self.time_scale)
                setattr(timing.background, step, getattr(timing.background, step) * self.time_scale)

        self.page_table.move_pages(pages, dst_node)
        self.frames.move(src_node, dst_node, int(pages.size))

        self.log.orders_executed += 1
        if reason == "promotion":
            self.log.promoted_pages += int(pages.size)
        else:
            self.log.demoted_pages += int(pages.size)
        if timing.switched_to_sync:
            self.log.sync_switches += 1
        self.log.extra_copied_pages += timing.extra_copied_pages
        if self.obs is not None:
            self.obs.emit(
                EV_MIG_ISSUED, interval=self._interval_index,
                pages=int(pages.size), src=src_node, dst=dst_node,
                reason=reason, mechanism=mechanism.name,
                critical_time=timing.critical_time,
                background_time=timing.background_time, torn=torn,
            )
            self._prov(STAGE_COMMITTED, int(pages[0]), int(pages.size),
                       src_node, dst_node, reason, detail=mechanism.name)
        return timing

    def _tear_partial_huge_pages(self, pages: np.ndarray) -> int:
        """Split huge mappings the order covers only partially.

        A huge page must live on one node; migrating a strict subset of
        its base pages forces the kernel to split it first.  Huge-aware
        orders (MTM's) never trigger this; DAMON-shaped regions can.
        """
        huge_mask = self.page_table.is_huge(pages)
        if not np.any(huge_mask):
            return 0
        heads = nputil.unique(pages[huge_mask] - (pages[huge_mask] % PAGES_PER_HUGE_PAGE))
        torn = 0
        if perfflags.vectorized():
            # A head's 2 MB span is fully covered iff the order holds all
            # 512 distinct base pages of [head, head + 512) — countable
            # with two searchsorted passes over the sorted unique pages.
            uniq = nputil.unique(pages)
            lo = np.searchsorted(uniq, heads)
            hi = np.searchsorted(uniq, heads + PAGES_PER_HUGE_PAGE)
            for head in heads[(hi - lo) != PAGES_PER_HUGE_PAGE]:
                self.page_table.split_huge(int(head))
                torn += 1
            return torn
        page_set = set(pages.tolist())
        for head in heads:
            span = range(int(head), int(head) + PAGES_PER_HUGE_PAGE)
            if not all(p in page_set for p in span):
                self.page_table.split_huge(int(head))
                torn += 1
        return torn

    @staticmethod
    def _accumulate(total: MigrationTiming, timing: MigrationTiming) -> None:
        for step in ("allocate", "unmap_remap", "copy", "migrate_page_table", "dirtiness_tracking"):
            setattr(total.critical, step, getattr(total.critical, step) + getattr(timing.critical, step))
            setattr(total.background, step, getattr(total.background, step) + getattr(timing.background, step))
        total.switched_to_sync = total.switched_to_sync or timing.switched_to_sync
        total.extra_copied_pages += timing.extra_copied_pages

    def sanity_check(self) -> None:
        """Verify frame accounting matches the page table (tests)."""
        for node in self.frames.snapshot():
            actual = self.page_table.pages_on_node(node)
            tracked = self.frames.used_pages(node)
            if actual != tracked:
                raise MigrationError(
                    f"node {node}: page table has {actual} pages, accountant {tracked}"
                )
