"""Migration planner: applies policy orders through a mechanism.

The planner is the glue the paper's daemon service provides (Sec. 8):
take the interval's orders, make them safe (drop pages that already moved,
split any huge page an order would tear — the fragmentation cost
non-huge-aware baselines pay), compute timing through the mechanism, and
commit the moves to the page table and frame accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MigrationError
from repro.hw.frames import FrameAccountant
from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.policy.base import MigrationOrder
from repro.units import PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class MigrationLog:
    """Aggregate migration accounting across intervals."""

    promoted_pages: int = 0
    demoted_pages: int = 0
    orders_executed: int = 0
    orders_skipped: int = 0
    huge_pages_torn: int = 0
    sync_switches: int = 0
    extra_copied_pages: int = 0
    critical_time: float = 0.0
    background_time: float = 0.0
    critical_steps: StepTimes = field(default_factory=StepTimes)

    @property
    def promoted_bytes(self) -> int:
        return self.promoted_pages * PAGE_SIZE

    @property
    def demoted_bytes(self) -> int:
        return self.demoted_pages * PAGE_SIZE


class MigrationPlanner:
    """Executes migration orders for one managed process.

    Args:
        page_table: the process's page table.
        frames: machine frame accounting.
        mechanism: the migration mechanism to charge timing through.
        interval: profiling-interval length (converts interval write
            counts into write rates for the adaptive mechanism).
        time_scale: factor applied to all mechanism timings.  On a
            capacity-scaled machine every quantity shrinks with ``scale``
            except the 2 MB region quantum; scaling the per-move cost keeps
            migration's share of an interval faithful to the full-size
            system.  Mechanism timings used directly (the Fig. 3/11
            microbenchmarks) remain paper-absolute.
    """

    def __init__(
        self,
        page_table: PageTable,
        frames: FrameAccountant,
        mechanism: Mechanism,
        interval: float = 10.0,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise MigrationError(f"time_scale must be positive, got {time_scale}")
        self.page_table = page_table
        self.frames = frames
        self.mechanism = mechanism
        self.interval = interval
        self.time_scale = time_scale
        self.log = MigrationLog()

    def execute(self, orders: list[MigrationOrder], mmu: Mmu | None = None) -> MigrationTiming:
        """Run all orders sequentially; returns the summed timing.

        Orders are validated against live page-table state: pages that are
        no longer on the claimed source node are dropped from the order
        (a later order may have raced an earlier one in policy space).
        """
        total = MigrationTiming()
        for order in orders:
            timing = self._execute_one(order, mmu)
            if timing is None:
                self.log.orders_skipped += 1
                continue
            self._accumulate(total, timing)
        self.log.critical_time += total.critical_time
        self.log.background_time += total.background_time
        return total

    # -- internals --------------------------------------------------------------

    def _execute_one(self, order: MigrationOrder, mmu: Mmu | None) -> MigrationTiming | None:
        pages = np.asarray(order.pages, dtype=np.int64)
        on_src = self.page_table.node[pages] == order.src_node
        pages = pages[on_src]
        if pages.size == 0:
            return None
        if not self.frames.can_fit(order.dst_node, int(pages.size)):
            return None

        torn = self._tear_partial_huge_pages(pages)
        self.log.huge_pages_torn += torn

        # The kernel moves one 2 MB region at a time (Fig. 3's unit), so a
        # large order is a sequence of region moves — each with its own
        # write-tracking window, so one written huge page only forces *its*
        # chunk to the synchronous path, not the whole order.
        timing = MigrationTiming()
        for lo in range(0, int(pages.size), PAGES_PER_HUGE_PAGE):
            chunk = pages[lo : lo + PAGES_PER_HUGE_PAGE]
            write_rate = 0.0
            if mmu is not None and self.interval > 0:
                entries = np.unique(self.page_table.entry_index(chunk))
                writes = int(mmu.entry_write_count(entries).sum())
                write_rate = writes / self.interval
            chunk_timing = self.mechanism.timing(
                int(chunk.size), order.src_node, order.dst_node, write_rate=write_rate
            )
            self._accumulate(timing, chunk_timing)
        if self.time_scale != 1.0:
            for step in (
                "allocate", "unmap_remap", "copy", "migrate_page_table", "dirtiness_tracking",
            ):
                setattr(timing.critical, step, getattr(timing.critical, step) * self.time_scale)
                setattr(timing.background, step, getattr(timing.background, step) * self.time_scale)

        self.page_table.move_pages(pages, order.dst_node)
        self.frames.move(order.src_node, order.dst_node, int(pages.size))

        self.log.orders_executed += 1
        if order.reason == "promotion":
            self.log.promoted_pages += int(pages.size)
        else:
            self.log.demoted_pages += int(pages.size)
        if timing.switched_to_sync:
            self.log.sync_switches += 1
        self.log.extra_copied_pages += timing.extra_copied_pages
        return timing

    def _tear_partial_huge_pages(self, pages: np.ndarray) -> int:
        """Split huge mappings the order covers only partially.

        A huge page must live on one node; migrating a strict subset of
        its base pages forces the kernel to split it first.  Huge-aware
        orders (MTM's) never trigger this; DAMON-shaped regions can.
        """
        huge_mask = self.page_table.is_huge(pages)
        if not np.any(huge_mask):
            return 0
        heads = np.unique(pages[huge_mask] - (pages[huge_mask] % PAGES_PER_HUGE_PAGE))
        torn = 0
        page_set = set(pages.tolist())
        for head in heads:
            span = range(int(head), int(head) + PAGES_PER_HUGE_PAGE)
            if not all(p in page_set for p in span):
                self.page_table.split_huge(int(head))
                torn += 1
        return torn

    @staticmethod
    def _accumulate(total: MigrationTiming, timing: MigrationTiming) -> None:
        for step in ("allocate", "unmap_remap", "copy", "migrate_page_table", "dirtiness_tracking"):
            setattr(total.critical, step, getattr(total.critical, step) + getattr(timing.critical, step))
            setattr(total.background, step, getattr(total.background, step) + getattr(timing.background, step))
        total.switched_to_sync = total.switched_to_sync or timing.switched_to_sync
        total.extra_copied_pages += timing.extra_copied_pages

    def sanity_check(self) -> None:
        """Verify frame accounting matches the page table (tests)."""
        for node in self.frames.snapshot():
            actual = self.page_table.pages_on_node(node)
            tracked = self.frames.used_pages(node)
            if actual != tracked:
                raise MigrationError(
                    f"node {node}: page table has {actual} pages, accountant {tracked}"
                )
