"""Linux ``move_pages()``: the fully synchronous four-step baseline.

Sec. 7.1: (1) allocate pages on the target node, (2) unmap the source
pages (invalidate PTEs), (3) copy, (4) map the new pages.  Everything is
sequential, page-by-page, single-threaded, and entirely on the critical
path; page copy alone is ~40% of the total for a 2 MB tier1->tier4 move
(Fig. 3).
"""

from __future__ import annotations

from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes


class MovePagesMechanism(Mechanism):
    """Sequential synchronous migration, one 4 KB page at a time."""

    name = "move_pages"

    def timing(
        self,
        npages: int,
        src_node: int,
        dst_node: int,
        write_rate: float = 0.0,
    ) -> MigrationTiming:
        self._check(npages, write_rate)
        cm = self.cost_model
        # An injected stall preempts the single-threaded kernel copy loop,
        # stretching the fully-critical copy step.
        critical = StepTimes(
            allocate=cm.alloc_time(npages),
            unmap_remap=cm.unmap_time(npages) + cm.map_time(npages),
            copy=cm.copy_time(npages, src_node, dst_node, parallelism=1) * self._stall_factor(),
        )
        return self._record_timing(
            MigrationTiming(critical=critical), npages, src_node, dst_node
        )
