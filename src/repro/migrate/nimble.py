"""Nimble page management (Yan et al., ASPLOS'19) — parallel copy baseline.

Nimble keeps migration synchronous but attacks the copy bottleneck with
multi-threaded page copy and bi-directional page *exchange* (swapping a
hot and a cold page moves both without allocating fresh frames).  MTM
includes these techniques and adds the adaptive async mechanism on top
(Sec. 9's "Nimble" baseline).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes
from repro.sim.costmodel import CostModel


class NimbleMechanism(Mechanism):
    """Synchronous migration with parallel, exchange-capable copy.

    Args:
        cost_model: machine cost model.
        copy_threads: concurrent kernel copy threads.
        exchange: model bi-directional exchange — allocation is skipped
            for the fraction of moves that can swap frames directly.
    """

    name = "nimble"

    def __init__(self, cost_model: CostModel, copy_threads: int = 4, exchange: bool = True) -> None:
        super().__init__(cost_model)
        if copy_threads < 1:
            raise ConfigError(f"copy_threads must be >= 1, got {copy_threads}")
        self.copy_threads = copy_threads
        self.exchange = exchange

    def timing(
        self,
        npages: int,
        src_node: int,
        dst_node: int,
        write_rate: float = 0.0,
    ) -> MigrationTiming:
        self._check(npages, write_rate)
        cm = self.cost_model
        # Exchange halves the allocation work (the swapped-in frames come
        # for free); the reverse copy shares the parallel copy threads.
        alloc = cm.alloc_time(npages) * (0.5 if self.exchange else 1.0)
        critical = StepTimes(
            allocate=alloc,
            unmap_remap=cm.unmap_time(npages) + cm.map_time(npages),
            copy=cm.copy_time(npages, src_node, dst_node, parallelism=self.copy_threads)
            * self._stall_factor(),
        )
        return self._record_timing(
            MigrationTiming(critical=critical), npages, src_node, dst_node
        )
