"""Mechanism interface and timing records.

A mechanism computes *how long* moving a set of pages takes and how the
time splits between the critical path (the application is stalled or the
daemon occupies the move) and background work (helper threads overlapping
application execution).  The per-step breakdown feeds Figs. 3 and 11.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.sim.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector


@dataclass
class StepTimes:
    """Seconds per migration step (the paper's Fig. 3/11 categories)."""

    allocate: float = 0.0
    unmap_remap: float = 0.0
    copy: float = 0.0
    migrate_page_table: float = 0.0
    dirtiness_tracking: float = 0.0

    def total(self) -> float:
        # spelled out (not fields()-driven): this runs per timing() call,
        # and dataclasses.fields() introspection dominates the loop cost
        return (self.allocate + self.unmap_remap + self.copy
                + self.migrate_page_table + self.dirtiness_tracking)

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class MigrationTiming:
    """Outcome of one migration call.

    Attributes:
        critical: per-step times on the critical path.
        background: per-step times overlapped with the application.
        switched_to_sync: MTM's adaptive mechanism fell back to the
            synchronous copy because a write hit the region mid-copy.
        extra_copied_pages: pages copied more than once (async re-copy).
    """

    critical: StepTimes = field(default_factory=StepTimes)
    background: StepTimes = field(default_factory=StepTimes)
    switched_to_sync: bool = False
    extra_copied_pages: int = 0

    @property
    def critical_time(self) -> float:
        return self.critical.total()

    @property
    def background_time(self) -> float:
        return self.background.total()


class Mechanism(abc.ABC):
    """Common contract for migration mechanisms.

    Mechanisms compute timing only; applying the move to the page table
    and frame accounting is the planner's job, so timings can also be used
    standalone (the Fig. 3/11 microbenchmarks).
    """

    #: Short name used in reports.
    name: str = "base"

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.injector: FaultInjector | None = None
        #: Optional ObsContext; the engine wires it in.
        self.obs = None
        # timing() is also the policy's planning estimator, so it runs
        # thousands of times per run; bound registry handles keep the
        # per-call telemetry cost to plain dict updates.
        self._obs_bound = None
        self._obs_handles = None

    def attach_injector(self, injector: "FaultInjector | None") -> None:
        """Wire a fault injector in (helper-thread / copy-loop stalls)."""
        self.injector = injector

    def attach_obs(self, obs) -> None:
        """(Re)wire an obs context, dropping handles bound to the old one.

        Clearing the cached closures here keeps the mechanism picklable
        when the snapshot engine detaches observability before capture.
        """
        self.obs = obs
        self._obs_bound = None
        self._obs_handles = None

    def _record_timing(
        self, timing: MigrationTiming, npages: int,
        src_node: int, dst_node: int,
    ) -> MigrationTiming:
        """Telemetry tail every mechanism's ``timing()`` returns through.

        Coarse per-call counters/histograms (not per-chunk events — the
        planner owns per-order lifecycle events) plus the rare adaptive
        sync-switch event.  Pass-through when no context is attached.
        """
        obs = self.obs
        if obs is not None:
            if self._obs_bound is not obs:
                handles = self._bind_obs_handles(obs)
            else:
                handles = self._obs_handles
            if handles is not None:
                calls, pages, critical, background = handles
                calls()
                pages(npages)
                critical(timing.critical_time)
                background(timing.background_time)
            if timing.switched_to_sync:
                from repro.obs.events import EV_MECH_SYNC_SWITCH

                obs.emit(EV_MECH_SYNC_SWITCH, npages=npages,
                         src=src_node, dst=dst_node)
                obs.inc("mechanism.sync_switches", mechanism=self.name)
        return timing

    def _bind_obs_handles(self, obs):
        """Resolve registry handles once per attached context.

        Returns ``None`` (and caches that) when the context has metrics
        disabled, so the per-call cost stays a couple of attribute reads.
        """
        self._obs_bound = obs
        if not obs.config.metrics:
            self._obs_handles = None
            return None
        registry = obs.registry
        self._obs_handles = (
            registry.counter_handle("mechanism.calls", mechanism=self.name),
            registry.counter_handle("mechanism.pages", mechanism=self.name),
            registry.histogram_handle(
                "mechanism.critical_seconds", mechanism=self.name),
            registry.histogram_handle(
                "mechanism.background_seconds", mechanism=self.name),
        )
        return self._obs_handles

    def _stall_factor(self) -> float:
        """Injected copy-stall inflation (1.0 when no injector/fault)."""
        if self.injector is None:
            return 1.0
        return self.injector.helper_stall()

    @abc.abstractmethod
    def timing(
        self,
        npages: int,
        src_node: int,
        dst_node: int,
        write_rate: float = 0.0,
    ) -> MigrationTiming:
        """Time to move ``npages`` pages.

        Args:
            npages: base pages to move.
            src_node / dst_node: components involved.
            write_rate: writes/second landing in the moved range while the
                migration runs (drives MTM's adaptive switch).
        """

    def _check(self, npages: int, write_rate: float) -> None:
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if write_rate < 0:
            raise ConfigError(f"negative write rate: {write_rate}")
