"""Mechanism interface and timing records.

A mechanism computes *how long* moving a set of pages takes and how the
time splits between the critical path (the application is stalled or the
daemon occupies the move) and background work (helper threads overlapping
application execution).  The per-step breakdown feeds Figs. 3 and 11.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.sim.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector


@dataclass
class StepTimes:
    """Seconds per migration step (the paper's Fig. 3/11 categories)."""

    allocate: float = 0.0
    unmap_remap: float = 0.0
    copy: float = 0.0
    migrate_page_table: float = 0.0
    dirtiness_tracking: float = 0.0

    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class MigrationTiming:
    """Outcome of one migration call.

    Attributes:
        critical: per-step times on the critical path.
        background: per-step times overlapped with the application.
        switched_to_sync: MTM's adaptive mechanism fell back to the
            synchronous copy because a write hit the region mid-copy.
        extra_copied_pages: pages copied more than once (async re-copy).
    """

    critical: StepTimes = field(default_factory=StepTimes)
    background: StepTimes = field(default_factory=StepTimes)
    switched_to_sync: bool = False
    extra_copied_pages: int = 0

    @property
    def critical_time(self) -> float:
        return self.critical.total()

    @property
    def background_time(self) -> float:
        return self.background.total()


class Mechanism(abc.ABC):
    """Common contract for migration mechanisms.

    Mechanisms compute timing only; applying the move to the page table
    and frame accounting is the planner's job, so timings can also be used
    standalone (the Fig. 3/11 microbenchmarks).
    """

    #: Short name used in reports.
    name: str = "base"

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        self.injector: FaultInjector | None = None

    def attach_injector(self, injector: "FaultInjector | None") -> None:
        """Wire a fault injector in (helper-thread / copy-loop stalls)."""
        self.injector = injector

    def _stall_factor(self) -> float:
        """Injected copy-stall inflation (1.0 when no injector/fault)."""
        if self.injector is None:
            return 1.0
        return self.injector.helper_stall()

    @abc.abstractmethod
    def timing(
        self,
        npages: int,
        src_node: int,
        dst_node: int,
        write_rate: float = 0.0,
    ) -> MigrationTiming:
        """Time to move ``npages`` pages.

        Args:
            npages: base pages to move.
            src_node / dst_node: components involved.
            write_rate: writes/second landing in the moved range while the
                migration runs (drives MTM's adaptive switch).
        """

    def _check(self, npages: int, write_rate: float) -> None:
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if write_rate < 0:
            raise ConfigError(f"negative write rate: {write_rate}")
