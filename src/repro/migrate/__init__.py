"""Migration mechanisms and the planner that executes policy orders.

Sec. 7 of the paper: Linux ``move_pages()`` (sequential, synchronous,
four-step), Nimble (parallel multi-threaded copy), and MTM's
``move_memory_regions()`` (asynchronous helper-thread copy with
reserved-bit dirtiness tracking and an adaptive async->sync switch).
The planner applies a policy's :class:`~repro.policy.base.MigrationOrder`
list through a mechanism, keeping the page table, frame accounting, and
timing consistent — including splitting any huge page a non-huge-aligned
order would tear.
"""

from repro.migrate.mechanism import Mechanism, MigrationTiming, StepTimes
from repro.migrate.move_pages import MovePagesMechanism
from repro.migrate.nimble import NimbleMechanism
from repro.migrate.mtm_mechanism import MoveMemoryRegionsMechanism, MtmMechanismConfig
from repro.migrate.planner import MigrationPlanner, MigrationLog

__all__ = [
    "Mechanism",
    "MigrationTiming",
    "StepTimes",
    "MovePagesMechanism",
    "NimbleMechanism",
    "MoveMemoryRegionsMechanism",
    "MtmMechanismConfig",
    "MigrationPlanner",
    "MigrationLog",
]
