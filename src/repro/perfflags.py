"""Process-wide switches between optimized and legacy hot paths.

Two independent switches:

* **vectorized** — the PR-2 optimizations (struct-of-arrays region
  bookkeeping, bulk entry/node resolution, scatter-reset MMU state,
  fused batch assembly);
* **incremental** — the delta-driven interval pipeline: per-interval
  work (entry resolution, region node lookup, PTE bookkeeping) scales
  with the pages *touched this interval* plus dirty-region
  invalidations, instead of with the total footprint.  Incremental
  paths build on the vectorized ones, so they only activate when both
  switches are on.

All optimized implementations are bit-identical to the original
per-region Python loops by construction — every RNG draw happens in
the same order with the same arguments, and cached values are
invalidated whenever the state they derive from changes.  The legacy
paths are kept behind these switches for two reasons: differential
tests assert the equivalence, and ``benchmarks/bench_perf_smoke.py``
uses the legacy mode as the pre-optimization baseline it reports its
speedup against.

The flags are process-global (workers forked by the parallel matrix
runner inherit them), defaulting to fully optimized.
"""

from __future__ import annotations

from contextlib import contextmanager

_VECTORIZED = True
_INCREMENTAL = True


def vectorized() -> bool:
    """Whether the vectorized hot paths are active (the default)."""
    return _VECTORIZED


def set_vectorized(enabled: bool) -> None:
    """Switch every flagged hot path between vectorized and legacy."""
    global _VECTORIZED
    _VECTORIZED = bool(enabled)


def incremental() -> bool:
    """Whether the O(touched) incremental interval paths are active."""
    return _INCREMENTAL


def set_incremental(enabled: bool) -> None:
    """Switch the delta-driven interval pipeline on or off."""
    global _INCREMENTAL
    _INCREMENTAL = bool(enabled)


@contextmanager
def legacy_mode():
    """Run a block on the legacy (pre-optimization) code paths.

    Disables both the vectorized and the incremental switches and
    restores their previous values on exit.
    """
    prev_vec, prev_inc = _VECTORIZED, _INCREMENTAL
    set_vectorized(False)
    set_incremental(False)
    try:
        yield
    finally:
        set_vectorized(prev_vec)
        set_incremental(prev_inc)
