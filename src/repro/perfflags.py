"""Process-wide switches between optimized and legacy hot paths.

Three switches, forming the backend ladder ``legacy -> vectorized ->
compiled``:

* **vectorized** — the PR-2 optimizations (struct-of-arrays region
  bookkeeping, bulk entry/node resolution, scatter-reset MMU state,
  fused batch assembly);
* **incremental** — the delta-driven interval pipeline: per-interval
  work (entry resolution, region node lookup, PTE bookkeeping) scales
  with the pages *touched this interval* plus dirty-region
  invalidations, instead of with the total footprint.  Incremental
  paths build on the vectorized ones, so they only activate when both
  switches are on.
* **compiled** — the :mod:`repro.kernels` backend: hot-path loops
  fused into single compiled passes (Numba ``@njit`` where installed,
  a ctypes-loaded C shared object where only a C compiler is present,
  and a pure-numpy fallback otherwise, so the switch is always safe to
  enable).  Compiled paths replace individual *vectorized* array
  pipelines one kernel at a time, so they only activate when the
  vectorized switch is also on.

All optimized implementations are bit-identical to the original
per-region Python loops by construction — every RNG draw happens in
the same order with the same arguments, and cached values are
invalidated whenever the state they derive from changes.  The legacy
paths are kept behind these switches for two reasons: differential
tests assert the equivalence, and ``benchmarks/bench_perf_smoke.py``
uses the legacy mode as the pre-optimization baseline it reports its
speedup against.

The flags are process-global (workers forked by the parallel matrix
runner inherit them), defaulting to fully optimized.
"""

from __future__ import annotations

from contextlib import contextmanager

_VECTORIZED = True
_INCREMENTAL = True
_COMPILED = False
_CHUNKED_OVERRIDE: bool | None = None

#: The selectable backend tiers, in increasing optimization order.
BACKENDS = ("legacy", "vectorized", "compiled")


def vectorized() -> bool:
    """Whether the vectorized hot paths are active (the default)."""
    return _VECTORIZED


def set_vectorized(enabled: bool) -> None:
    """Switch every flagged hot path between vectorized and legacy."""
    global _VECTORIZED
    _VECTORIZED = bool(enabled)


def incremental() -> bool:
    """Whether the O(touched) incremental interval paths are active."""
    return _INCREMENTAL


def set_incremental(enabled: bool) -> None:
    """Switch the delta-driven interval pipeline on or off."""
    global _INCREMENTAL
    _INCREMENTAL = bool(enabled)


def compiled() -> bool:
    """Whether the compiled :mod:`repro.kernels` hot paths are active.

    Compiled kernels replace individual vectorized pipelines, so the
    switch only bites while ``vectorized()`` is also on (mirroring how
    ``incremental`` stacks on ``vectorized``).
    """
    return _COMPILED and _VECTORIZED


def set_compiled(enabled: bool) -> None:
    """Switch the compiled-kernel hot paths on or off."""
    global _COMPILED
    _COMPILED = bool(enabled)


def backend() -> str:
    """The active backend tier name (``legacy``/``vectorized``/``compiled``)."""
    if compiled():
        return "compiled"
    if _VECTORIZED:
        return "vectorized"
    return "legacy"


def set_backend(name: str) -> None:
    """Select a backend tier by name.

    ``legacy`` disables every optimization switch; ``vectorized``
    enables the vectorized + incremental paths (the default);
    ``compiled`` additionally routes ported hot loops through
    :mod:`repro.kernels`.  All three tiers are bit-identical — the
    differential suites assert it — so the choice only affects wall
    clock (and, for ``compiled``, a one-time JIT/compile cost).
    """
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose from {BACKENDS}")
    set_vectorized(name != "legacy")
    set_incremental(name != "legacy")
    set_compiled(name == "compiled")


def chunked_override() -> bool | None:
    """Process-wide page-table storage override.

    ``None`` (the default) lets each :class:`~repro.mm.pagetable.PageTable`
    auto-select dense vs chunked storage by footprint; ``True``/``False``
    forces one layout for every newly created table.  Storage layout is
    bit-identical either way — the override exists so the differential
    suites can exercise chunked storage on small spaces (and dense
    storage on huge ones).
    """
    return _CHUNKED_OVERRIDE


def set_chunked_override(value: bool | None) -> None:
    """Force (True/False) or restore auto (None) page-table chunking."""
    global _CHUNKED_OVERRIDE
    _CHUNKED_OVERRIDE = None if value is None else bool(value)


@contextmanager
def chunked_mode(value: bool = True):
    """Run a block with page-table chunking forced on (or off)."""
    prev = _CHUNKED_OVERRIDE
    set_chunked_override(value)
    try:
        yield
    finally:
        set_chunked_override(prev)


@contextmanager
def legacy_mode():
    """Run a block on the legacy (pre-optimization) code paths.

    Disables the vectorized, incremental, and compiled switches and
    restores their previous values on exit.
    """
    prev_vec, prev_inc, prev_comp = _VECTORIZED, _INCREMENTAL, _COMPILED
    set_vectorized(False)
    set_incremental(False)
    set_compiled(False)
    try:
        yield
    finally:
        set_vectorized(prev_vec)
        set_incremental(prev_inc)
        set_compiled(prev_comp)


@contextmanager
def backend_mode(name: str):
    """Run a block on the named backend tier, restoring flags on exit."""
    prev_vec, prev_inc, prev_comp = _VECTORIZED, _INCREMENTAL, _COMPILED
    set_backend(name)
    try:
        yield
    finally:
        set_vectorized(prev_vec)
        set_incremental(prev_inc)
        set_compiled(prev_comp)
