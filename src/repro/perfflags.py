"""Process-wide switch between the vectorized and legacy hot paths.

The vectorized implementations (struct-of-arrays region bookkeeping,
bulk entry/node resolution, scatter-reset MMU state, fused batch
assembly) are bit-identical to the original per-region Python loops by
construction — every RNG draw happens in the same order with the same
arguments.  The legacy paths are kept behind this switch for two
reasons: differential tests assert the equivalence, and
``benchmarks/bench_perf_smoke.py`` uses the legacy mode as the
pre-optimization baseline it reports its speedup against.

The flag is process-global (workers forked by the parallel matrix
runner inherit it), defaulting to vectorized.
"""

from __future__ import annotations

from contextlib import contextmanager

_VECTORIZED = True


def vectorized() -> bool:
    """Whether the vectorized hot paths are active (the default)."""
    return _VECTORIZED


def set_vectorized(enabled: bool) -> None:
    """Switch every flagged hot path between vectorized and legacy."""
    global _VECTORIZED
    _VECTORIZED = bool(enabled)


@contextmanager
def legacy_mode():
    """Run a block on the legacy (pre-vectorization) code paths."""
    previous = _VECTORIZED
    set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
