"""Engine checkpoint/fork: run shared warmups once, branch cheaply.

Parameter sweeps (Fig. 9's τ sensitivity, Fig. 10's α, the ablation
matrix) run many cells that are identical for a long warmup prefix and
differ only in knobs applied afterwards.  Re-simulating the shared prefix
per cell is pure waste — exactly the argument behind the
:class:`~repro.sim.tracecache.TraceCache`, one level up: instead of
memoizing the workload's batch stream, memoize the *whole engine state*
at the branch point.

:func:`capture_engine` serializes a :class:`~repro.sim.engine.
SimulationEngine` — simulated clock, MMU arrays, page table, frame
accounting, profiler/policy/planner state, fault injector, and every
named RNG stream — into one self-contained byte payload (pickle protocol
5; ~40 MB and ~60 ms at the quick bench scale).  :func:`fork_engine`
rebuilds an independent engine from it: forks share nothing mutable with
the parent or with sibling forks, and running a fork is bit-identical to
continuing the original run (test-enforced, including under fault
injection).

The shared :class:`~repro.sim.tracecache.TraceCache` is deliberately
*not* captured: it can be arbitrarily large, it is shared across engines,
and its content regenerates deterministically.  A fork of a cache-fed
engine must be fed by *some* cache — the engine's own ``"workload"`` RNG
was never advanced, so it cannot synthesize batches itself — therefore
:func:`fork_engine` reattaches the caller's cache or builds a private one
that regenerates the stream from interval 0.

:class:`SnapshotCache` stores snapshots under explicit keys with an LRU
byte budget (modeled on the trace cache), plus an optional spill
directory so snapshots cross :class:`~concurrent.futures.
ProcessPoolExecutor` boundaries: the parent captures and spills once,
workers load the payload from disk and fork locally.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.metrics.perfstats import CacheStats
from repro.units import MiB

if TYPE_CHECKING:
    from repro.sim.engine import SimulationEngine
    from repro.sim.tracecache import TraceCache

#: Default in-memory budget for cached engine snapshots.
DEFAULT_SNAPSHOT_BYTES = 512 * MiB


@dataclass(frozen=True)
class EngineSnapshot:
    """One serialized engine state.

    Attributes:
        key: caller-chosen identity, e.g. ``(workload, scale, seed,
            solution-prefix, interval)``; ``None`` for ad-hoc snapshots.
        interval: intervals simulated when the snapshot was taken.
        payload: the pickled engine (protocol 5, uncompressed — zlib
            would save ~30x the bytes but costs more time than simulating
            several intervals, the wrong trade for a speedup cache).
        trace_key: the engine's trace-cache key, exposed so forking code
            can tell whether the fork needs a cache attached.
    """

    key: tuple | None
    interval: int
    payload: bytes
    trace_key: tuple | None = None

    @property
    def nbytes(self) -> int:
        return len(self.payload)


def capture_engine(engine: "SimulationEngine", key: tuple | None = None) -> EngineSnapshot:
    """Serialize ``engine``'s complete state (see module docstring).

    The engine keeps running afterwards — capture only detaches the
    shared trace cache (and the observability context, which is host-side
    telemetry, not simulated state) for the duration of the dump and
    reattaches both.
    """
    cache = engine.trace_cache
    obs = engine.obs
    engine.trace_cache = None
    engine._attach_obs(None)
    try:
        payload = pickle.dumps(engine, protocol=5)
    finally:
        engine.trace_cache = cache
        engine._attach_obs(obs)
    if obs is not None:
        from repro.obs.events import EV_SNAPSHOT_CAPTURE

        obs.emit(EV_SNAPSHOT_CAPTURE, sim_time=engine.clock.now,
                 interval=len(engine._records), nbytes=len(payload))
        obs.inc("snapshot.captures")
        obs.observe("snapshot.payload_bytes", len(payload))
    return EngineSnapshot(
        key=key,
        interval=len(engine._records),
        payload=payload,
        trace_key=engine.trace_key,
    )


def fork_engine(
    snapshot: EngineSnapshot,
    trace_cache: "TraceCache | None" = None,
    obs=None,
) -> "SimulationEngine":
    """Rebuild an independent engine from ``snapshot``.

    Args:
        trace_cache: cache to feed a fork whose original was cache-fed.
            ``None`` builds a private cache (the stream regenerates
            deterministically from interval 0, so results are unchanged
            — only the first fork in a fresh process pays synthesis).
        obs: optional :class:`~repro.obs.context.ObsContext` wired through
            the fork (snapshots never carry one — telemetry is per-run).
    """
    engine: "SimulationEngine" = pickle.loads(snapshot.payload)
    if engine.trace_key is not None:
        if trace_cache is None:
            from repro.sim.tracecache import TraceCache

            trace_cache = TraceCache()
        engine.trace_cache = trace_cache
    engine._attach_obs(obs)
    if obs is not None:
        from repro.obs.events import EV_SNAPSHOT_FORK

        obs.emit(EV_SNAPSHOT_FORK, sim_time=engine.clock.now,
                 interval=snapshot.interval, nbytes=snapshot.nbytes)
        obs.inc("snapshot.forks")
    return engine


class SnapshotCache:
    """LRU-bounded store of :class:`EngineSnapshot` objects.

    Args:
        max_bytes: in-memory byte budget; least-recently-used snapshots
            are dropped whole when exceeded (the snapshot being inserted
            is never evicted by its own arrival).
        spill_dir: optional directory to mirror snapshots into.  A lookup
            that misses memory falls back to the spill file, which is how
            pool workers reach snapshots the parent captured.  Files are
            left behind for reuse; callers own cleanup of the directory.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_SNAPSHOT_BYTES,
        spill_dir: str | None = None,
    ) -> None:
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.spill_dir = spill_dir
        self._snapshots: OrderedDict[tuple, EngineSnapshot] = OrderedDict()
        self._spilled: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- lookup/insert -------------------------------------------------------

    def get(self, key: tuple, obs=None) -> EngineSnapshot | None:
        """The snapshot under ``key``, from memory or the spill dir."""
        snap = self._snapshots.get(key)
        if snap is not None:
            self._snapshots.move_to_end(key)
            self.hits += 1
            self._emit(obs, True)
            return snap
        if self.spill_dir is not None:
            path = self.spill_path(key)
            if os.path.exists(path):
                with open(path, "rb") as fh:
                    snap = pickle.load(fh)
                self._snapshots[key] = snap
                self._evict(keep=key)
                self.hits += 1
                self._emit(obs, True)
                return snap
        self.misses += 1
        self._emit(obs, False)
        return None

    @staticmethod
    def _emit(obs, hit: bool) -> None:
        if obs is None:
            return
        from repro.obs.events import EV_CACHE_HIT, EV_CACHE_MISS

        obs.emit(EV_CACHE_HIT if hit else EV_CACHE_MISS, cache="snapshot")
        obs.inc("cache.requests", cache="snapshot",
                outcome="hit" if hit else "miss")

    def put(self, key: tuple, snapshot: EngineSnapshot) -> None:
        """Insert (or refresh) ``snapshot`` under ``key``."""
        self._snapshots[key] = snapshot
        self._snapshots.move_to_end(key)
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
            path = self.spill_path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump(snapshot, fh, protocol=5)
            os.replace(tmp, path)
            self._spilled.add(path)
        self._evict(keep=key)

    def get_or_create(
        self, key: tuple, factory: Callable[[], EngineSnapshot], obs=None
    ) -> EngineSnapshot:
        """Cached snapshot under ``key``, or ``factory()``'s, stored."""
        snap = self.get(key, obs=obs)
        if snap is None:
            snap = factory()
            self.put(key, snap)
        return snap

    def spill_path(self, key: tuple) -> str:
        """Deterministic spill-file path for ``key``."""
        if self.spill_dir is None:
            raise ConfigError("cache has no spill_dir")
        digest = hashlib.sha1(repr(key).encode()).hexdigest()
        return os.path.join(self.spill_dir, f"snap-{digest}.pkl")

    def keys(self) -> list[tuple]:
        """Keys currently resident in memory (MRU last).

        Service workers advertise these (flattened) to the scheduler so
        affinity can route same-warmup cells back to them.
        """
        return list(self._snapshots)

    def cleanup_spill(self) -> int:
        """Remove every spill file this cache wrote; returns the count.

        Shutdown hygiene for worker fleets: a drained (or retiring)
        worker must not leak warm-snapshot payloads on disk.  Only files
        *this* cache spilled are touched — a shared spill directory's
        other tenants keep theirs — and the directory itself is removed
        only if that leaves it empty.
        """
        removed = 0
        for path in sorted(self._spilled):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._spilled.clear()
        if self.spill_dir is not None:
            try:
                os.rmdir(self.spill_dir)
            except OSError:
                pass  # not empty or already gone
        return removed

    # -- bookkeeping ---------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        return sum(s.nbytes for s in self._snapshots.values())

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            cached_bytes=self.cached_bytes,
        )

    def _evict(self, keep: tuple) -> None:
        while self.cached_bytes > self.max_bytes and len(self._snapshots) > 1:
            oldest = next(iter(self._snapshots))
            if oldest == keep:
                self._snapshots.move_to_end(oldest)
                oldest = next(iter(self._snapshots))
            del self._snapshots[oldest]
            self.evictions += 1
