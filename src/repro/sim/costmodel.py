"""Cost model: turns events into simulated seconds.

All timing knowledge lives here, in one place:

* **Application execution** — an access batch's time given the current page
  placement, combining a latency term (the pointer-chasing fraction that
  memory-level parallelism cannot hide) and a bandwidth term (per-component
  contention).
* **Profiling** — the paper's Eq. 1 inputs: ``one_scan_overhead`` per PTE
  scan, hint faults at 12x a scan (Sec. 6.2), PEBS sample processing.
* **Migration step costs** — per-page allocate/unmap/remap/PTE-migrate
  costs calibrated so the ``move_pages()`` breakdown reproduces Fig. 3's
  shape (page copy ~40% of the total for a 2 MB tier1->tier4 move).

**Time scaling.**  A machine scaled to ``scale`` of the paper's capacities
does ``scale`` of the work per wall second at unchanged per-page rates, so
the profiling interval scales with it: :func:`effective_interval` maps the
paper's 10 s to ``10 * scale`` simulated seconds.  Scan costs stay at
their measured paper values (~1.3 us/entry: "scanning ... 1.5 TB ... takes
more than one second"), which preserves the paper's ratio of profiling
budget (Eq. 1) to region count — the tension the whole design is about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import kernels, perfflags
from repro.errors import ConfigError
from repro.hw.topology import TierTopology
from repro.mm.pagetable import PageTable
from repro.sim.trace import AccessBatch
from repro.units import PAGE_SIZE, us, ns


#: Cache-line granularity of an individual memory access.
ACCESS_SIZE = 64

#: Hint fault / PTE scan cost ratio measured by the paper (Sec. 6.2).
HINT_FAULT_SCAN_RATIO = 12.0

#: The paper's profiling interval t_mi on the full-size machine.
PAPER_INTERVAL = 10.0

#: Ratio between the paper's per-page access densities (GUPS sustains
#: ~15 accesses per hot 4 KB page per 10 s interval) and the simulator's
#: calibrated workload rates (HOT_RATE = 0.2).  PEBS sampling must be
#: scaled by the same ratio so per-entry *sample counts* match the real
#: system: the paper's 1-in-200 period becomes 1-in-3 here, and a hot
#: 2 MB entry collects ~3-4 samples per interval in both worlds.
PAPER_RATE_RATIO = 75.0


def effective_interval(scale: float, paper_interval: float = PAPER_INTERVAL) -> float:
    """Simulated t_mi for a machine scaled to ``scale`` of the testbed."""
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    if paper_interval <= 0:
        raise ConfigError(f"paper_interval must be positive, got {paper_interval}")
    return paper_interval * scale


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the cost model.

    Attributes:
        threads: application threads issuing accesses.
        mlp: memory-level parallelism per thread (outstanding misses);
            divides the latency term.
        serial_fraction: fraction of accesses that are dependent
            (pointer-chasing) and pay full latency.
        compute_per_access: CPU work per memory access (seconds), divided
            by ``threads``.  Placement-independent; it bounds the best
            achievable speedup the way real applications' non-memory work
            does (the paper's end-to-end gains top out around 20-40%).
        one_scan_overhead: seconds to scan one leaf PTE (paper-scale).
        pebs_sample_cost: seconds to process one PEBS sample.
        pebs_activation_cost: fixed seconds to turn the counters on/off.
        alloc_per_page: seconds to allocate one destination page.
        unmap_per_page: seconds to unmap one page (incl. shootdown share).
        map_per_page: seconds to establish one new mapping.
        pte_migrate_per_page: seconds to move page-table metadata per page.
        write_protect_fault_cost: seconds per migration write-track fault
            (the paper measures ~40 us).
        single_thread_copy_bw: bytes/s one kernel copy thread can drive (a
            memcpy loop, ~10 GB/s).  One thread saturates the slow links
            (tier 4's 1 GB/s) but not the fast ones, which is why Nimble's
            parallel copy pays off on DRAM<->local-PM moves while
            ``move_pages()``'s sequential copy is ~40% of a tier-4 move
            (Fig. 3).
        pebs_period: one PEBS sample per this many eligible accesses.  The
            paper programs 200; the default here is the rate-equivalent
            value for the simulator's calibrated workload densities
            (``200 / PAPER_RATE_RATIO``, rounded up).
        rate_compensation: factor restoring paper-level access *volume*
            inside the application time model.  Workload batches carry
            1/PAPER_RATE_RATIO of the real access counts (detection
            physics needs sparse batches), so both the latency and the
            bandwidth term scale counts back up — otherwise the slow
            tiers' bandwidth ceilings (tier 4's 1 GB/s!) never bind.
        scale: capacity scale factor of the machine being simulated; used
            for scale-derived defaults (effective interval, window sizes,
            migration budgets).
    """

    threads: int = 8
    mlp: float = 4.0
    serial_fraction: float = 0.35
    compute_per_access: float = ns(15)
    one_scan_overhead: float = ns(1300)
    pebs_sample_cost: float = ns(300)
    pebs_activation_cost: float = us(50)
    alloc_per_page: float = us(2.0)
    unmap_per_page: float = us(1.5)
    map_per_page: float = us(2.0)
    pte_migrate_per_page: float = us(0.5)
    write_protect_fault_cost: float = us(40)
    single_thread_copy_bw: float = 10e9
    pebs_period: int = 3
    rate_compensation: float = PAPER_RATE_RATIO
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigError(f"threads must be >= 1, got {self.threads}")
        if self.mlp <= 0:
            raise ConfigError(f"mlp must be positive, got {self.mlp}")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ConfigError(f"serial_fraction must be in [0,1], got {self.serial_fraction}")
        for name in (
            "one_scan_overhead",
            "pebs_sample_cost",
            "pebs_activation_cost",
            "alloc_per_page",
            "unmap_per_page",
            "map_per_page",
            "pte_migrate_per_page",
            "write_protect_fault_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.pebs_period < 1:
            raise ConfigError(f"pebs_period must be >= 1, got {self.pebs_period}")
        if self.rate_compensation <= 0:
            raise ConfigError(
                f"rate_compensation must be positive, got {self.rate_compensation}"
            )
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    def with_scale(self, scale: float) -> "CostParams":
        """Parameters adjusted for a capacity-scaled machine."""
        return replace(self, scale=scale)

    @property
    def scan_overhead(self) -> float:
        """Per-PTE scan cost (paper-measured; scale-independent)."""
        return self.one_scan_overhead

    @property
    def hint_fault_cost(self) -> float:
        """Cost of one NUMA hint fault (12x a PTE scan, Sec. 6.2)."""
        return HINT_FAULT_SCAN_RATIO * self.scan_overhead

    def scan_overhead_with_hint_amortization(self, hint_every: int = 12) -> float:
        """Per-scan cost including an amortized hint fault every
        ``hint_every`` scans (Sec. 6.2: MTM folds the hint-fault cost into
        ``one_scan_overhead`` of Eq. 1)."""
        if hint_every < 1:
            raise ConfigError(f"hint_every must be >= 1, got {hint_every}")
        return self.scan_overhead + self.hint_fault_cost / hint_every


class CostModel:
    """Computes simulated times for a machine + parameter set.

    Args:
        topology: the machine.
        params: tunable constants.
    """

    def __init__(self, topology: TierTopology, params: CostParams | None = None) -> None:
        self.topology = topology
        self.params = params if params is not None else CostParams()

    # -- application execution --------------------------------------------------

    def app_time(self, batch: AccessBatch, page_table: PageTable, socket: int = 0) -> float:
        """Execution time for ``batch`` under the current placement.

        Two additive terms:

        * latency: ``serial_fraction`` of accesses are dependent and pay the
          full per-tier latency, divided by ``threads * mlp`` outstanding
          requests;
        * bandwidth: every access moves a cache line, and each component's
          traffic is limited by its link bandwidth (components operate in
          parallel, so the slowest component's drain time dominates).
        """
        if batch.pages.size == 0:
            return 0.0
        p = self.params
        nodes = page_table.node_of(batch.pages)
        latency_seconds = 0.0
        worst_drain = 0.0
        if perfflags.compiled():
            # One compiled pass over the batch replaces a mask + sum per
            # node.  Integer per-node sums are exact, so multiplying by
            # rate_compensation afterwards is bit-identical to the
            # per-node ``counts[mask].sum() * rate_compensation`` below
            # (counts are >= 1, so a zero sum is exactly "no pages here").
            length = max(self.topology.node_ids) + 2
            acc, _ = kernels.node_accumulate(nodes, batch.counts, batch.writes, length)
            for node in self.topology.node_ids:
                total = int(acc[node + 1])
                if not total:
                    continue
                n_accesses = total * p.rate_compensation
                cost = self.topology.cost(socket, node)
                latency_seconds += n_accesses * cost.latency
                drain = n_accesses * ACCESS_SIZE / cost.bandwidth
                worst_drain = max(worst_drain, drain)
            latency_term = p.serial_fraction * latency_seconds / (p.threads * p.mlp)
            return latency_term + worst_drain + self.compute_time(batch.total_accesses)
        for node in self.topology.node_ids:
            mask = nodes == node
            if not np.any(mask):
                continue
            n_accesses = batch.counts[mask].sum() * p.rate_compensation
            cost = self.topology.cost(socket, node)
            latency_seconds += n_accesses * cost.latency
            drain = n_accesses * ACCESS_SIZE / cost.bandwidth
            worst_drain = max(worst_drain, drain)
        latency_term = p.serial_fraction * latency_seconds / (p.threads * p.mlp)
        return latency_term + worst_drain + self.compute_time(batch.total_accesses)

    def compute_time(self, n_accesses: int) -> float:
        """Placement-independent CPU time for ``n_accesses`` raw accesses."""
        p = self.params
        return n_accesses * p.rate_compensation * p.compute_per_access / p.threads

    # -- profiling --------------------------------------------------------------

    def scan_time(self, n_scans: int, with_hint_amortization: bool = False) -> float:
        """Time for ``n_scans`` individual PTE scans."""
        if n_scans < 0:
            raise ConfigError(f"negative scan count: {n_scans}")
        per = (
            self.params.scan_overhead_with_hint_amortization()
            if with_hint_amortization
            else self.params.scan_overhead
        )
        return n_scans * per

    def hint_fault_time(self, n_faults: int) -> float:
        """Time for ``n_faults`` NUMA hint faults."""
        if n_faults < 0:
            raise ConfigError(f"negative fault count: {n_faults}")
        return n_faults * self.params.hint_fault_cost

    def pebs_time(self, n_samples: int) -> float:
        """Time to activate the counters and drain ``n_samples`` samples."""
        if n_samples < 0:
            raise ConfigError(f"negative sample count: {n_samples}")
        return self.params.pebs_activation_cost + n_samples * self.params.pebs_sample_cost

    def profiling_budget_pages(
        self,
        interval: float,
        overhead_constraint: float,
        num_scans: int,
        with_hint_amortization: bool = True,
    ) -> int:
        """The paper's Eq. 1: total page samples allowed per interval.

        ``num_ps = (t_mi * constraint) / (one_scan_overhead * num_scans)``
        """
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        if not 0.0 < overhead_constraint < 1.0:
            raise ConfigError(
                f"overhead_constraint must be in (0,1), got {overhead_constraint}"
            )
        if num_scans < 1:
            raise ConfigError(f"num_scans must be >= 1, got {num_scans}")
        per = (
            self.params.scan_overhead_with_hint_amortization()
            if with_hint_amortization
            else self.params.scan_overhead
        )
        return max(1, int(interval * overhead_constraint / (per * num_scans)))

    # -- migration step costs --------------------------------------------------

    def copy_time(self, npages: int, src_node: int, dst_node: int, parallelism: int = 1) -> float:
        """Time to copy ``npages`` from ``src_node`` to ``dst_node``.

        Args:
            parallelism: concurrent copy threads (Nimble / MTM helpers);
                divides the bandwidth term but cannot beat the link.
        """
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if parallelism < 1:
            raise ConfigError(f"parallelism must be >= 1, got {parallelism}")
        if npages == 0:
            return 0.0
        link = self.topology.copy_cost(src_node, dst_node)
        # One kernel thread is memcpy-limited; extra threads recover
        # bandwidth up to the link limit (Sec. 7.1 / Nimble).
        effective_bw = min(
            link.bandwidth, self.params.single_thread_copy_bw * parallelism
        )
        return link.latency + npages * PAGE_SIZE / effective_bw

    def alloc_time(self, npages: int) -> float:
        return self._per_page(npages, self.params.alloc_per_page)

    def unmap_time(self, npages: int) -> float:
        return self._per_page(npages, self.params.unmap_per_page)

    def map_time(self, npages: int) -> float:
        return self._per_page(npages, self.params.map_per_page)

    def pte_migrate_time(self, npages: int) -> float:
        return self._per_page(npages, self.params.pte_migrate_per_page)

    def _per_page(self, npages: int, unit: float) -> float:
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        return npages * unit
