"""Access-batch representation.

A workload's activity during one profiling interval is summarised as a
page-indexed histogram: which pages were touched, how many times, how many
of those were writes, and which socket issued most of the accesses.  This
is the only interface between workloads and the rest of the simulator, so
profilers cannot cheat — they see the same PTE bits and counter samples the
real mechanisms would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nputil

from repro.errors import WorkloadError
from repro.units import PAGE_SIZE


@dataclass
class AccessBatch:
    """Page-access histogram for one profiling interval.

    Attributes:
        pages: unique virtual page numbers touched (ascending).
        counts: accesses per page (>= 1 each).
        writes: write accesses per page (0 <= writes <= counts).
        sockets: dominant accessing socket per page (-1 when unattributed).
    """

    pages: np.ndarray
    counts: np.ndarray
    writes: np.ndarray
    sockets: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.pages = np.asarray(self.pages, dtype=np.int64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        self.writes = np.asarray(self.writes, dtype=np.int64)
        if self.sockets is None:
            self.sockets = np.zeros(self.pages.shape, dtype=np.int8)
        else:
            self.sockets = np.asarray(self.sockets, dtype=np.int8)
        if not (self.pages.shape == self.counts.shape == self.writes.shape == self.sockets.shape):
            raise WorkloadError("pages/counts/writes/sockets shapes differ")
        if self.pages.size:
            if np.any(np.diff(self.pages) <= 0):
                raise WorkloadError("pages must be strictly ascending (unique)")
            if np.any(self.counts < 1):
                raise WorkloadError("every listed page needs >= 1 access")
            if np.any(self.writes < 0) or np.any(self.writes > self.counts):
                raise WorkloadError("writes must satisfy 0 <= writes <= counts")

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "AccessBatch":
        return cls(
            pages=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            writes=np.empty(0, dtype=np.int64),
            sockets=np.empty(0, dtype=np.int8),
        )

    @classmethod
    def from_accesses(
        cls,
        accessed_pages: np.ndarray,
        is_write: np.ndarray | None = None,
        socket: int = 0,
    ) -> "AccessBatch":
        """Build a batch from a raw (possibly repeating) access sequence.

        Args:
            accessed_pages: page number of each access, in any order.
            is_write: per-access write flag (all reads if omitted).
            socket: socket to attribute every access to.
        """
        accessed_pages = np.asarray(accessed_pages, dtype=np.int64)
        if accessed_pages.size == 0:
            return cls.empty()
        if is_write is None:
            is_write = np.zeros(accessed_pages.shape, dtype=bool)
        is_write = np.asarray(is_write, dtype=bool)
        if is_write.shape != accessed_pages.shape:
            raise WorkloadError("is_write shape mismatch")
        pages, inverse = nputil.unique_inverse(accessed_pages)
        counts = np.bincount(inverse, minlength=pages.size).astype(np.int64)
        writes = np.bincount(inverse, weights=is_write.astype(np.float64), minlength=pages.size)
        return cls(
            pages=pages,
            counts=counts,
            writes=writes.astype(np.int64),
            sockets=np.full(pages.shape, socket, dtype=np.int8),
        )

    @classmethod
    def merge(cls, batches: list["AccessBatch"]) -> "AccessBatch":
        """Combine batches (e.g. per-thread) into one histogram.

        The dominant socket of a page is the socket contributing the most
        accesses to it across the merged batches.
        """
        batches = [b for b in batches if b.pages.size]
        if not batches:
            return cls.empty()
        all_pages = np.concatenate([b.pages for b in batches])
        all_counts = np.concatenate([b.counts for b in batches])
        all_writes = np.concatenate([b.writes for b in batches])
        all_sockets = np.concatenate([b.sockets for b in batches])

        pages, inverse = nputil.unique_inverse(all_pages)
        counts = np.zeros(pages.size, dtype=np.int64)
        writes = np.zeros(pages.size, dtype=np.int64)
        np.add.at(counts, inverse, all_counts)
        np.add.at(writes, inverse, all_writes)

        sockets = np.zeros(pages.size, dtype=np.int8)
        best = np.zeros(pages.size, dtype=np.int64)
        for socket in nputil.unique(all_sockets):
            contrib = np.zeros(pages.size, dtype=np.int64)
            mask = all_sockets == socket
            np.add.at(contrib, inverse[mask], all_counts[mask])
            take = contrib > best
            sockets[take] = socket
            best[take] = contrib[take]
        return cls(pages=pages, counts=counts, writes=writes, sockets=sockets)

    # -- queries --------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum())

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def total_reads(self) -> int:
        return self.total_accesses - self.total_writes

    @property
    def touched_pages(self) -> int:
        return int(self.pages.size)

    @property
    def touched_bytes(self) -> int:
        return self.touched_pages * PAGE_SIZE

    def write_ratio(self) -> float:
        """Fraction of accesses that are writes (0 when batch is empty)."""
        total = self.total_accesses
        if total == 0:
            return 0.0
        return self.total_writes / total

    def restrict(self, lo: int, hi: int) -> "AccessBatch":
        """Sub-batch covering pages in [lo, hi)."""
        mask = (self.pages >= lo) & (self.pages < hi)
        return AccessBatch(
            pages=self.pages[mask],
            counts=self.counts[mask],
            writes=self.writes[mask],
            sockets=self.sockets[mask],
        )

    def hot_pages(self, top_fraction: float) -> np.ndarray:
        """The most-accessed ``top_fraction`` of touched pages.

        Utility for building ground-truth hot sets in tests; workloads
        usually provide exact hot sets instead.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise WorkloadError(f"top_fraction must be in (0, 1], got {top_fraction}")
        if self.pages.size == 0:
            return np.empty(0, dtype=np.int64)
        k = max(1, int(round(self.pages.size * top_fraction)))
        order = np.argsort(self.counts, kind="stable")[::-1]
        return np.sort(self.pages[order[:k]])
