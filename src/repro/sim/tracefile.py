"""Trace recording and replay.

Records a workload's interval-by-interval access batches (and hot-page
ground truth) into a compressed ``.npz`` file, and replays them later as a
drop-in :class:`~repro.workloads.base.Workload`.  Useful for

* pinning an exact access stream across solution comparisons (beyond the
  statistical equivalence seeds already give),
* capturing expensive generators (graph traversals) once,
* shipping externally-collected traces into the simulator — the paper's
  production-trace experiments become reproducible from files.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import WorkloadError
from repro.hw.placement import Placer
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace, Vma
from repro.sim.trace import AccessBatch
from repro.workloads.base import Workload


class TraceRecorder:
    """Accumulates interval batches and writes them to one ``.npz`` file."""

    def __init__(self, spans: list[tuple[int, int]], names: list[str] | None = None) -> None:
        if not spans:
            raise WorkloadError("trace needs at least one VMA span")
        self.spans = list(spans)
        self.names = list(names) if names is not None else [
            f"vma{i}" for i in range(len(spans))
        ]
        if len(self.names) != len(self.spans):
            raise WorkloadError("names/spans length mismatch")
        self._batches: list[AccessBatch] = []
        self._hot: list[np.ndarray] = []

    def record(self, batch: AccessBatch, hot_pages: np.ndarray) -> None:
        """Append one interval's batch and ground-truth hot set."""
        self._batches.append(batch)
        self._hot.append(np.asarray(hot_pages, dtype=np.int64))

    @property
    def num_intervals(self) -> int:
        return len(self._batches)

    def save(self, path: str | pathlib.Path) -> None:
        """Write the trace as compressed npz."""
        if not self._batches:
            raise WorkloadError("nothing recorded")
        arrays: dict[str, np.ndarray] = {
            "spans": np.array(self.spans, dtype=np.int64),
            "names": np.array(self.names),
            "n_intervals": np.array([len(self._batches)]),
        }
        for i, (batch, hot) in enumerate(zip(self._batches, self._hot)):
            arrays[f"pages_{i}"] = batch.pages
            arrays[f"counts_{i}"] = batch.counts
            arrays[f"writes_{i}"] = batch.writes
            arrays[f"sockets_{i}"] = batch.sockets
            arrays[f"hot_{i}"] = hot
        np.savez_compressed(path, **arrays)

    @classmethod
    def capture(
        cls,
        workload: Workload,
        intervals: int,
        rng: np.random.Generator,
    ) -> "TraceRecorder":
        """Drive a built workload for ``intervals`` and record everything."""
        if intervals < 1:
            raise WorkloadError("need at least one interval")
        recorder = cls(
            spans=workload.spans(),
            names=[v.name for v in workload.vmas()],
        )
        for _ in range(intervals):
            batch = workload.next_batch(rng)
            recorder.record(batch, workload.hot_pages())
        return recorder


class TraceWorkload(Workload):
    """Replays a recorded trace as a workload.

    The trace loops when the simulation runs longer than the recording.
    ``build()`` reallocates the original VMA layout; the recorded page
    numbers are used verbatim, so the address space must be laid out the
    same way (the default sequential allocator guarantees it).
    """

    name = "trace"
    rw_mix = "recorded"

    def __init__(self, path: str | pathlib.Path) -> None:
        self._data = np.load(path, allow_pickle=False)
        self._spans = [tuple(int(x) for x in row) for row in self._data["spans"]]
        self._names = [str(n) for n in self._data["names"]]
        self._n = int(self._data["n_intervals"][0])
        self._vmas: list[Vma] = []
        self._cursor = -1

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:

        for (start, npages), name in zip(self._spans, self._names):
            vma = space.allocate_vma(npages, name)
            if vma.start != start:
                raise WorkloadError(
                    f"trace expects VMA {name!r} at page {start}, got {vma.start}; "
                    "replay into a fresh address space"
                )
            offset = vma.start
            for chunk_pages, node in placer.place(npages):
                chunk = Vma(start=offset, npages=chunk_pages, name=f"{name}[chunk]")
                thp.populate(space.page_table, chunk, node)
                offset += chunk_pages
            self._vmas.append(vma)

    def vmas(self) -> list[Vma]:
        return list(self._vmas)

    def footprint_pages(self) -> int:
        return sum(n for _, n in self._spans)

    def next_batch(self, rng: np.random.Generator) -> AccessBatch:
        self._cursor += 1
        i = self._cursor % self._n
        return AccessBatch(
            pages=self._data[f"pages_{i}"],
            counts=self._data[f"counts_{i}"],
            writes=self._data[f"writes_{i}"],
            sockets=self._data[f"sockets_{i}"],
        )

    def hot_pages(self) -> np.ndarray:
        if self._cursor < 0:
            raise WorkloadError("hot_pages() before the first next_batch()")
        return self._data[f"hot_{self._cursor % self._n}"]

    @property
    def num_intervals(self) -> int:
        """Intervals in the recording (replay loops past this)."""
        return self._n
