"""Deterministic random-source management.

Every stochastic component (workloads, profilers, PEBS, mechanisms) gets
its own generator spawned from one seed, so runs are reproducible and
components do not perturb each other's streams when one is reconfigured.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """A fresh PCG64 generator from ``seed`` (None = OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from one seed."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def named_rngs(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Independent generators keyed by component name.

    The same (seed, names) pair always yields the same streams, and adding
    a name at the end never disturbs the earlier streams.
    """
    return dict(zip(names, spawn_rngs(seed, len(names))))
