"""Shared memoization of workload access-batch streams.

Every engine run over the same ``(workload, scale, seed)`` synthesizes the
exact same sequence of :class:`~repro.sim.trace.AccessBatch` objects:
batches depend only on the workload's VMA layout (bump-allocated,
placement-independent) and the dedicated ``"workload"`` RNG stream derived
from the seed.  A benchmark matrix therefore re-synthesizes each stream
once per *solution* — pure waste.  The :class:`TraceCache` synthesizes each
stream once, on its own workload clone and RNG, and replays it to every
consumer.

Correctness properties:

* **Bit-identity** — the cache's clone draws from the same named RNG
  stream (:func:`~repro.sim.rng.named_rngs`) the engine would have used,
  so replayed batches equal freshly generated ones array-for-array.  The
  engine's own ``"workload"`` generator is simply left untouched (nothing
  else consumes it), so all other streams stay in sync.
* **Copy-on-read** — consumers receive fresh array copies; mutating a
  returned batch cannot corrupt the cache (asserted by tests).
* **Bounded** — streams are LRU-evicted whole once the byte budget is
  exceeded.  An evicted stream regenerates deterministically from
  interval 0 on the next request.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError
from repro.hw.placement import Placer
from repro.hw.topology import optane_4tier
from repro.metrics.perfstats import CacheStats
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.sim.rng import named_rngs
from repro.sim.trace import AccessBatch
from repro.units import MiB, PAGE_SIZE

#: Default in-memory budget for cached batch streams.
DEFAULT_CACHE_BYTES = 256 * MiB


def _batch_nbytes(batch: AccessBatch) -> int:
    return (
        batch.pages.nbytes + batch.counts.nbytes + batch.writes.nbytes + batch.sockets.nbytes
    )


def _copy(batch: AccessBatch) -> AccessBatch:
    return AccessBatch(
        pages=batch.pages.copy(),
        counts=batch.counts.copy(),
        writes=batch.writes.copy(),
        sockets=batch.sockets.copy(),
    )


class _Stream:
    """One memoized batch stream: a private workload clone plus its RNG."""

    def __init__(self, workload: str, scale: float, seed: int) -> None:
        from repro.workloads.registry import build_workload

        self.workload = build_workload(workload, scale, seed=seed)
        space = AddressSpace(optane_4tier(scale).total_capacity() // PAGE_SIZE)
        # Placement never influences batch synthesis (it only maps the
        # page table), so the clone builds on a trivial single-node placer.
        self.workload.build(space, ThpManager(), Placer(node=0, frames=None))
        self.rng = named_rngs(seed, ["workload", "profiler", "pebs", "mechanism", "thp"])[
            "workload"
        ]
        self.batches: list[AccessBatch] = []
        self.nbytes = 0

    def materialize_through(self, interval: int) -> int:
        """Extend the stream through ``interval``; returns batches added."""
        added = 0
        while len(self.batches) <= interval:
            batch = self.workload.next_batch(self.rng)
            self.batches.append(batch)
            self.nbytes += _batch_nbytes(batch)
            added += 1
        return added


class TraceCache:
    """LRU-bounded memoization of per-``(workload, scale, seed)`` streams.

    Args:
        max_bytes: byte budget across all cached streams.  Exceeding it
            evicts least-recently-used streams whole (a partially evicted
            stream would desynchronize its RNG).  The stream currently
            being read is never evicted by its own growth.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._streams: OrderedDict[tuple[str, float, int], _Stream] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- the one consumer-facing operation ---------------------------------

    def get_batch(
        self, workload: str, scale: float, seed: int, interval: int,
        obs=None,
    ) -> AccessBatch:
        """The ``interval``-th batch of the keyed stream (a private copy).

        A request counts as a hit when the batch is already materialized,
        as a miss when it has to be synthesized (first run through a
        stream, or a re-run after eviction).  ``obs`` (an optional
        :class:`~repro.obs.context.ObsContext`) receives per-request
        hit/miss events attributed to the calling engine — the cache is
        shared, so it carries no context of its own.
        """
        if interval < 0:
            raise ConfigError(f"interval must be >= 0, got {interval}")
        key = (workload, float(scale), int(seed))
        stream = self._streams.get(key)
        if stream is None:
            stream = _Stream(workload, scale, seed)
            self._streams[key] = stream
        else:
            self._streams.move_to_end(key)
        if interval < len(stream.batches):
            self.hits += 1
            if obs is not None:
                self._emit(obs, True, workload, interval)
        else:
            self.misses += stream.materialize_through(interval)
            self._evict(keep=key)
            if obs is not None:
                self._emit(obs, False, workload, interval)
        return _copy(stream.batches[interval])

    @staticmethod
    def _emit(obs, hit: bool, workload: str, interval: int) -> None:
        from repro.obs.events import EV_CACHE_HIT, EV_CACHE_MISS

        obs.emit(EV_CACHE_HIT if hit else EV_CACHE_MISS, interval=interval,
                 cache="trace", workload=workload)
        obs.inc("cache.requests", cache="trace",
                outcome="hit" if hit else "miss")

    # -- bookkeeping --------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        return sum(s.nbytes for s in self._streams.values())

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            cached_bytes=self.cached_bytes,
        )

    def _evict(self, keep: tuple[str, float, int]) -> None:
        while self.cached_bytes > self.max_bytes and len(self._streams) > 1:
            oldest = next(iter(self._streams))
            if oldest == keep:
                # The active stream is the LRU tail only when it is alone
                # with one other; rotate it to the end and retry.
                self._streams.move_to_end(oldest)
                oldest = next(iter(self._streams))
            del self._streams[oldest]
            self.evictions += 1
