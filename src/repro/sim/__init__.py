"""Discrete-time simulation engine.

The engine advances time in *profiling intervals* (the paper's default is
10 s).  Within each interval the workload produces an :class:`AccessBatch`
(a page-indexed access histogram), the cost model converts it into
application execution time given the current page placement, the profiler
consumes scan budget, and the policy migrates regions whose cost is charged
per the mechanism model.
"""

from repro.sim.trace import AccessBatch
from repro.sim.clock import Clock
from repro.sim.costmodel import CostModel, CostParams
from repro.sim.rng import make_rng, spawn_rngs

__all__ = [
    "AccessBatch",
    "Clock",
    "CostModel",
    "CostParams",
    "make_rng",
    "spawn_rngs",
    "IntervalRecord",
    "SimulationEngine",
    "SimulationResult",
]

_LAZY = {"IntervalRecord", "SimulationEngine", "SimulationResult"}


def __getattr__(name: str):
    # The engine sits above the whole stack (profilers, policies,
    # mechanisms), while low-level modules import repro.sim.trace; loading
    # it lazily keeps ``from repro.sim import AccessBatch`` cycle-free.
    if name in _LAZY:
        from repro.sim import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
