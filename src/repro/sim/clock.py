"""Simulated clock with categorized time accounting.

The paper's Figure 5 breaks end-to-end execution into application
execution, profiling, and migration (critical path only — asynchronous
copy work overlaps the application and is *not* end-to-end time).  The
clock keeps those categories separate so the breakdown falls out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Categories the clock can advance under.
CATEGORY_APP = "app"
CATEGORY_PROFILING = "profiling"
CATEGORY_MIGRATION = "migration"

_CATEGORIES = (CATEGORY_APP, CATEGORY_PROFILING, CATEGORY_MIGRATION)


@dataclass
class Clock:
    """Accumulates simulated time by category.

    Attributes:
        now: total simulated seconds elapsed.
        background_time: work done off the critical path (async page
            copies); informational, never added to ``now``.
    """

    now: float = 0.0
    background_time: float = 0.0
    by_category: dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in _CATEGORIES}
    )

    def advance(self, seconds: float, category: str = CATEGORY_APP) -> None:
        """Advance the critical path by ``seconds`` under ``category``."""
        if seconds < 0:
            raise ConfigError(f"cannot advance by negative time {seconds}")
        if category not in self.by_category:
            raise ConfigError(f"unknown category {category!r}; use one of {_CATEGORIES}")
        self.now += seconds
        self.by_category[category] += seconds

    def record_background(self, seconds: float) -> None:
        """Record off-critical-path work (does not advance ``now``)."""
        if seconds < 0:
            raise ConfigError(f"cannot record negative time {seconds}")
        self.background_time += seconds

    @property
    def app_time(self) -> float:
        return self.by_category[CATEGORY_APP]

    @property
    def profiling_time(self) -> float:
        return self.by_category[CATEGORY_PROFILING]

    @property
    def migration_time(self) -> float:
        return self.by_category[CATEGORY_MIGRATION]

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-category times."""
        return dict(self.by_category)
