"""The interval-driven simulation engine.

One engine instance simulates one managed application on one machine under
one solution (profiler + policy + mechanism + initial placement, or the
hardware cache mode).  Per profiling interval it:

1. asks the workload for the interval's :class:`~repro.sim.trace.AccessBatch`;
2. applies it through the MMU (PTE bits, counters) and charges application
   execution time from the cost model — or through the DRAM cache in HMC
   mode;
3. runs the profiler (charging profiling time) and optionally scores it
   against the workload's ground-truth hot set;
4. lets the policy decide and the planner execute migrations, charging
   critical-path migration time and recording overlapped background time.

The result object carries everything the paper's tables and figures need:
per-interval records, the Fig. 5 time breakdown, per-tier access counters
(Table 6), the migration log, and memory overhead (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import time as _time
from typing import TYPE_CHECKING

from repro import kernels
from repro.errors import ConfigError, TransientError
from repro.faults.injector import FaultInjector, FaultLog
from repro.faults.watchdog import IntervalWatchdog
from repro.hw.dram_cache import DramCache
from repro.hw.frames import FrameAccountant
from repro.hw.placement import (
    Placer,
    first_touch_placer,
    slow_tier_first_placer,
)
from repro.hw.tier import MemoryKind
from repro.hw.topology import TierTopology
from repro.migrate.mechanism import Mechanism
from repro.migrate.move_pages import MovePagesMechanism
from repro.metrics.perfstats import PerfStats
from repro.migrate.planner import MigrationLog, MigrationPlanner, RetryPolicy
from repro.mm.hugepage import ThpManager
from repro.mm.mmu import Mmu
from repro.mm.vma import AddressSpace
from repro.obs.events import EV_INTERVAL_END, EV_INTERVAL_START
from repro.perf.pcm import PcmCounters
from repro.perf.pebs import PebsSampler
from repro.policy.base import PlacementState, Policy
from repro.profile.base import Profiler
from repro.profile.quality import ProfilingQuality, evaluate_quality
from repro.sim.clock import CATEGORY_APP, CATEGORY_MIGRATION, CATEGORY_PROFILING, Clock
from repro.sim.costmodel import ACCESS_SIZE, CostModel, CostParams, effective_interval
from repro.sim.rng import named_rngs
from repro.sim.trace import AccessBatch
from repro.units import PAGE_SIZE
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.obs.context import ObsContext, ObsData
    from repro.sim.snapshot import EngineSnapshot
    from repro.sim.tracecache import TraceCache

#: Initial placement strategies.
PLACEMENT_FIRST_TOUCH = "first_touch"
PLACEMENT_SLOW_TIER_FIRST = "slow_tier_first"
PLACEMENT_PM_ONLY = "pm_only"  # HMC: software only sees the PM capacity


@dataclass
class IntervalRecord:
    """Everything measured in one profiling interval."""

    index: int
    app_time: float
    profiling_time: float = 0.0
    migration_time: float = 0.0
    background_time: float = 0.0
    promoted_pages: int = 0
    demoted_pages: int = 0
    fast_tier_accesses: int = 0
    total_accesses: int = 0
    region_count: int = 0
    quality: ProfilingQuality | None = None
    degraded: bool = False
    fault_events: int = 0

    @property
    def total_time(self) -> float:
        """Critical-path seconds this interval."""
        return self.app_time + self.profiling_time + self.migration_time


@dataclass
class SimulationResult:
    """Outcome of a full run."""

    label: str
    workload: str
    records: list[IntervalRecord]
    clock: Clock
    pcm: PcmCounters
    migration_log: MigrationLog
    memory_overhead_bytes: int = 0
    footprint_pages: int = 0
    fault_log: FaultLog | None = None
    degraded_intervals: int = 0
    perf: PerfStats | None = None
    obs: "ObsData | None" = None

    @property
    def total_time(self) -> float:
        return self.clock.now

    @property
    def degraded_share(self) -> float:
        """Fraction of intervals that ran in degraded mode."""
        if not self.records:
            return 0.0
        return self.degraded_intervals / len(self.records)

    def breakdown(self) -> dict[str, float]:
        """Fig. 5's app/profiling/migration split."""
        return self.clock.breakdown()

    def tier_accesses(self, socket: int = 0) -> dict[int, int]:
        """Table 6's per-tier application access counts."""
        return self.pcm.tier_accesses(socket)

    def fast_tier_share(self, socket: int = 0) -> float:
        return self.pcm.fastest_tier_share(socket)

    def quality_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(recall, accuracy) per interval where quality was collected."""
        qs = [r.quality for r in self.records if r.quality is not None]
        return (
            np.array([q.recall for q in qs]),
            np.array([q.accuracy for q in qs]),
        )

    def speedup_over(self, other: "SimulationResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        if self.total_time <= 0:
            raise ConfigError("run has no elapsed time")
        return other.total_time / self.total_time

    def to_csv(self, path) -> None:
        """Write the per-interval records as CSV (for external plotting)."""
        import csv

        columns = [
            "index", "app_time", "profiling_time", "migration_time",
            "background_time", "promoted_pages", "demoted_pages",
            "fast_tier_accesses", "total_accesses", "region_count",
            "recall", "accuracy", "degraded", "fault_events",
        ]
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(columns)
            for r in self.records:
                writer.writerow([
                    r.index, r.app_time, r.profiling_time, r.migration_time,
                    r.background_time, r.promoted_pages, r.demoted_pages,
                    r.fast_tier_accesses, r.total_accesses, r.region_count,
                    r.quality.recall if r.quality else "",
                    r.quality.accuracy if r.quality else "",
                    int(r.degraded), r.fault_events,
                ])


class SimulationEngine:
    """Simulates one workload under one management solution.

    Args:
        topology: the machine.
        workload: traffic generator (not yet built).
        policy: migration policy.
        profiler: profiling mechanism (may be None when the policy does
            not consume profiling, e.g. first-touch or HMC).
        mechanism: migration mechanism (None when the policy never moves).
        placement: one of the PLACEMENT_* strategies.
        cost_params: cost-model constants (scaled to the machine).
        interval: profiling interval t_mi in simulated seconds; ``None``
            uses the paper's 10 s scaled by the cost params' machine scale.
        calibration_target: the workload's raw per-interval app time is
            rescaled by one fixed multiplier so that a *reference*
            placement (everything resident on the slowest tier) would take
            ``calibration_target * interval`` — the paper's setup, where
            t_mi spans one interval of application work.  The reference is
            solution-independent, so the relative times of different
            solutions on the same workload are directly comparable.  Set
            to 0 to disable calibration.
        seed: master seed; every component draws an independent stream.
        socket: viewpoint socket (tier ranking, Table 6 presentation).
        collect_quality: score every snapshot against ground truth (Fig. 1).
        hmc: hardware-managed DRAM cache mode (Memory Mode baseline).
        label: name shown in reports.
        injector: optional fault injector, wired through the planner
            (EBUSY/ENOMEM), the PEBS sampler (buffer overflow), the
            profiler (scan truncation), and the mechanisms (copy stalls).
            A zero-rate injector is bit-identical to no injector.
        watchdog: degraded-mode controller; ``None`` builds the default.
            When an interval blows the overhead budget or absorbs a fault
            burst repeatedly, the next interval sheds — the scan is
            skipped and no new migration work starts (pending retries
            still drain) — and is recorded as degraded.
        recovery: ``False`` runs the planner fail-fast (no retry queue,
            transient faults raise and the interval is recorded degraded)
            — the baseline the resilience benchmark compares against.
        trace_cache: optional shared :class:`~repro.sim.tracecache.TraceCache`.
            When provided together with ``trace_key``, each interval's
            batch is replayed from the memoized stream instead of being
            synthesized; the workload only advances its segment plan
            (:meth:`~repro.workloads.base.SegmentedWorkload.advance_interval`).
            Bit-identical to synthesis: the cache draws from the same
            named RNG stream, and nothing else consumes the engine's
            ``"workload"`` generator.
        trace_key: ``(workload_name, scale, seed)`` identifying the
            stream in ``trace_cache``.  Ignored when ``trace_cache`` is
            None; requires a workload exposing ``advance_interval``.
        obs: optional :class:`~repro.obs.context.ObsContext`.  When set,
            the engine (and every attached component — profiler, PEBS
            sampler, planner, mechanisms, injector) emits structured
            events, spans, metrics, and migration provenance into it.
            Purely observational: enabling it never changes simulated
            results (bit-identity, test-enforced), and when ``None`` no
            emission code runs at all.
    """

    def __init__(
        self,
        topology: TierTopology,
        workload: Workload,
        policy: Policy,
        profiler: Profiler | None = None,
        mechanism: Mechanism | None = None,
        placement: str = PLACEMENT_FIRST_TOUCH,
        cost_params: CostParams | None = None,
        interval: float | None = None,
        calibration_target: float = 1.0,
        seed: int = 0,
        socket: int = 0,
        collect_quality: bool = False,
        hmc: bool = False,
        label: str = "",
        thp: ThpManager | None = None,
        injector: FaultInjector | None = None,
        watchdog: IntervalWatchdog | None = None,
        recovery: bool = True,
        trace_cache: "TraceCache | None" = None,
        trace_key: tuple[str, float, int] | None = None,
        obs: "ObsContext | None" = None,
    ) -> None:
        if policy.wants_profiling() and profiler is None:
            raise ConfigError(f"policy {policy.name!r} needs a profiler")
        self.topology = topology
        self.workload = workload
        self.policy = policy
        self.profiler = profiler
        self.mechanism = mechanism
        params_for_scale = cost_params if cost_params is not None else CostParams()
        self.interval = (
            interval if interval is not None else effective_interval(params_for_scale.scale)
        )
        self.calibration_target = calibration_target
        self._app_time_multiplier: float | None = None
        self.socket = socket
        self.collect_quality = collect_quality
        self.hmc = hmc
        self.label = label or policy.name

        self.cost_model = CostModel(topology, cost_params)
        self.rngs = named_rngs(seed, ["workload", "profiler", "pebs", "mechanism", "thp"])
        self.frames = FrameAccountant(topology)
        space_pages = topology.total_capacity() // PAGE_SIZE
        self.space = AddressSpace(space_pages)
        self.thp = thp if thp is not None else ThpManager()

        placer = self._make_placer(placement)
        self.workload.build(self.space, self.thp, placer)

        self.injector = injector
        self.watchdog = watchdog if watchdog is not None else IntervalWatchdog()
        self.recovery = recovery
        self._transient_aborts = 0
        self.trace_cache = trace_cache
        self.trace_key = trace_key
        if (
            trace_cache is not None
            and trace_key is not None
            and not hasattr(workload, "advance_interval")
        ):
            raise ConfigError(
                "trace_cache requires a workload with advance_interval()"
            )
        self.perfstats = PerfStats()

        self.mmu = Mmu(self.space.page_table, num_sockets=topology.num_sockets)
        self.pcm = PcmCounters(topology)
        self.pebs = PebsSampler(
            topology,
            period=self.cost_model.params.pebs_period,
            rng=self.rngs["pebs"],
            injector=injector,
        )
        self.clock = Clock()
        self.dram_cache = self._make_dram_cache() if hmc else None

        if self.profiler is not None:
            self.profiler.setup(self.space.page_table, self.workload.spans())
            self.profiler.injector = injector
        self.planner: MigrationPlanner | None = None
        if self.mechanism is not None:
            self.mechanism.attach_injector(injector)
            fallback: Mechanism | None = None
            if not isinstance(self.mechanism, MovePagesMechanism):
                # The daemon's fallback chain: orders that keep failing
                # through the fancy mechanism retry via plain sync
                # move_pages().
                fallback = MovePagesMechanism(self.cost_model)
                fallback.attach_injector(injector)
            self.planner = MigrationPlanner(
                self.space.page_table,
                self.frames,
                self.mechanism,
                interval=self.interval,
                time_scale=self._migration_time_scale(),
                injector=injector,
                retry_policy=RetryPolicy() if recovery else None,
                fallback_mechanism=fallback,
                topology=self.topology,
                socket=self.socket,
            )
        self._records: list[IntervalRecord] = []
        self._obs_summarized = False
        self._attach_obs(obs)

    def _attach_obs(self, obs: "ObsContext | None") -> None:
        """(Re)wire one obs context through every emitting component.

        Mirrors the trace-cache detach discipline: ``capture_engine``
        detaches the context before pickling and reattaches afterwards,
        and ``fork_engine`` attaches a fresh one to the fork.
        """
        self.obs = obs
        self.pebs.obs = obs
        if self.profiler is not None:
            self.profiler.obs = obs
        if self.mechanism is not None:
            self.mechanism.attach_obs(obs)
        if self.injector is not None:
            self.injector.obs = obs
        if self.planner is not None:
            self.planner.obs = obs
            if self.planner.fallback_mechanism is not None:
                self.planner.fallback_mechanism.attach_obs(obs)

    # -- construction helpers --------------------------------------------------

    def _make_placer(self, placement: str) -> Placer:
        if placement == PLACEMENT_FIRST_TOUCH:
            return first_touch_placer(self.topology, self.frames, self.socket)
        if placement == PLACEMENT_SLOW_TIER_FIRST:
            return slow_tier_first_placer(self.topology, self.frames, self.socket)
        if placement == PLACEMENT_PM_ONLY:
            from repro.hw.placement import TierOrderPlacer

            pm_nodes = [
                c.node_id for c in self.topology.components if c.kind != MemoryKind.DRAM
            ]
            if not pm_nodes:
                raise ConfigError("PM-only placement needs a non-DRAM component")
            return TierOrderPlacer(self.topology, self.frames, pm_nodes)
        raise ConfigError(f"unknown placement {placement!r}")

    def _migration_time_scale(self) -> float:
        """Calibrate migration timing to the paper's interval share.

        On the paper's machine a full 200 MB `move_pages()` budget costs
        ~6% of the 10 s interval.  A capacity-scaled machine migrates a
        *relatively* larger budget (the 2 MB region quantum cannot
        shrink), so the per-move cost is scaled such that spending the
        policy's full budget through sequential `move_pages()` costs the
        same ~6% share of the (scaled) interval.  The same factor applies
        to every mechanism, so their relative speeds (Figs. 3/11) carry
        straight into end-to-end runs.
        """
        from repro.migrate.move_pages import MovePagesMechanism
        from repro.policy.mtm_policy import PAPER_MIGRATION_BUDGET

        share_target = 0.06
        budget_bytes = int(PAPER_MIGRATION_BUDGET * self.cost_model.params.scale)
        config = getattr(self.policy, "config", None)
        budget_bytes = max(budget_bytes, getattr(config, "budget_bytes", budget_bytes))
        budget_pages = max(1, budget_bytes // PAGE_SIZE)
        view = self.topology.view(self.socket)
        src = view.node_at_tier(view.num_tiers)
        dst = view.node_at_tier(1)
        reference = MovePagesMechanism(self.cost_model).timing(budget_pages, src, dst)
        if reference.critical_time <= 0:
            return self.cost_model.params.scale
        return share_target * self.interval / reference.critical_time

    def _make_dram_cache(self) -> DramCache:
        dram_pages = sum(
            c.capacity_pages
            for c in self.topology.components
            if c.kind == MemoryKind.DRAM
        )
        if dram_pages == 0:
            raise ConfigError("HMC mode needs a DRAM component")
        # Misses move 256 B XPLines, not whole pages.
        return DramCache(num_sets=dram_pages, block_bytes=256)

    # -- the main loop --------------------------------------------------------

    def run(self, num_intervals: int) -> SimulationResult:
        """Simulate ``num_intervals`` profiling intervals."""
        if num_intervals < 1:
            raise ConfigError(f"num_intervals must be >= 1, got {num_intervals}")
        compile_before = kernels.compile_seconds()
        for _ in range(num_intervals):
            self.step()
        # Attribute kernel compile/JIT work that happened during this run
        # (first compiled-backend call in the process) so the perf stats
        # separate one-time compile latency from steady-state run time.
        self.perfstats.compile_seconds += kernels.compile_seconds() - compile_before
        return self.result()

    def step(self) -> IntervalRecord:
        """Simulate one profiling interval."""
        obs = self.obs
        if obs is not None:
            with obs.span("interval", cat="engine", index=len(self._records)):
                return self._step_impl(obs)
        return self._step_impl(None)

    def _next_batch(self) -> AccessBatch:
        if self.trace_cache is not None and self.trace_key is not None:
            batch = self.trace_cache.get_batch(
                *self.trace_key, len(self._records), obs=self.obs
            )
            # The stream already drew this interval's randomness on the
            # cache's clone; only advance the local segment plan so
            # hot_pages() ground truth matches the replayed batch.
            self.workload.advance_interval()
            return batch
        return self.workload.next_batch(self.rngs["workload"])

    def _step_impl(self, obs: "ObsContext | None") -> IntervalRecord:
        t_step = _time.perf_counter()
        if obs is not None:
            obs.emit(EV_INTERVAL_START, sim_time=self.clock.now,
                     interval=len(self._records))
            if self.injector is not None:
                # Fault events carry the current interval in the stream;
                # the injector has no other view of simulation progress.
                self.injector.current_interval = len(self._records)
            with obs.span("workload", cat="engine", index=len(self._records)):
                batch = self._next_batch()
        else:
            batch = self._next_batch()
        dt = _time.perf_counter() - t_step
        self.perfstats.workload_seconds += dt
        self.perfstats.record_sample("workload", dt)
        self.mmu.begin_interval(batch)
        fast_before = self._fast_tier_count()
        self.pcm.count(batch, self.space.page_table)

        if self.dram_cache is not None:
            app_time = self._hmc_app_time(batch)
        else:
            app_time = self.cost_model.app_time(batch, self.space.page_table, self.socket)
        app_time *= self._calibration_multiplier(batch)
        self.clock.advance(app_time, CATEGORY_APP)

        record = IntervalRecord(
            index=len(self._records),
            app_time=app_time,
            total_accesses=batch.total_accesses,
        )

        faults_before = self.injector.log.total_events if self.injector is not None else 0
        shed = self.watchdog.should_shed()
        if shed:
            self.watchdog.begin_shed()
            record.degraded = True

        # Eq. 1's t_mi is wall-clock application time: as placement improves
        # and the same work quantum takes less time, the profiling budget
        # shrinks with it so the overhead constraint keeps holding against
        # *actual* execution time.
        if self.profiler is not None:
            config = getattr(self.profiler, "config", None)
            if config is not None and hasattr(config, "interval") and app_time > 0:
                config.interval = app_time

        if self.policy.wants_profiling() and self.profiler is not None:
            if shed:
                # Degraded interval: the watchdog shed this interval's
                # scan and migration budget; only the retry backlog
                # drains, so the daemon catches up instead of piling on.
                if self.planner is not None:
                    if obs is not None:
                        with obs.span("migrate.drain", cat="migrate",
                                      index=record.index):
                            timing = self.planner.drain_retries(self.mmu)
                    else:
                        timing = self.planner.drain_retries(self.mmu)
                    self.clock.advance(timing.critical_time, CATEGORY_MIGRATION)
                    self.clock.record_background(timing.background_time)
                    record.migration_time = timing.critical_time
                    record.background_time = timing.background_time
            else:
                try:
                    self._profile_and_migrate(record)
                except TransientError:
                    # Fail-fast planner (or an unrecovered fault path):
                    # the interval's remaining management work is lost,
                    # the run continues in degraded mode.
                    record.degraded = True
                    self._transient_aborts += 1

        if self.injector is not None:
            record.fault_events = self.injector.log.total_events - faults_before
        self.watchdog.observe(
            record.app_time,
            record.profiling_time + record.migration_time,
            record.fault_events,
        )

        record.fast_tier_accesses = self._fast_tier_count() - fast_before
        self._records.append(record)
        # Every consumer of the interval's activity has run; drop the
        # batch so peak RSS stays O(one interval), not O(run length).
        self.mmu.release_batch()
        dt = _time.perf_counter() - t_step
        self.perfstats.total_seconds += dt
        self.perfstats.record_sample("interval", dt)
        self.perfstats.intervals += 1
        if obs is not None:
            obs.emit(
                EV_INTERVAL_END, sim_time=self.clock.now, interval=record.index,
                app_time=record.app_time,
                profiling_time=record.profiling_time,
                migration_time=record.migration_time,
                promoted_pages=record.promoted_pages,
                demoted_pages=record.demoted_pages,
                region_count=record.region_count,
                degraded=record.degraded,
                fault_events=record.fault_events,
            )
            obs.observe("engine.interval_host_seconds", dt)
            obs.inc("engine.intervals")
            if record.degraded:
                obs.inc("engine.degraded_intervals")
            for component in self.topology.components:
                node = component.node_id
                obs.set_gauge("tier.occupancy_pages",
                              self.frames.used_pages(node), node=node)
                obs.set_gauge("tier.capacity_pages",
                              self.frames.capacity_pages(node), node=node)
            obs.stream_flush()
        return record

    def _profile_and_migrate(self, record: IntervalRecord) -> None:
        """One interval of daemon work: scan, decide, migrate."""
        assert self.profiler is not None
        obs = self.obs
        t0 = _time.perf_counter()
        if obs is not None:
            with obs.span("profile", cat="profile", index=record.index):
                snapshot = self.profiler.profile(
                    self.mmu, pebs=self.pebs, socket=self.socket
                )
        else:
            snapshot = self.profiler.profile(
                self.mmu, pebs=self.pebs, socket=self.socket
            )
        dt = _time.perf_counter() - t0
        self.perfstats.profile_seconds += dt
        self.perfstats.record_sample("profile", dt)
        self.clock.advance(snapshot.profiling_time, CATEGORY_PROFILING)
        record.profiling_time = snapshot.profiling_time
        record.region_count = len(snapshot.reports)
        if self.collect_quality:
            truth = self.workload.hot_pages()
            if truth.size:
                record.quality = evaluate_quality(snapshot, truth)
        if self.planner is not None:
            t0 = _time.perf_counter()
            state = PlacementState(
                page_table=self.space.page_table,
                frames=self.frames,
                topology=self.topology,
            )
            if obs is not None:
                with obs.span("plan", cat="migrate", index=record.index):
                    orders = self.policy.decide(snapshot, state)
            else:
                orders = self.policy.decide(snapshot, state)
            before = (self.planner.log.promoted_pages, self.planner.log.demoted_pages)
            try:
                if obs is not None:
                    with obs.span("migrate", cat="migrate", index=record.index,
                                  orders=len(orders)):
                        timing = self.planner.execute(orders, self.mmu)
                else:
                    timing = self.planner.execute(orders, self.mmu)
            finally:
                record.promoted_pages = self.planner.log.promoted_pages - before[0]
                record.demoted_pages = self.planner.log.demoted_pages - before[1]
                dt = _time.perf_counter() - t0
                self.perfstats.migrate_seconds += dt
                self.perfstats.record_sample("migrate", dt)
            self.clock.advance(timing.critical_time, CATEGORY_MIGRATION)
            self.clock.record_background(timing.background_time)
            record.migration_time = timing.critical_time
            record.background_time = timing.background_time

    # -- checkpoint / fork -----------------------------------------------------

    def snapshot(self, key: tuple | None = None) -> "EngineSnapshot":
        """Serialize the engine's complete state after the current interval.

        The snapshot captures everything a continued run depends on —
        simulated clock, MMU arrays, page table, profiler/policy state,
        planner backlog, RNG streams, fault-injector state — so
        ``SimulationEngine.fork(snapshot).run(m)`` is bit-identical to
        running ``m`` more intervals on this engine (test-enforced).
        The shared :class:`~repro.sim.tracecache.TraceCache` is *not*
        captured; :meth:`fork` reattaches one (or builds a private
        replacement that regenerates the stream deterministically).
        """
        from repro.sim.snapshot import capture_engine

        return capture_engine(self, key=key)

    @classmethod
    def fork(
        cls,
        snapshot: "EngineSnapshot",
        trace_cache: "TraceCache | None" = None,
        obs: "ObsContext | None" = None,
    ) -> "SimulationEngine":
        """Rebuild an independent engine from ``snapshot``.

        The fork shares nothing mutable with the engine that produced
        the snapshot (or with sibling forks); running it is bit-identical
        to continuing the original run from the snapshot point.
        """
        from repro.sim.snapshot import fork_engine

        return fork_engine(snapshot, trace_cache=trace_cache, obs=obs)

    def result(self) -> SimulationResult:
        """Assemble the run's result (and snapshot the obs context)."""
        if self.trace_cache is not None:
            self.perfstats.cache = self.trace_cache.stats()
        obs_data: "ObsData | None" = None
        if self.obs is not None:
            # Run-level summaries (host perf, migration counters) land in
            # the registry once, on the first result() call.
            if not self._obs_summarized:
                self._obs_summarized = True
                run_label = self.obs.label or self.label
                self.obs.record_perfstats(self.perfstats, label=run_label)
                self.obs.record_migration_log(
                    self.planner.log if self.planner else None,
                    label=run_label,
                )
            # Runner-built contexts carry a "workload/solution" label;
            # fall back to the engine label for bare contexts.
            obs_data = self.obs.snapshot(label=self.obs.label or self.label)
        return SimulationResult(
            label=self.label,
            workload=self.workload.name,
            records=list(self._records),
            clock=self.clock,
            pcm=self.pcm,
            migration_log=self.planner.log if self.planner else MigrationLog(),
            memory_overhead_bytes=(
                self.profiler.memory_overhead_bytes() if self.profiler else 0
            ),
            footprint_pages=self.workload.footprint_pages(),
            fault_log=self.injector.log if self.injector is not None else None,
            degraded_intervals=sum(1 for r in self._records if r.degraded),
            perf=self.perfstats,
            obs=obs_data,
        )

    # -- internals --------------------------------------------------------------

    def _calibration_multiplier(self, batch: AccessBatch) -> float:
        """Fix the app-time unit against a solution-independent reference.

        The reference prices the first interval's batch as if every page
        sat on the slowest tier; the resulting multiplier is frozen, so
        every solution on the same workload shares (statistically) the
        same unit and their relative times are meaningful.
        """
        if self.calibration_target <= 0:
            return 1.0
        if self._app_time_multiplier is None:
            reference = self._reference_app_time(batch)
            if reference <= 0:
                return 1.0
            self._app_time_multiplier = self.calibration_target * self.interval / reference
        return self._app_time_multiplier

    def _reference_app_time(self, batch: AccessBatch) -> float:
        """Batch cost with everything on the local slow tier (calibration).

        The reference placement is the slowest component *local to the
        socket* (tier 3 on the 4-tier machine) — the natural "nothing has
        been promoted yet" state.
        """
        if batch.pages.size == 0:
            return 0.0
        params = self.cost_model.params
        view = self.topology.view(self.socket)
        ref_node = None
        for tier in range(view.num_tiers, 0, -1):
            node = view.node_at_tier(tier)
            if self.topology.component(node).socket == self.socket:
                ref_node = node
                break
        if ref_node is None:
            ref_node = view.node_at_tier(view.num_tiers)
        cost = self.topology.cost(self.socket, ref_node)
        n = batch.total_accesses * params.rate_compensation
        latency_term = params.serial_fraction * n * cost.latency / (params.threads * params.mlp)
        bandwidth_term = n * ACCESS_SIZE / cost.bandwidth
        return latency_term + bandwidth_term + self.cost_model.compute_time(batch.total_accesses)

    def _fast_tier_count(self) -> int:
        view = self.topology.view(self.socket)
        return self.pcm.node_accesses[view.node_at_tier(1)]

    def _hmc_app_time(self, batch: AccessBatch) -> float:
        """Memory-mode timing: DRAM on hits, PM + amplification on misses."""
        assert self.dram_cache is not None
        if batch.pages.size == 0:
            return 0.0
        params = self.cost_model.params
        view = self.topology.view(self.socket)
        dram_cost = self.topology.cost(self.socket, view.node_at_tier(1))
        # The PM behind the cache: slowest component's link.
        pm_node = next(
            (c.node_id for c in self.topology.components if c.kind != MemoryKind.DRAM),
            view.node_at_tier(view.num_tiers),
        )
        pm_cost = self.topology.cost(self.socket, pm_node)

        fetched_before = self.dram_cache.stats.bytes_fetched
        written_before = self.dram_cache.stats.bytes_written_back
        hits, misses = self.dram_cache.access_batch(batch.pages, batch.counts, batch.writes)
        moved = (
            self.dram_cache.stats.bytes_fetched
            - fetched_before
            + self.dram_cache.stats.bytes_written_back
            - written_before
        )
        comp = params.rate_compensation
        latency_seconds = (hits * dram_cost.latency + misses * pm_cost.latency) * comp
        latency_term = params.serial_fraction * latency_seconds / (params.threads * params.mlp)
        bandwidth_term = (
            hits * comp * ACCESS_SIZE / dram_cost.bandwidth
            + moved * comp / pm_cost.bandwidth
        )
        return latency_term + bandwidth_term + self.cost_model.compute_time(batch.total_accesses)
