"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A memory tier ran out of frames for an allocation that must succeed."""


class TranslationError(ReproError):
    """A virtual address could not be translated (no VMA / not mapped)."""


class MigrationError(ReproError):
    """A page migration request was invalid (bad tier, unmapped page...)."""


class ProfilingError(ReproError):
    """A profiler was driven incorrectly (e.g. results read before a scan)."""


class WorkloadError(ReproError):
    """A workload generator was configured or driven incorrectly."""
