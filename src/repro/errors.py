"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A memory tier ran out of frames for an allocation that must succeed."""


class TranslationError(ReproError):
    """A virtual address could not be translated (no VMA / not mapped)."""


class MigrationError(ReproError):
    """A page migration request was invalid (bad tier, unmapped page...)."""


class ProfilingError(ReproError):
    """A profiler was driven incorrectly (e.g. results read before a scan)."""


class WorkloadError(ReproError):
    """A workload generator was configured or driven incorrectly."""


class TransientError(ReproError):
    """A recoverable runtime failure (the kernel said "not now").

    Transient errors carry structured context so recovery code (retry
    queues, degraded-mode accounting) can act on *where* the failure
    happened without parsing messages.

    Attributes:
        tier: component node id involved (-1 unknown).
        region: first page of the affected region (-1 unknown).
        interval: profiling interval the failure occurred in (-1 unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        tier: int = -1,
        region: int = -1,
        interval: int = -1,
    ) -> None:
        super().__init__(message)
        self.tier = tier
        self.region = region
        self.interval = interval

    def context(self) -> dict[str, int]:
        """The structured context as a dict (logging, reports)."""
        return {"tier": self.tier, "region": self.region, "interval": self.interval}


class MigrationBusyError(TransientError, MigrationError):
    """Pages could not be moved right now (EBUSY: pinned, writeback)."""


class TierPressureError(TransientError, CapacityError):
    """A destination tier could not allocate (ENOMEM under pressure)."""


class SampleLossError(TransientError, ProfilingError):
    """A sampling buffer overflowed and dropped part of its window."""
