"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A memory tier ran out of frames for an allocation that must succeed."""


class TranslationError(ReproError):
    """A virtual address could not be translated (no VMA / not mapped)."""


class MigrationError(ReproError):
    """A page migration request was invalid (bad tier, unmapped page...)."""


class ProfilingError(ReproError):
    """A profiler was driven incorrectly (e.g. results read before a scan)."""


class WorkloadError(ReproError):
    """A workload generator was configured or driven incorrectly."""


class TransientError(ReproError):
    """A recoverable runtime failure (the kernel said "not now").

    Transient errors carry structured context so recovery code (retry
    queues, degraded-mode accounting) can act on *where* the failure
    happened without parsing messages.

    Attributes:
        tier: component node id involved (-1 unknown).
        region: first page of the affected region (-1 unknown).
        interval: profiling interval the failure occurred in (-1 unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        tier: int = -1,
        region: int = -1,
        interval: int = -1,
    ) -> None:
        super().__init__(message)
        self.tier = tier
        self.region = region
        self.interval = interval

    def context(self) -> dict[str, int]:
        """The structured context as a dict (logging, reports)."""
        return {"tier": self.tier, "region": self.region, "interval": self.interval}


class MigrationBusyError(TransientError, MigrationError):
    """Pages could not be moved right now (EBUSY: pinned, writeback)."""


class TierPressureError(TransientError, CapacityError):
    """A destination tier could not allocate (ENOMEM under pressure)."""


class SampleLossError(TransientError, ProfilingError):
    """A sampling buffer overflowed and dropped part of its window."""


# -- service layer -------------------------------------------------------------
#
# The sweep service (:mod:`repro.service`) fails at process granularity:
# a worker dies mid-cell, a lease outlives its heartbeats, a cache entry
# rots on disk.  All of these are *recoverable by re-execution* — the
# cell is deterministic — so they join the transient taxonomy and flow
# through the same retry/backoff dispatch the planner uses for EBUSY.


class ServiceError(ReproError):
    """Base class for sweep-service failures (scheduler, worker, cache)."""


class ProtocolError(ServiceError):
    """A service peer sent a malformed or unexpected message.

    Not transient: a framing violation means the peers disagree about
    the wire format, and retrying the same bytes cannot fix that.
    """


class FrameTooLarge(ProtocolError):
    """A message would exceed the protocol frame bound.

    Raised *before* any bytes hit the wire, so the connection stays
    usable: the sender can report the failure in-band (the worker turns
    an oversized ``result`` into a clean ``completion_error`` requeue)
    instead of tearing the stream mid-frame.

    Attributes:
        frame_bytes: size the frame would have been (-1 unknown).
    """

    def __init__(self, message: str, *, frame_bytes: int = -1) -> None:
        super().__init__(message)
        self.frame_bytes = frame_bytes


class LeaseExpired(TransientError, ServiceError):
    """A cell lease outlived its deadline without heartbeats.

    The scheduler raises/records this when it reclaims the cell; a
    worker holding the stale lease sees its late ``result`` rejected.

    Attributes:
        lease_id: the expired lease (-1 unknown).
        attempt: which attempt of the cell expired (-1 unknown).
    """

    def __init__(self, message: str, *, lease_id: int = -1,
                 attempt: int = -1, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.lease_id = lease_id
        self.attempt = attempt


class WorkerLost(TransientError, ServiceError):
    """A worker process died or its connection dropped mid-lease.

    Attributes:
        worker_id: the lost worker ("" unknown).
    """

    def __init__(self, message: str, *, worker_id: str = "", **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.worker_id = worker_id


class CacheCorrupt(TransientError, ServiceError):
    """An on-disk result-cache entry failed its integrity check.

    Raised by :meth:`repro.service.cache.ResultCache.load_entry` when an
    entry's magic, length, or checksum does not match.  Transient by
    design: the entry is quarantined and the cell recomputed, so the
    corruption never surfaces to a client.

    Attributes:
        path: the corrupt entry file ("" unknown).
        reason: short machine-readable cause (``"magic"``, ``"truncated"``,
            ``"checksum"``, ``"unpickle"``).
    """

    def __init__(self, message: str, *, path: str = "",
                 reason: str = "", **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.path = path
        self.reason = reason


def is_transient(exc: BaseException) -> bool:
    """Planner-style dispatch: is ``exc`` recoverable by retrying?

    Covers the in-process taxonomy (EBUSY / ENOMEM / sample loss) and
    the service layer (expired leases, lost workers, corrupt cache
    entries) in one predicate, so retry loops at any level — planner
    chunk retries, scheduler cell requeues, client reconnects — agree
    on what is worth another attempt.
    """
    return isinstance(exc, TransientError)
