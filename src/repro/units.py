"""Size and time unit helpers used throughout the simulator.

All sizes in the simulator are plain ``int`` bytes and all times are
``float`` seconds.  These constants and conversion helpers keep call sites
readable (``4 * MiB`` instead of ``4194304``) and give one place to convert
the mixed units the paper reports (ns latencies, GB/s bandwidths, MB
migration budgets).
"""

from __future__ import annotations

# -- sizes (bytes) -----------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Base page size used by the memory-management substrate (Linux default).
PAGE_SIZE = 4 * KiB

#: Transparent-huge-page size (x86-64 2 MB pages, the paper's default).
HUGE_PAGE_SIZE = 2 * MiB

#: Number of base pages spanned by one huge page.
PAGES_PER_HUGE_PAGE = HUGE_PAGE_SIZE // PAGE_SIZE

# -- times (seconds) ---------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def gb_per_s(value: float) -> float:
    """Convert a GB/s bandwidth figure to bytes/second.

    The paper's Table 1 quotes decimal gigabytes per second, as vendor
    datasheets do.
    """
    return value * 1e9


def bytes_to_pages(nbytes: int) -> int:
    """Number of base pages needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    return -(-nbytes // PAGE_SIZE)


def pages_to_bytes(npages: int) -> int:
    """Size in bytes of ``npages`` base pages."""
    if npages < 0:
        raise ValueError(f"negative page count: {npages}")
    return npages * PAGE_SIZE


def format_bytes(nbytes: float) -> str:
    """Human-readable size, e.g. ``format_bytes(3 * MiB) == '3.0MiB'``."""
    value = float(nbytes)
    for suffix, scale in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= scale:
            return f"{value / scale:.1f}{suffix}"
    return f"{value:.0f}B"


def format_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_time(2.5e-5) == '25.0us'``."""
    value = float(seconds)
    if abs(value) >= 1.0:
        return f"{value:.2f}s"
    if abs(value) >= MS:
        return f"{value / MS:.1f}ms"
    if abs(value) >= US:
        return f"{value / US:.1f}us"
    return f"{value / NS:.0f}ns"
