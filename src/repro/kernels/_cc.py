"""C implementations of the compiled kernels, built with the system ``cc``.

This is the middle rung of the backend ladder: machines without Numba
but with any C compiler on ``PATH`` (gcc/clang) still get genuinely
compiled hot loops.  The source below is embedded as a string, written
to the shared kernel cache directory, compiled once per source revision
(``cc -O3 -march=native -shared -fPIC``, with a portable-flag retry)
into a hash-keyed shared object, and bound
with :mod:`ctypes` — no ``Python.h`` or build system required.

Bit-identity with the numpy fallback holds because every loop is
integer arithmetic and data movement only: no float reductions are
performed in C (numpy's pairwise summation would differ from a naive
accumulation loop), and weight/count sums stay in ``int64``.

Builds are concurrency-safe: the object is compiled to a
process-unique temporary name and ``os.replace``d into place, so
parallel workers racing on a cold cache all end up loading the same
file.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

void repro_scatter_reset(int64_t n, const int64_t *touched,
                         int64_t *ec, int64_t *ew, int8_t *es) {
    for (int64_t i = 0; i < n; i++) {
        int64_t e = touched[i];
        ec[e] = 0;
        ew[e] = 0;
        es[e] = -1;
    }
}

/* Fused interval ingest: the caller guarantees pages are strictly
 * ascending and every touched count/write slot is zero, so per-entry
 * accumulation (+=) equals the fallback's run-sum assignment. */
void repro_mmu_ingest(int64_t n, const int64_t *entries, const int64_t *counts,
                      const int64_t *writes, const int8_t *sockets,
                      const int64_t *pages, int64_t *ec, int64_t *ew,
                      int8_t *esock, uint16_t *flags, int64_t *cumc,
                      int64_t *cumw, uint16_t accessed_bit, uint16_t dirty_bit) {
    for (int64_t i = 0; i < n; i++) {
        int64_t e = entries[i];
        ec[e] += counts[i];
        ew[e] += writes[i];
        esock[e] = sockets[i];
        uint16_t f = (uint16_t)(flags[e] | accessed_bit);
        if (writes[i] > 0)
            f = (uint16_t)(f | dirty_bit);
        flags[e] = f;
        cumc[pages[i]] += counts[i];
        cumw[pages[i]] += writes[i];
    }
}

/* Single-pass run-length encoding.  Node maps are long runs of equal
 * values (migrated extents), so the scan walks fixed-width blocks: a
 * vectorizable xor-or reduction detects "any change in block" and
 * uniform blocks are skipped at SIMD speed; only blocks containing a
 * run boundary fall back to the scalar scan.  Writes into caller
 * buffers of capacity cap runs (bounds needs cap + 1 slots); returns
 * the true run count — when it exceeds cap the writes stop but the
 * count completes, so the caller retries with exact capacity. */
#define RLE_BLOCK 64

int64_t repro_node_rle(int64_t n, const int16_t *node, int64_t cap,
                       int64_t *bounds, int64_t *values) {
    int64_t r = 1;
    if (cap > 0) {
        bounds[0] = 0;
        values[0] = node[0];
    }
    int64_t i = 1;
    for (; i + RLE_BLOCK <= n; i += RLE_BLOCK) {
        int16_t diff = 0;
        for (int64_t j = i; j < i + RLE_BLOCK; j++)
            diff |= (int16_t)(node[j] ^ node[j - 1]);
        if (diff == 0)
            continue;
        for (int64_t j = i; j < i + RLE_BLOCK; j++) {
            if (node[j] != node[j - 1]) {
                if (r < cap) {
                    bounds[r] = j;
                    values[r] = node[j];
                }
                r++;
            }
        }
    }
    for (; i < n; i++) {
        if (node[i] != node[i - 1]) {
            if (r < cap) {
                bounds[r] = i;
                values[r] = node[i];
            }
            r++;
        }
    }
    if (r <= cap)
        bounds[r] = n;
    return r;
}

static int64_t upper_bound(const int64_t *a, int64_t n, int64_t key) {
    int64_t lo = 0, hi = n;
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (a[mid] <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Majority node per span over a node RLE.  scratch has n_nodes slots;
 * ties break to the lowest node id (first maximum), matching argmax. */
void repro_span_majority(int64_t nspans, const int64_t *starts,
                         const int64_t *npages, int64_t nbounds,
                         const int64_t *bounds, const int64_t *values,
                         int64_t n_nodes, int64_t *scratch, int64_t *out) {
    for (int64_t s = 0; s < nspans; s++) {
        int64_t start = starts[s];
        int64_t end = start + npages[s];
        memset(scratch, 0, (size_t)n_nodes * sizeof(int64_t));
        int64_t total = 0;
        int64_t r = upper_bound(bounds, nbounds, start) - 1;
        if (r < 0)
            r = 0;
        for (; r + 1 < nbounds && bounds[r] < end; r++) {
            int64_t lo = bounds[r] > start ? bounds[r] : start;
            int64_t hi = bounds[r + 1] < end ? bounds[r + 1] : end;
            int64_t node = values[r];
            if (hi > lo && node >= 0) {
                scratch[node] += hi - lo;
                total += hi - lo;
            }
        }
        if (total == 0) {
            out[s] = -1;
            continue;
        }
        int64_t best = 0;
        for (int64_t v = 1; v < n_nodes; v++)
            if (scratch[v] > scratch[best])
                best = v;
        out[s] = best;
    }
}

/* First-occurrence compaction of per-span leaf entries; returns the
 * number of entries written to out_entries.  out_counts[s] holds the
 * number of unique entries of span s. */
int64_t repro_span_entries(int64_t nspans, const int64_t *starts,
                           const int64_t *npages, const int64_t *entry,
                           int64_t *out_entries, int64_t *out_counts) {
    int64_t k = 0;
    for (int64_t s = 0; s < nspans; s++) {
        int64_t prev = -1;
        int64_t emitted = 0;
        int64_t end = starts[s] + npages[s];
        for (int64_t p = starts[s]; p < end; p++) {
            int64_t e = entry[p];
            if (emitted == 0 || e != prev) {
                out_entries[k++] = e;
                emitted++;
                prev = e;
            }
        }
        out_counts[s] = emitted;
    }
    return k;
}

/* Per-node accumulation with four independent accumulator banks: the
 * node map is mostly long runs of one value, so a single-accumulator
 * loop stalls on the store-to-load dependency of the repeated slot.
 * Banks break the chain; integer addition is order-independent, so
 * the merged totals are bit-identical to the simple loop. */
#define ACC_BANKS 4
#define ACC_MAX_SLOTS 64

void repro_node_accumulate(int64_t n, const int16_t *nodes,
                           const int64_t *counts, const int64_t *writes,
                           int64_t n_slots, int64_t *acc, int64_t *wr) {
    if (n_slots <= ACC_MAX_SLOTS) {
        int64_t ab[ACC_BANKS][ACC_MAX_SLOTS];
        int64_t wb[ACC_BANKS][ACC_MAX_SLOTS];
        memset(ab, 0, sizeof ab);
        memset(wb, 0, sizeof wb);
        int64_t i = 0;
        for (; i + ACC_BANKS <= n; i += ACC_BANKS) {
            for (int b = 0; b < ACC_BANKS; b++) {
                int64_t slot = (int64_t)nodes[i + b] + 1;
                ab[b][slot] += counts[i + b];
                wb[b][slot] += writes[i + b];
            }
        }
        for (; i < n; i++) {
            int64_t slot = (int64_t)nodes[i] + 1;
            ab[0][slot] += counts[i];
            wb[0][slot] += writes[i];
        }
        for (int64_t s = 0; s < n_slots; s++) {
            for (int b = 0; b < ACC_BANKS; b++) {
                acc[s] += ab[b][s];
                wr[s] += wb[b][s];
            }
        }
        return;
    }
    for (int64_t i = 0; i < n; i++) {
        int64_t slot = (int64_t)nodes[i] + 1;
        acc[slot] += counts[i];
        wr[slot] += writes[i];
    }
}

/* out = {sum, min, max, argmax-of-first-maximum}.  Two passes: the
 * branchless sum/min/max reduction vectorizes, then a second scan
 * finds the first index holding the max (numpy argmax's tie-break)
 * and exits early. */
void repro_score_detected(int64_t n, const int64_t *detected, int64_t *out) {
    int64_t total = 0, mn = detected[0], mx = detected[0];
    for (int64_t i = 0; i < n; i++) {
        int64_t d = detected[i];
        total += d;
        mn = d < mn ? d : mn;
        mx = d > mx ? d : mx;
    }
    int64_t arg = 0;
    for (int64_t i = 0; i < n; i++) {
        if (detected[i] == mx) {
            arg = i;
            break;
        }
    }
    out[0] = total;
    out[1] = mn;
    out[2] = mx;
    out[3] = arg;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_I16 = ctypes.POINTER(ctypes.c_int16)
_I8 = ctypes.POINTER(ctypes.c_int8)
_U16 = ctypes.POINTER(ctypes.c_uint16)

_SIGNATURES = {
    "repro_scatter_reset": (None, [ctypes.c_int64, _I64, _I64, _I64, _I8]),
    "repro_mmu_ingest": (
        None,
        [
            ctypes.c_int64,
            _I64,
            _I64,
            _I64,
            _I8,
            _I64,
            _I64,
            _I64,
            _I8,
            _U16,
            _I64,
            _I64,
            ctypes.c_uint16,
            ctypes.c_uint16,
        ],
    ),
    "repro_node_rle": (
        ctypes.c_int64,
        [ctypes.c_int64, _I16, ctypes.c_int64, _I64, _I64],
    ),
    "repro_span_majority": (
        None,
        [ctypes.c_int64, _I64, _I64, ctypes.c_int64, _I64, _I64, ctypes.c_int64, _I64, _I64],
    ),
    "repro_span_entries": (
        ctypes.c_int64,
        [ctypes.c_int64, _I64, _I64, _I64, _I64, _I64],
    ),
    "repro_node_accumulate": (
        None,
        [ctypes.c_int64, _I16, _I64, _I64, ctypes.c_int64, _I64, _I64],
    ),
    "repro_score_detected": (None, [ctypes.c_int64, _I64, _I64]),
}

_lib: ctypes.CDLL | None = None


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        from shutil import which

        if which(name):
            return name
    return None


def available() -> bool:
    """Whether a C compiler (or an already-built object) is usable."""
    if _lib is not None:
        return True
    return _compiler() is not None


#: Optimization flags; ``-march=native`` lets the auto-vectorizer use
#: the host's full SIMD width (results are unaffected — every kernel is
#: integer-only).  Compilers that reject it get the portable fallback.
_CFLAGS = ("-O3", "-march=native", "-funroll-loops")
_CFLAGS_PORTABLE = ("-O3",)


def load(cache_dir: Path) -> None:
    """Build (if needed) and bind the shared object; raises on failure."""
    global _lib
    if _lib is not None:
        return
    key = _SOURCE + "\0" + " ".join(_CFLAGS)
    digest = hashlib.sha256(key.encode()).hexdigest()[:12]
    cache_dir.mkdir(parents=True, exist_ok=True)
    so_path = cache_dir / f"repro_kernels_{digest}.so"
    if not so_path.exists():
        cc = _compiler()
        if cc is None:
            raise RuntimeError("no C compiler found")
        src_path = cache_dir / f"repro_kernels_{digest}.c"
        src_path.write_text(_SOURCE)
        fd, tmp = tempfile.mkstemp(
            dir=cache_dir, prefix=f"repro_kernels_{digest}_", suffix=".so"
        )
        os.close(fd)
        try:
            for flags in (_CFLAGS, _CFLAGS_PORTABLE):
                result = subprocess.run(
                    [cc, *flags, "-shared", "-fPIC", str(src_path), "-o", tmp],
                    capture_output=True,
                    text=True,
                )
                if result.returncode == 0:
                    break
            else:
                raise RuntimeError(
                    f"kernel build failed: {result.stderr.strip()}"
                )
            os.replace(tmp, so_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(str(so_path))
    for name, (restype, argtypes) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes
    _lib = lib


def _i64(a: np.ndarray):
    return a.ctypes.data_as(_I64)


def _i16(a: np.ndarray):
    return a.ctypes.data_as(_I16)


def _i8(a: np.ndarray):
    return a.ctypes.data_as(_I8)


def _u16(a: np.ndarray):
    return a.ctypes.data_as(_U16)


def mmu_scatter_reset(touched, entry_counts, entry_writes, entry_socket):
    """Reset interval state of previously-touched entries."""
    _lib.repro_scatter_reset(
        touched.size, _i64(touched), _i64(entry_counts), _i64(entry_writes),
        _i8(entry_socket),
    )


def mmu_ingest(
    entries, counts, writes, sockets, pages, entry_counts, entry_writes,
    entry_socket, flags, cumulative_counts, cumulative_writes,
    accessed_bit, dirty_bit,
):
    """Fused interval ingest for a strictly-ascending unique page batch."""
    _lib.repro_mmu_ingest(
        entries.size, _i64(entries), _i64(counts), _i64(writes), _i8(sockets),
        _i64(pages), _i64(entry_counts), _i64(entry_writes), _i8(entry_socket),
        _u16(flags), _i64(cumulative_counts), _i64(cumulative_writes),
        accessed_bit, dirty_bit,
    )


def node_rle(node):
    """Run-length encoding ``(bounds, values)`` of a node array."""
    n = node.shape[0]
    cap = 4096  # covers typical run counts in one pass
    while True:
        bounds = np.empty(cap + 1, dtype=np.int64)
        values = np.empty(cap, dtype=np.int64)
        runs = int(
            _lib.repro_node_rle(n, _i16(node), cap, _i64(bounds), _i64(values))
        )
        if runs <= cap:
            return bounds[: runs + 1], values[:runs]
        cap = runs


def span_majority(starts, npages, bounds, values):
    """Majority resident node of many spans over a node RLE."""
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    mapped = values >= 0
    if not np.any(mapped):
        return np.full(starts.size, -1, dtype=np.int64)
    n_nodes = int(values[mapped].max()) + 1
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    npages = np.ascontiguousarray(npages, dtype=np.int64)
    scratch = np.empty(n_nodes, dtype=np.int64)
    out = np.empty(starts.size, dtype=np.int64)
    _lib.repro_span_majority(
        starts.size, _i64(starts), _i64(npages), bounds.size, _i64(bounds),
        _i64(values), n_nodes, _i64(scratch), _i64(out),
    )
    return out


def span_entries(starts, npages, entry):
    """Unique leaf entries of many spans; ``(entries, offsets)``."""
    if starts.size == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    npages = np.ascontiguousarray(npages, dtype=np.int64)
    total = int(npages.sum())
    out_entries = np.empty(total, dtype=np.int64)
    out_counts = np.empty(starts.size, dtype=np.int64)
    k = int(
        _lib.repro_span_entries(
            starts.size, _i64(starts), _i64(npages), _i64(entry),
            _i64(out_entries), _i64(out_counts),
        )
    )
    offsets = np.empty(starts.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(out_counts, out=offsets[1:])
    return out_entries[:k].copy(), offsets


def node_accumulate(nodes, counts, writes, n_slots):
    """Per-node int64 access/write sums (slot 0 = unmapped)."""
    nodes = np.ascontiguousarray(nodes, dtype=np.int16)
    acc = np.zeros(n_slots, dtype=np.int64)
    wr = np.zeros(n_slots, dtype=np.int64)
    _lib.repro_node_accumulate(
        nodes.size, _i16(nodes), _i64(counts), _i64(writes), n_slots,
        _i64(acc), _i64(wr),
    )
    return acc, wr


def score_detected(detected):
    """Fused ``(sum, min, max, argmax)`` of detected counts."""
    detected = np.ascontiguousarray(detected, dtype=np.int64)
    out = np.empty(4, dtype=np.int64)
    _lib.repro_score_detected(detected.size, _i64(detected), _i64(out))
    return int(out[0]), int(out[1]), int(out[2]), int(out[3])
