"""Pure-numpy reference implementations of every compiled kernel.

This module is the always-available floor of the backend ladder: each
function here is the *definition* of its kernel's semantics, written as
the same array pipeline the vectorized (PR-2/PR-3) hot paths use.  The
Numba and C backends must be bit-identical to these — the differential
suite in ``tests/test_kernels.py`` asserts it — which is possible
because every kernel is pure integer arithmetic and data movement (or
element-wise float math); none of them re-orders a float reduction.

Keeping the fallback in its own module means a machine with neither
Numba nor a C compiler still runs the ``compiled`` backend tier
correctly (it simply is the vectorized path, re-entered through the
kernel interface).
"""

from __future__ import annotations

import numpy as np


def mmu_scatter_reset(
    touched: np.ndarray,
    entry_counts: np.ndarray,
    entry_writes: np.ndarray,
    entry_socket: np.ndarray,
) -> None:
    """Reset the interval state of the previously-touched entries."""
    entry_counts[touched] = 0
    entry_writes[touched] = 0
    entry_socket[touched] = -1


def mmu_ingest(
    entries: np.ndarray,
    counts: np.ndarray,
    writes: np.ndarray,
    sockets: np.ndarray,
    pages: np.ndarray,
    entry_counts: np.ndarray,
    entry_writes: np.ndarray,
    entry_socket: np.ndarray,
    flags: np.ndarray,
    cumulative_counts: np.ndarray,
    cumulative_writes: np.ndarray,
    accessed_bit: int,
    dirty_bit: int,
) -> None:
    """Fused interval ingest for a strictly-ascending unique page batch.

    Precondition (guaranteed by the caller): every slot of
    ``entry_counts``/``entry_writes`` the batch touches is zero, so
    per-entry accumulation equals assignment of contiguous-run sums.
    """
    keep = np.empty(entries.size, dtype=bool)
    keep[0] = True
    np.not_equal(entries[1:], entries[:-1], out=keep[1:])
    idx = np.flatnonzero(keep)
    if idx.size == entries.size:
        entry_counts[entries] = counts
        entry_writes[entries] = writes
    else:
        entry_counts[entries[idx]] = np.add.reduceat(counts, idx)
        entry_writes[entries[idx]] = np.add.reduceat(writes, idx)
    entry_socket[entries] = sockets
    flags[entries] |= np.uint16(accessed_bit)
    flags[entries[writes > 0]] |= np.uint16(dirty_bit)
    cumulative_counts[pages] += counts
    cumulative_writes[pages] += writes


def node_rle(node: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encoding ``(bounds, values)`` of a node array."""
    change = np.flatnonzero(node[1:] != node[:-1])
    bounds = np.empty(change.size + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = change + 1
    bounds[-1] = node.shape[0]
    values = node[bounds[:-1]].astype(np.int64)
    return bounds, values


def span_majority(
    starts: np.ndarray,
    npages: np.ndarray,
    bounds: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """Majority resident node of many spans over a node RLE (-1 unmapped)."""
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = starts + npages
    lo = np.searchsorted(bounds, starts, side="right") - 1
    hi = np.searchsorted(bounds, ends, side="left")  # runs [lo, hi) overlap
    nruns = np.maximum(hi - lo, 0)
    offs = np.concatenate(([0], np.cumsum(nruns)))
    span_id = np.repeat(np.arange(starts.size), nruns)
    ridx = (
        np.arange(int(offs[-1]), dtype=np.int64)
        - np.repeat(offs[:-1], nruns)
        + np.repeat(lo, nruns)
    )
    weights = np.minimum(bounds[ridx + 1], np.repeat(ends, nruns)) - np.maximum(
        bounds[ridx], np.repeat(starts, nruns)
    )
    nodes = values[ridx]
    mapped = (nodes >= 0) & (weights > 0)
    result = np.full(starts.size, -1, dtype=np.int64)
    if not np.any(mapped):
        return result
    n_nodes = int(nodes[mapped].max()) + 1
    counts = np.bincount(
        span_id[mapped] * n_nodes + nodes[mapped],
        weights=weights[mapped],
        minlength=starts.size * n_nodes,
    ).reshape(starts.size, n_nodes)
    has_mapped = counts.sum(axis=1) > 0
    result[has_mapped] = np.argmax(counts[has_mapped], axis=1)
    return result


def span_entries(
    starts: np.ndarray,
    npages: np.ndarray,
    entry: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique leaf entries of many spans over a dense page->entry map.

    Returns ``(entries, offsets)``; span ``i``'s entries are
    ``entries[offsets[i]:offsets[i+1]]``, ascending (``entry`` is
    non-decreasing within a span because huge mappings are aligned).
    """
    if starts.size == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    bounds = np.concatenate(([0], np.cumsum(npages)))
    total = int(bounds[-1])
    span_id = np.repeat(np.arange(starts.size), npages)
    pages = (
        np.arange(total, dtype=np.int64)
        - np.repeat(bounds[:-1], npages)
        + np.repeat(starts, npages)
    )
    entries = entry[pages]
    first = np.empty(total, dtype=bool)
    first[0] = True
    np.logical_or(
        entries[1:] != entries[:-1], span_id[1:] != span_id[:-1], out=first[1:]
    )
    offsets = np.concatenate(
        ([0], np.cumsum(np.bincount(span_id[first], minlength=starts.size)))
    )
    return entries[first], offsets


def node_accumulate(
    nodes: np.ndarray,
    counts: np.ndarray,
    writes: np.ndarray,
    n_slots: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node access/write sums; slot 0 collects unmapped (-1) pages.

    Slot ``node + 1`` holds node's totals, exactly the shifted layout of
    the PCM bincount path (float64 weighted sums of int64 counts are
    exact below 2**53, so integer accumulation is bit-identical).
    """
    shifted = nodes.astype(np.int64) + 1
    acc = np.bincount(shifted, weights=counts, minlength=n_slots)
    wr = np.bincount(shifted, weights=writes, minlength=n_slots)
    return acc.astype(np.int64), wr.astype(np.int64)


def score_detected(detected: np.ndarray) -> tuple[int, int, int, int]:
    """Fused per-region stats of one scan's detected counts.

    Returns ``(total, min, max, argmax)`` where ``argmax`` is the first
    maximum (numpy's tie-break).  ``total / size`` equals
    ``detected.mean()`` bit-for-bit: the values are small integers, so
    numpy's float64 accumulation is exact regardless of order.
    """
    return (
        int(detected.sum()),
        int(detected.min()),
        int(detected.max()),
        int(np.argmax(detected)),
    )
