"""Compiled hot-path kernels behind ``perfflags.set_backend("compiled")``.

The package resolves one of three implementations at first use, in
decreasing preference:

``numba``
    ``@njit(cache=True)`` loops (:mod:`repro.kernels._numba`), used when
    Numba is importable.  Object code is cached in the shared kernel
    cache directory (``NUMBA_CACHE_DIR`` is pointed there before the
    import) so pool workers and repeat runs skip recompilation.
``cc``
    A C shared object built once with the system compiler and bound via
    ctypes (:mod:`repro.kernels._cc`), used when Numba is absent but a
    C compiler is on ``PATH``.
``numpy``
    The pure-numpy reference implementations
    (:mod:`repro.kernels._fallback`) — always available, making the
    ``compiled`` backend safe to select on any machine.

Set ``REPRO_KERNEL_BACKEND=numba|cc|numpy`` to pin a specific rung (a
pinned rung that fails to load raises instead of falling through); set
``REPRO_KERNEL_CACHE`` to relocate the on-disk cache shared by pool
workers.  All three implementations are bit-identical: kernels perform
only integer arithmetic, data movement, and element-wise float math, so
no float reduction is ever reordered relative to numpy.

Compile/bind time (C build + ctypes load, Numba JIT during
:func:`warmup`) is accounted in :func:`compile_seconds` so the engine
can report the compile-vs-run split in ``PerfStats``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from types import ModuleType

import numpy as np

__all__ = [
    "active_backend",
    "compile_seconds",
    "kernel_cache_dir",
    "mmu_ingest",
    "mmu_scatter_reset",
    "node_accumulate",
    "node_rle",
    "numba_available",
    "numba_version",
    "score_detected",
    "span_entries",
    "span_majority",
    "warmup",
]

_CHOICES = ("numba", "cc", "numpy")

_impl: ModuleType | None = None
_backend: str | None = None
_compile_seconds = 0.0
_warmed = False


def kernel_cache_dir() -> Path:
    """Shared on-disk cache for compiled kernel artifacts.

    Deterministic across processes (override with ``REPRO_KERNEL_CACHE``)
    so every pool worker compiles at most once and the rest reuse the
    cached object code.
    """
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-kernels"


def _load(choice: str) -> ModuleType:
    global _compile_seconds
    start = time.perf_counter()
    if choice == "numba":
        os.environ.setdefault("NUMBA_CACHE_DIR", str(kernel_cache_dir()))
        from . import _numba as mod
    elif choice == "cc":
        from . import _cc as mod

        mod.load(kernel_cache_dir())
    else:
        from . import _fallback as mod
    _compile_seconds += time.perf_counter() - start
    return mod


def _resolve() -> ModuleType:
    global _impl, _backend
    if _impl is not None:
        return _impl
    forced = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
    if forced:
        if forced not in _CHOICES:
            raise ValueError(
                f"REPRO_KERNEL_BACKEND={forced!r} not in {_CHOICES}"
            )
        _impl = _load(forced)
        _backend = forced
        return _impl
    for choice in _CHOICES[:-1]:
        try:
            _impl = _load(choice)
            _backend = choice
            return _impl
        except Exception:  # noqa: BLE001,PERF203 - one-shot rung ladder
            continue
    _impl = _load("numpy")
    _backend = "numpy"
    return _impl


def active_backend() -> str:
    """The resolved kernel implementation: ``numba``/``cc``/``numpy``."""
    _resolve()
    assert _backend is not None
    return _backend


def numba_available() -> bool:
    """Whether Numba is importable (independent of the active backend)."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def numba_version() -> str | None:
    """The installed Numba version, or ``None`` when absent."""
    try:
        import numba
    except ImportError:
        return None
    return getattr(numba, "__version__", "unknown")


def compile_seconds() -> float:
    """Cumulative time this process spent compiling/binding kernels."""
    return _compile_seconds


def warmup() -> float:
    """Force every kernel through its first (compiling) call.

    Numba JIT-compiles lazily on first call; running each kernel once on
    tiny inputs here moves that latency out of measured regions and —
    called before a pool fork — lets workers inherit the compiled
    machine code.  The elapsed time is added to
    :func:`compile_seconds`.  Idempotent after the first call.
    """
    global _compile_seconds, _warmed
    if _warmed:
        return 0.0
    impl = _resolve()
    start = time.perf_counter()
    one = np.array([0], dtype=np.int64)
    impl.mmu_scatter_reset(
        one.copy(),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int8),
    )
    impl.mmu_ingest(
        one.copy(),
        np.ones(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int8),
        one.copy(),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.full(1, -1, dtype=np.int8),
        np.zeros(1, dtype=np.uint16),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        1,
        2,
    )
    bounds, values = impl.node_rle(np.array([0, 0, 1], dtype=np.int16))
    impl.span_majority(one.copy(), np.array([2], dtype=np.int64), bounds, values)
    impl.span_entries(one.copy(), np.array([1], dtype=np.int64), np.arange(2))
    impl.node_accumulate(
        np.array([0], dtype=np.int16),
        np.ones(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        3,
    )
    impl.score_detected(np.array([1, 2], dtype=np.int64))
    elapsed = time.perf_counter() - start
    _compile_seconds += elapsed
    _warmed = True
    return elapsed


def mmu_scatter_reset(touched, entry_counts, entry_writes, entry_socket):
    return _resolve().mmu_scatter_reset(
        touched, entry_counts, entry_writes, entry_socket
    )


def mmu_ingest(
    entries,
    counts,
    writes,
    sockets,
    pages,
    entry_counts,
    entry_writes,
    entry_socket,
    flags,
    cumulative_counts,
    cumulative_writes,
    accessed_bit,
    dirty_bit,
):
    return _resolve().mmu_ingest(
        entries,
        counts,
        writes,
        sockets,
        pages,
        entry_counts,
        entry_writes,
        entry_socket,
        flags,
        cumulative_counts,
        cumulative_writes,
        accessed_bit,
        dirty_bit,
    )


def node_rle(node):
    return _resolve().node_rle(node)


def span_majority(starts, npages, bounds, values):
    return _resolve().span_majority(starts, npages, bounds, values)


def span_entries(starts, npages, entry):
    return _resolve().span_entries(starts, npages, entry)


def node_accumulate(nodes, counts, writes, n_slots):
    return _resolve().node_accumulate(nodes, counts, writes, n_slots)


def score_detected(detected):
    return _resolve().score_detected(detected)
