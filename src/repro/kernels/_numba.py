"""Numba implementations of the compiled kernels.

Importing this module raises ``ImportError`` when Numba is absent; the
dispatcher in :mod:`repro.kernels` catches that and falls through to
the C/ctypes backend or the numpy fallback.  ``NUMBA_CACHE_DIR`` is set
by the dispatcher *before* this import so ``@njit(cache=True)`` object
code lands in the shared kernel cache directory and forked/spawned pool
workers reuse it instead of recompiling.

Every jitted loop mirrors :mod:`repro.kernels._cc` exactly: integer
arithmetic and data movement only, no float reductions, so results are
bit-identical to the numpy fallback by construction.
"""

from __future__ import annotations

import numba
import numpy as np
from numba import njit

NUMBA_VERSION = getattr(numba, "__version__", "unknown")


@njit(cache=True)
def _scatter_reset(touched, entry_counts, entry_writes, entry_socket):
    for i in range(touched.size):
        e = touched[i]
        entry_counts[e] = 0
        entry_writes[e] = 0
        entry_socket[e] = -1


def mmu_scatter_reset(touched, entry_counts, entry_writes, entry_socket):
    """Reset interval state of previously-touched entries."""
    _scatter_reset(touched, entry_counts, entry_writes, entry_socket)


@njit(cache=True)
def _mmu_ingest(
    entries, counts, writes, sockets, pages, entry_counts, entry_writes,
    entry_socket, flags, cumulative_counts, cumulative_writes,
    accessed_bit, dirty_bit,
):
    # Touched slots are zero after the scatter reset, so accumulation
    # equals the fallback's run-sum assignment.
    for i in range(entries.size):
        e = entries[i]
        entry_counts[e] += counts[i]
        entry_writes[e] += writes[i]
        entry_socket[e] = sockets[i]
        f = flags[e] | accessed_bit
        if writes[i] > 0:
            f |= dirty_bit
        flags[e] = f
        cumulative_counts[pages[i]] += counts[i]
        cumulative_writes[pages[i]] += writes[i]


def mmu_ingest(
    entries, counts, writes, sockets, pages, entry_counts, entry_writes,
    entry_socket, flags, cumulative_counts, cumulative_writes,
    accessed_bit, dirty_bit,
):
    """Fused interval ingest for a strictly-ascending unique page batch."""
    _mmu_ingest(
        entries, counts, writes, sockets, pages, entry_counts, entry_writes,
        entry_socket, flags, cumulative_counts, cumulative_writes,
        np.uint16(accessed_bit), np.uint16(dirty_bit),
    )


@njit(cache=True)
def _node_rle(node):
    n = node.shape[0]
    runs = 1
    for i in range(1, n):
        if node[i] != node[i - 1]:
            runs += 1
    bounds = np.empty(runs + 1, dtype=np.int64)
    values = np.empty(runs, dtype=np.int64)
    bounds[0] = 0
    values[0] = node[0]
    r = 0
    for i in range(1, n):
        if node[i] != node[i - 1]:
            r += 1
            bounds[r] = i
            values[r] = node[i]
    bounds[r + 1] = n
    return bounds, values


def node_rle(node):
    """Run-length encoding ``(bounds, values)`` of a node array."""
    return _node_rle(node)


@njit(cache=True)
def _span_majority(starts, npages, bounds, values, n_nodes):
    nspans = starts.size
    nbounds = bounds.size
    scratch = np.empty(n_nodes, dtype=np.int64)
    out = np.empty(nspans, dtype=np.int64)
    for s in range(nspans):
        start = starts[s]
        end = start + npages[s]
        scratch[:] = 0
        total = 0
        r = np.searchsorted(bounds, start, side="right") - 1
        if r < 0:
            r = 0
        while r + 1 < nbounds and bounds[r] < end:
            lo = bounds[r] if bounds[r] > start else start
            hi = bounds[r + 1] if bounds[r + 1] < end else end
            node = values[r]
            if hi > lo and node >= 0:
                scratch[node] += hi - lo
                total += hi - lo
            r += 1
        if total == 0:
            out[s] = -1
            continue
        best = 0
        for v in range(1, n_nodes):
            if scratch[v] > scratch[best]:
                best = v
        out[s] = best
    return out


def span_majority(starts, npages, bounds, values):
    """Majority resident node of many spans over a node RLE."""
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    mapped = values >= 0
    if not np.any(mapped):
        return np.full(starts.size, -1, dtype=np.int64)
    n_nodes = int(values[mapped].max()) + 1
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    npages = np.ascontiguousarray(npages, dtype=np.int64)
    return _span_majority(starts, npages, bounds, values, n_nodes)


@njit(cache=True)
def _span_entries(starts, npages, entry, out_entries, out_counts):
    k = 0
    for s in range(starts.size):
        prev = np.int64(-1)
        emitted = 0
        end = starts[s] + npages[s]
        for p in range(starts[s], end):
            e = entry[p]
            if emitted == 0 or e != prev:
                out_entries[k] = e
                k += 1
                emitted += 1
                prev = e
        out_counts[s] = emitted
    return k


def span_entries(starts, npages, entry):
    """Unique leaf entries of many spans; ``(entries, offsets)``."""
    if starts.size == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    npages = np.ascontiguousarray(npages, dtype=np.int64)
    total = int(npages.sum())
    out_entries = np.empty(total, dtype=np.int64)
    out_counts = np.empty(starts.size, dtype=np.int64)
    k = int(_span_entries(starts, npages, entry, out_entries, out_counts))
    offsets = np.empty(starts.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(out_counts, out=offsets[1:])
    return out_entries[:k].copy(), offsets


@njit(cache=True)
def _node_accumulate(nodes, counts, writes, acc, wr):
    for i in range(nodes.size):
        slot = np.int64(nodes[i]) + 1
        acc[slot] += counts[i]
        wr[slot] += writes[i]


def node_accumulate(nodes, counts, writes, n_slots):
    """Per-node int64 access/write sums (slot 0 = unmapped)."""
    nodes = np.ascontiguousarray(nodes, dtype=np.int16)
    acc = np.zeros(n_slots, dtype=np.int64)
    wr = np.zeros(n_slots, dtype=np.int64)
    _node_accumulate(nodes, counts, writes, acc, wr)
    return acc, wr


@njit(cache=True)
def _score_detected(detected):
    total = np.int64(0)
    mn = detected[0]
    mx = detected[0]
    arg = 0
    for i in range(detected.size):
        d = detected[i]
        total += d
        if d < mn:
            mn = d
        if d > mx:
            mx = d
            arg = i
    return total, mn, mx, arg


def score_detected(detected):
    """Fused ``(sum, min, max, argmax)`` of detected counts."""
    detected = np.ascontiguousarray(detected, dtype=np.int64)
    total, mn, mx, arg = _score_detected(detected)
    return int(total), int(mn), int(mx), int(arg)
