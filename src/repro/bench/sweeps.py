"""Importable sweep-apply functions for service-distributed sweeps.

A :class:`~repro.service.protocol.SweepSpec` names its branch-point
function as ``"module:function"`` so *workers* — separate processes,
possibly separate machines — can resolve it with a plain import.
Benchmark scripts under ``benchmarks/`` are not importable packages, so
any apply function a distributed sweep uses lives here instead; the
benchmarks import it back rather than keeping a private copy.

An apply function takes ``(engine, params)`` and mutates the engine's
configuration at the branch interval — after the shared warmup, before
the divergent tail.  It must be deterministic in ``params`` alone: the
same function is applied to a cold-run engine and to a snapshot fork,
and the two must produce bit-identical results.
"""

from __future__ import annotations


def apply_tau(engine, params: dict) -> None:
    """Install one (tau_m, tau_s) sweep point's thresholds at the branch.

    The profiler tracks its *current* merge threshold separately from
    the configured one (regions formed pre-branch used the defaults),
    so both the config and the live value move together.
    """
    cfg = engine.profiler.config
    cfg.tau_m = params["tau_m"]
    cfg.tau_s = params["tau_s"]
    engine.profiler._tau_m_current = params["tau_m"]


__all__ = ["apply_tau"]
