"""Bench trajectory: ``BENCH_history.jsonl`` append-only records.

``BENCH_perf.json`` is a snapshot — every bench run overwrites it, so
the repo has no memory of whether a commit made the benchmarks faster
or slower.  This module gives it a trajectory: every successful
``bench_main`` invocation appends exactly one timestamped JSONL record
(driver, profile, backend, workers, wall seconds, and the flattened
numeric metrics of the ``BENCH_perf.json`` block the run refreshed),
and ``repro diff --bench`` reads the accumulated history to call
regressions across entries.

The history lives next to ``BENCH_perf.json`` (the driver directory's
parent) by default; ``REPRO_BENCH_HISTORY`` overrides the path, or
disables the appender entirely with ``off``/``none``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import ConfigError

#: Record schema version; bump when a field changes meaning.
HISTORY_VERSION = 1

#: Default file name, next to BENCH_perf.json.
HISTORY_NAME = "BENCH_history.jsonl"

#: Environment override: a path, or ``off``/``none`` to disable.
HISTORY_ENV = "REPRO_BENCH_HISTORY"


def resolve_history_path(default_dir) -> Path | None:
    """Where history records go (``None`` when disabled via env)."""
    raw = os.environ.get(HISTORY_ENV)
    if raw is not None:
        lowered = raw.strip().lower()
        if lowered in ("off", "none", "disabled", "disable", ""):
            return None
        return Path(raw)
    return Path(default_dir) / HISTORY_NAME


def flatten_metrics(payload, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict as dotted-path keys."""
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            out.update(flatten_metrics(value, f"{prefix}{key}."))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        out[prefix[:-1]] = float(payload)
    return out


def append_record(
    path,
    driver: str,
    profile: str,
    seconds: float,
    backend: str = "",
    workers: int = 1,
    metrics: dict | None = None,
) -> dict:
    """Append one record; returns the dict that was written."""
    now = time.time()
    record = {
        "v": HISTORY_VERSION,
        "ts": now,
        "iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "driver": driver,
        "profile": profile,
        "backend": backend,
        "workers": workers,
        "seconds": seconds,
        "metrics": dict(sorted((metrics or {}).items())),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True,
                            separators=(",", ":")) + "\n")
    return record


def validate_history_record(record) -> list[str]:
    """Schema problems with one decoded record ([] when well-formed)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    if record.get("v") != HISTORY_VERSION:
        problems.append(f"version {record.get('v')!r} != {HISTORY_VERSION}")
    for key, types in (("ts", (int, float)), ("iso", str), ("driver", str),
                       ("profile", str), ("seconds", (int, float)),
                       ("workers", int)):
        if not isinstance(record.get(key), types):
            problems.append(f"missing/mistyped {key}")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or any(
        not isinstance(v, (int, float)) for v in metrics.values()
    ):
        problems.append("metrics must be a dict of numbers")
    return problems


def read_history(path) -> list[dict]:
    """Well-formed records of one history file, in append order."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(
            f"no bench history at {path} — run a benchmarks/bench_*.py "
            f"driver to start one"
        )
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from an interrupted append
            if not validate_history_record(record):
                records.append(record)
    return records


__all__ = [
    "HISTORY_ENV",
    "HISTORY_NAME",
    "HISTORY_VERSION",
    "append_record",
    "flatten_metrics",
    "read_history",
    "resolve_history_path",
    "validate_history_record",
]
