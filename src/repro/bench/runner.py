"""Experiment runners: one solution, or a workload x solution matrix."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.scaling import BenchProfile
from repro.core.baselines import make_engine
from repro.errors import ConfigError
from repro.metrics.report import Table, normalize
from repro.sim.engine import SimulationResult


def run_solution(
    solution: str,
    workload: str,
    profile: BenchProfile,
    intervals: int | None = None,
    collect_quality: bool = False,
    **engine_kwargs,
) -> SimulationResult:
    """Run one solution on one workload under a bench profile."""
    engine = make_engine(
        solution,
        workload,
        scale=profile.scale,
        seed=profile.seed,
        collect_quality=collect_quality,
        **engine_kwargs,
    )
    return engine.run(intervals if intervals is not None else profile.intervals_for(workload))


@dataclass
class MatrixResult:
    """Results of a workload x solution sweep.

    Attributes:
        results: ``results[workload][solution]`` -> SimulationResult.
        baseline: solution used for normalization.
    """

    results: dict[str, dict[str, SimulationResult]]
    baseline: str = "first-touch"

    def total_times(self, workload: str) -> dict[str, float]:
        return {s: r.total_time for s, r in self.results[workload].items()}

    def normalized(self, workload: str) -> dict[str, float]:
        """Execution times normalized to the baseline (Fig. 4's y-axis)."""
        return normalize(self.total_times(workload), self.baseline)

    def table(self, title: str = "Normalized execution time") -> Table:
        """Text table with one row per workload, normalized per solution."""
        workloads = list(self.results)
        if not workloads:
            raise ConfigError("empty matrix")
        solutions = list(self.results[workloads[0]])
        table = Table(title=title, columns=["workload"] + solutions)
        for workload in workloads:
            norm = self.normalized(workload)
            table.add_row(workload, *[f"{norm[s]:.3f}" for s in solutions])
        return table

    def geomean_speedup(self, solution: str) -> float:
        """Geometric-mean speedup of ``solution`` over the baseline."""
        product = 1.0
        n = 0
        for workload in self.results:
            norm = self.normalized(workload)
            if norm[solution] <= 0:
                raise ConfigError(f"non-positive normalized time for {solution}")
            product *= 1.0 / norm[solution]
            n += 1
        return product ** (1.0 / n) if n else 1.0


def run_matrix(
    workloads: list[str],
    solutions: list[str],
    profile: BenchProfile,
    baseline: str = "first-touch",
    intervals: int | None = None,
) -> MatrixResult:
    """Run every solution on every workload (Fig. 4 / Fig. 5 driver)."""
    if baseline not in solutions:
        raise ConfigError(f"baseline {baseline!r} must be one of the solutions")
    results: dict[str, dict[str, SimulationResult]] = {}
    for workload in workloads:
        results[workload] = {}
        for solution in solutions:
            results[workload][solution] = run_solution(
                solution, workload, profile, intervals=intervals
            )
    return MatrixResult(results=results, baseline=baseline)
