"""Experiment runners: one solution, or a workload x solution matrix.

The matrix runner supports three independent accelerations, all
result-preserving:

* a shared :class:`~repro.sim.tracecache.TraceCache` so each workload's
  batch stream is synthesized once instead of once per solution;
* ``workers=K`` — a ``ProcessPoolExecutor`` fans the matrix cells out
  across processes.  Every cell builds its own engine from
  ``(solution, workload, profile)`` with fully deterministic seeding, and
  cells are keyed (not ordered) on collection, so ``workers=4`` is
  bit-identical to ``workers=1`` (asserted by tests);
* the vectorized hot paths (see :mod:`repro.perfflags`), inherited by
  forked workers.

Fault injection composes with all three: each cell constructs a *fresh*
injector from ``(fault_rate, fault_seed)``, so runs never share mutable
injector state across processes or cells.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bench.scaling import BenchProfile
from repro.core.baselines import make_engine
from repro.errors import ConfigError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.metrics.report import Table, normalize
from repro.sim.engine import SimulationResult

if TYPE_CHECKING:
    from repro.sim.tracecache import TraceCache

#: Process-wide default for ``run_matrix(workers=None)``; set by the
#: benchmark CLI's ``--workers`` flag (see :mod:`repro.bench.cli`).
_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> None:
    """Set the worker count ``run_matrix`` uses when not told explicitly."""
    global _DEFAULT_WORKERS
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    _DEFAULT_WORKERS = int(workers)


def default_workers() -> int:
    return _DEFAULT_WORKERS


def _make_injector(fault_rate: float, fault_seed: int) -> FaultInjector | None:
    if fault_rate <= 0.0:
        return None
    return FaultInjector(FaultConfig.uniform(fault_rate), seed=fault_seed)


def run_solution(
    solution: str,
    workload: str,
    profile: BenchProfile,
    intervals: int | None = None,
    collect_quality: bool = False,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    trace_cache: "TraceCache | None" = None,
    **engine_kwargs,
) -> SimulationResult:
    """Run one solution on one workload under a bench profile.

    Args:
        fault_rate: uniform injected-fault rate; 0 disables injection
            (and is bit-identical to no injector at all).
        fault_seed: seed of the per-run injector — every run builds a
            fresh injector, so fault sequences are reproducible and
            never shared between runs.
        trace_cache: optional shared batch-stream cache.
    """
    engine = make_engine(
        solution,
        workload,
        scale=profile.scale,
        seed=profile.seed,
        collect_quality=collect_quality,
        injector=_make_injector(fault_rate, fault_seed),
        trace_cache=trace_cache,
        **engine_kwargs,
    )
    return engine.run(intervals if intervals is not None else profile.intervals_for(workload))


@dataclass
class MatrixResult:
    """Results of a workload x solution sweep.

    Attributes:
        results: ``results[workload][solution]`` -> SimulationResult.
        baseline: solution used for normalization.
    """

    results: dict[str, dict[str, SimulationResult]]
    baseline: str = "first-touch"

    def total_times(self, workload: str) -> dict[str, float]:
        return {s: r.total_time for s, r in self.results[workload].items()}

    def normalized(self, workload: str) -> dict[str, float]:
        """Execution times normalized to the baseline (Fig. 4's y-axis)."""
        return normalize(self.total_times(workload), self.baseline)

    def table(self, title: str = "Normalized execution time") -> Table:
        """Text table with one row per workload, normalized per solution."""
        workloads = list(self.results)
        if not workloads:
            raise ConfigError("empty matrix")
        solutions = list(self.results[workloads[0]])
        table = Table(title=title, columns=["workload"] + solutions)
        for workload in workloads:
            norm = self.normalized(workload)
            table.add_row(workload, *[f"{norm[s]:.3f}" for s in solutions])
        return table

    def geomean_speedup(self, solution: str) -> float:
        """Geometric-mean speedup of ``solution`` over the baseline.

        Computed as ``exp(mean(log(speedup)))`` — the running-product
        form underflows to zero once enough per-workload speedups sit
        below one (e.g. 0.5 ** 400 == 0.0), whereas log-space stays
        exact to float precision at any matrix size.
        """
        logs = []
        for workload in self.results:
            norm = self.normalized(workload)
            if norm[solution] <= 0:
                raise ConfigError(f"non-positive normalized time for {solution}")
            logs.append(math.log(1.0 / norm[solution]))
        if not logs:
            return 1.0
        return math.exp(math.fsum(logs) / len(logs))


# -- parallel execution ----------------------------------------------------

#: Per-worker-process trace cache, created lazily inside the worker so
#: sibling cells in the same process share synthesized streams.
_worker_cache: "TraceCache | None" = None


def _run_cell(args: tuple) -> tuple[str, str, SimulationResult]:
    """Executes one matrix cell in a worker process (must be picklable)."""
    global _worker_cache
    workload, solution, profile, intervals, fault_rate, fault_seed, use_cache, recovery = args
    if use_cache and _worker_cache is None:
        from repro.sim.tracecache import TraceCache

        _worker_cache = TraceCache()
    result = run_solution(
        solution,
        workload,
        profile,
        intervals=intervals,
        fault_rate=fault_rate,
        fault_seed=fault_seed,
        trace_cache=_worker_cache if use_cache else None,
        recovery=recovery,
    )
    return workload, solution, result


def run_matrix(
    workloads: list[str],
    solutions: list[str],
    profile: BenchProfile,
    baseline: str = "first-touch",
    intervals: int | None = None,
    workers: int | None = None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    trace_cache: "TraceCache | None" = None,
    use_cache: bool = True,
    recovery: bool = True,
) -> MatrixResult:
    """Run every solution on every workload (Fig. 4 / Fig. 5 driver).

    Args:
        workers: processes to fan cells out over; ``None`` uses the CLI
            default (see :func:`set_default_workers`), 1 runs serial in
            this process.  Parallel results are keyed on
            ``(workload, solution)``, never on completion order, and each
            cell seeds deterministically — ``workers=K`` is bit-identical
            to serial for any K.
        fault_rate / fault_seed: per-cell fault injection (each cell gets
            a fresh injector with exactly this seed).
        trace_cache: cache for the serial path; ``None`` builds a private
            one.  Parallel workers always use a per-process cache.
        use_cache: ``False`` disables batch-stream memoization entirely
            (the pre-optimization behaviour; the perf-smoke benchmark's
            baseline arm).
    """
    if baseline not in solutions:
        raise ConfigError(f"baseline {baseline!r} must be one of the solutions")
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")

    cells = [
        (workload, solution, profile, intervals, fault_rate, fault_seed, use_cache, recovery)
        for workload in workloads
        for solution in solutions
    ]
    collected: dict[tuple[str, str], SimulationResult] = {}
    if workers == 1:
        if not use_cache:
            trace_cache = None
        elif trace_cache is None:
            from repro.sim.tracecache import TraceCache

            trace_cache = TraceCache()
        for workload, solution, *_ in cells:
            collected[(workload, solution)] = run_solution(
                solution,
                workload,
                profile,
                intervals=intervals,
                fault_rate=fault_rate,
                fault_seed=fault_seed,
                trace_cache=trace_cache,
                recovery=recovery,
            )
    else:
        import multiprocessing as mp

        # fork (where available) keeps startup cheap and inherits the
        # process-global perfflags switch; spawn re-imports with defaults.
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method) if method else mp.get_context()
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            for workload, solution, result in pool.map(_run_cell, cells):
                collected[(workload, solution)] = result

    results: dict[str, dict[str, SimulationResult]] = {}
    for workload in workloads:
        results[workload] = {}
        for solution in solutions:
            results[workload][solution] = collected[(workload, solution)]
    return MatrixResult(results=results, baseline=baseline)
