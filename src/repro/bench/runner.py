"""Experiment runners: one solution, or a workload x solution matrix.

The matrix runner supports three independent accelerations, all
result-preserving:

* a shared :class:`~repro.sim.tracecache.TraceCache` so each workload's
  batch stream is synthesized once instead of once per solution;
* ``workers=K`` — a ``ProcessPoolExecutor`` fans the matrix cells out
  across processes.  Every cell builds its own engine from
  ``(solution, workload, profile)`` with fully deterministic seeding, and
  cells are keyed (not ordered) on collection, so ``workers=4`` is
  bit-identical to ``workers=1`` (asserted by tests);
* the vectorized hot paths (see :mod:`repro.perfflags`), inherited by
  forked workers.

Fault injection composes with all three: each cell constructs a *fresh*
injector from ``(fault_rate, fault_seed)``, so runs never share mutable
injector state across processes or cells.
"""

from __future__ import annotations

import copy
import math
import os
import pickle
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from queue import Empty
from typing import TYPE_CHECKING, Callable

from repro import kernels, perfflags
from repro.bench.scaling import BenchProfile
from repro.core.baselines import make_engine
from repro.errors import ConfigError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.metrics.perfstats import CacheStats, PerfStats
from repro.metrics.report import Table, normalize
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.sim.snapshot import SnapshotCache, capture_engine

if TYPE_CHECKING:
    from repro.obs.context import ObsConfig, ObsContext
    from repro.service.cache import ResultCache
    from repro.sim.tracecache import TraceCache

#: Process-wide default for ``run_matrix(workers=None)``; set by the
#: benchmark CLI's ``--workers`` flag (see :mod:`repro.bench.cli`).
_DEFAULT_WORKERS = 1

#: Process-wide default for ``run_sweep(use_snapshots=None)``; set by the
#: benchmark CLI's ``--snapshots/--no-snapshots`` flag.
_DEFAULT_SNAPSHOTS = True


def set_default_workers(workers: int) -> None:
    """Set the worker count ``run_matrix`` uses when not told explicitly."""
    global _DEFAULT_WORKERS
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    _DEFAULT_WORKERS = int(workers)


def default_workers() -> int:
    return _DEFAULT_WORKERS


def set_default_snapshots(enabled: bool) -> None:
    """Set whether ``run_sweep`` forks shared warmups by default."""
    global _DEFAULT_SNAPSHOTS
    _DEFAULT_SNAPSHOTS = bool(enabled)


def default_snapshots() -> bool:
    return _DEFAULT_SNAPSHOTS


# -- live stream plumbing ----------------------------------------------------
#
# When the resolved collector has streaming sinks attached, cells feed
# them *during* the run: serial cells borrow the collector's sinks
# directly; pool workers attach a RelaySink onto a bounded mp queue the
# parent drains between completions.  None of this touches the final
# export path — results still travel back as ObsData and are absorbed
# exactly once, so serial==pooled collector identity is preserved.

#: Streaming collector of the innermost active runner (parent process).
_STREAM_COLLECTOR: "ObsContext | None" = None

#: Relay queue installed pre-fork so workers inherit it.
_RELAY_QUEUE = None

#: True inside pool worker processes (set by the pool initializer); a
#: forked worker also inherits ``_STREAM_COLLECTOR``, and this flag is
#: what stops it from writing to the parent's sink objects directly.
_IN_POOL_WORKER = False

#: Bounded relay depth (batches, one per worker interval-flush).  A full
#: queue drops the batch and counts it — backpressure never blocks a
#: worker's simulation.
RELAY_QUEUE_MAXSIZE = 256


def _pool_worker_init() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


@contextmanager
def _stream_collector(collector: "ObsContext | None"):
    """Install ``collector`` as the streaming target for nested cells."""
    global _STREAM_COLLECTOR
    if collector is None or not collector.stream_sinks:
        yield
        return
    prev = _STREAM_COLLECTOR
    _STREAM_COLLECTOR = collector
    try:
        yield
    finally:
        _STREAM_COLLECTOR = prev


def _drain_relay(queue, collector: "ObsContext") -> None:
    """Forward every queued worker batch onto the collector's sinks."""
    while True:
        try:
            batch = queue.get_nowait()
        except (Empty, OSError, ValueError):
            return
        collector.relay_lines(batch)


def _close_cell_stream(ctx: "ObsContext | None") -> None:
    """Final flush for one cell's stream (no ``end`` — that is the
    top-level publisher's to write, exactly once per stream)."""
    if ctx is not None:
        ctx.stream_close(end_record=False)


def _make_injector(fault_rate: float, fault_seed: int) -> FaultInjector | None:
    if fault_rate <= 0.0:
        return None
    return FaultInjector(FaultConfig.uniform(fault_rate), seed=fault_seed)


def _resolve_collector(obs) -> "ObsContext | None":
    """Resolve a runner's ``obs`` argument to a collector context.

    ``"default"`` (the parameter default) means the process-wide context
    installed by the CLI's ``--obs`` flag (``None`` when observability is
    off); an explicit ``None`` disables collection even when a default
    collector is installed (the perf-smoke baseline arm relies on this);
    an :class:`~repro.obs.context.ObsContext` is used as-is.
    """
    if isinstance(obs, str):
        if obs != "default":
            raise ConfigError(f"obs must be 'default', None, or an ObsContext, got {obs!r}")
        from repro.obs.context import default_context

        return default_context()
    return obs


def _cell_obs(config: "ObsConfig | None", label: str) -> "ObsContext | None":
    """Fresh private context for one run, or ``None`` when obs is off.

    Every cell — serial or in a pool worker — records into its own
    context; the engine snapshots it onto ``SimulationResult.obs`` and
    the parent collector absorbs each snapshot exactly once, so worker
    fan-out never double-counts and Perfetto keeps one track per run.
    """
    if config is None:
        return None
    from repro.obs.context import ObsContext

    ctx = ObsContext(config, label=label)
    if getattr(config, "stream", False):
        if _IN_POOL_WORKER:
            if _RELAY_QUEUE is not None:
                from repro.obs.sinks import RelaySink

                ctx.add_sink(RelaySink(_RELAY_QUEUE), owned=True)
        elif _STREAM_COLLECTOR is not None:
            for sink in _STREAM_COLLECTOR.stream_sinks:
                ctx.add_sink(sink, owned=False)
    return ctx


def run_solution(
    solution: str,
    workload: str,
    profile: BenchProfile,
    intervals: int | None = None,
    collect_quality: bool = False,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    trace_cache: "TraceCache | None" = None,
    obs="default",
    **engine_kwargs,
) -> SimulationResult:
    """Run one solution on one workload under a bench profile.

    Args:
        fault_rate: uniform injected-fault rate; 0 disables injection
            (and is bit-identical to no injector at all).
        fault_seed: seed of the per-run injector — every run builds a
            fresh injector, so fault sequences are reproducible and
            never shared between runs.
        trace_cache: optional shared batch-stream cache.
        obs: observability: ``"default"`` uses the process-wide collector
            (off unless the CLI installed one), ``None`` disables, an
            :class:`~repro.obs.context.ObsContext` collects into that
            context, an :class:`~repro.obs.context.ObsConfig` records
            into a private context returned on ``result.obs`` only (the
            pool workers' mode).  Observability never changes simulated
            results (bit-identity is test-enforced).
    """
    from_config = False
    if obs is not None and not isinstance(obs, str):
        from repro.obs.context import ObsConfig

        from_config = isinstance(obs, ObsConfig)
    collector = None if from_config else _resolve_collector(obs)
    config = obs if from_config else (collector.config if collector is not None else None)
    with _stream_collector(collector):
        child = _cell_obs(config, label=f"{workload}/{solution}")
        engine = make_engine(
            solution,
            workload,
            scale=profile.scale,
            seed=profile.seed,
            collect_quality=collect_quality,
            injector=_make_injector(fault_rate, fault_seed),
            trace_cache=trace_cache,
            obs=child,
            **engine_kwargs,
        )
        result = engine.run(
            intervals if intervals is not None else profile.intervals_for(workload)
        )
        _close_cell_stream(child)
    if collector is not None and result.obs is not None:
        collector.absorb(result.obs)
    return result


@dataclass
class MatrixResult:
    """Results of a workload x solution sweep.

    Attributes:
        results: ``results[workload][solution]`` -> SimulationResult.
        baseline: solution used for normalization.
        perf: host-side stats merged across every cell — phase times and
            samples summed, and each cell's trace-cache counters recorded
            as the *delta* its run contributed (so a cache shared by
            sibling cells in one process is not double-counted).  With
            ``workers=K`` this is how worker-side counters survive the
            process boundary instead of being dropped.
    """

    results: dict[str, dict[str, SimulationResult]]
    baseline: str = "first-touch"
    perf: PerfStats | None = None

    def total_times(self, workload: str) -> dict[str, float]:
        return {s: r.total_time for s, r in self.results[workload].items()}

    def normalized(self, workload: str) -> dict[str, float]:
        """Execution times normalized to the baseline (Fig. 4's y-axis)."""
        return normalize(self.total_times(workload), self.baseline)

    def table(self, title: str = "Normalized execution time") -> Table:
        """Text table with one row per workload, normalized per solution."""
        workloads = list(self.results)
        if not workloads:
            raise ConfigError("empty matrix")
        solutions = list(self.results[workloads[0]])
        table = Table(title=title, columns=["workload"] + solutions)
        for workload in workloads:
            norm = self.normalized(workload)
            table.add_row(workload, *[f"{norm[s]:.3f}" for s in solutions])
        return table

    def geomean_speedup(self, solution: str) -> float:
        """Geometric-mean speedup of ``solution`` over the baseline.

        Computed as ``exp(mean(log(speedup)))`` — the running-product
        form underflows to zero once enough per-workload speedups sit
        below one (e.g. 0.5 ** 400 == 0.0), whereas log-space stays
        exact to float precision at any matrix size.
        """
        logs = []
        for workload in self.results:
            norm = self.normalized(workload)
            if norm[solution] <= 0:
                raise ConfigError(f"non-positive normalized time for {solution}")
            logs.append(math.log(1.0 / norm[solution]))
        if not logs:
            return 1.0
        return math.exp(math.fsum(logs) / len(logs))


# -- parallel execution ----------------------------------------------------

#: Per-worker-process trace cache, created lazily inside the worker so
#: sibling cells in the same process share synthesized streams.
_worker_cache: "TraceCache | None" = None


def _run_cell(args: tuple) -> tuple[str, str, SimulationResult]:
    """Executes one matrix cell in a worker process (must be picklable)."""
    global _worker_cache
    (workload, solution, profile, intervals, fault_rate, fault_seed,
     use_cache, recovery, obs_config) = args
    if use_cache and _worker_cache is None:
        from repro.sim.tracecache import TraceCache

        _worker_cache = TraceCache()
    before = _worker_cache.stats() if use_cache else None
    result = run_solution(
        solution,
        workload,
        profile,
        intervals=intervals,
        fault_rate=fault_rate,
        fault_seed=fault_seed,
        trace_cache=_worker_cache if use_cache else None,
        recovery=recovery,
        obs=obs_config,
    )
    if use_cache and result.perf is not None:
        # The per-process cache is shared by every cell this worker runs;
        # report this cell's *contribution* so the parent can sum cells
        # without double counting.
        result.perf.cache = _worker_cache.stats().delta(before)
    return workload, solution, result


def run_matrix(
    workloads: list[str],
    solutions: list[str],
    profile: BenchProfile,
    baseline: str = "first-touch",
    intervals: int | None = None,
    workers: int | None = None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    trace_cache: "TraceCache | None" = None,
    use_cache: bool = True,
    recovery: bool = True,
    result_cache: "ResultCache | None" = None,
    obs="default",
) -> MatrixResult:
    """Run every solution on every workload (Fig. 4 / Fig. 5 driver).

    Args:
        workers: processes to fan cells out over; ``None`` uses the CLI
            default (see :func:`set_default_workers`), 1 runs serial in
            this process.  Parallel results are keyed on
            ``(workload, solution)``, never on completion order, and each
            cell seeds deterministically — ``workers=K`` is bit-identical
            to serial for any K.
        fault_rate / fault_seed: per-cell fault injection (each cell gets
            a fresh injector with exactly this seed).
        trace_cache: cache for the serial path; ``None`` builds a private
            one.  Parallel workers always use a per-process cache.
        use_cache: ``False`` disables batch-stream memoization entirely
            (the pre-optimization behaviour; the perf-smoke benchmark's
            baseline arm).
        result_cache: optional on-disk
            :class:`~repro.service.cache.ResultCache` (the sweep
            service's): cells whose content address is already stored are
            served from disk instead of simulating, and freshly computed
            cells are published back.  Cached cells carry no ``perf``/
            ``obs`` (they describe the run that computed them), so
            aggregates never double-count.  Because cell execution is
            deterministic in its content address, the assembled matrix
            is bit-identical with or without the cache.
        obs: as in :func:`run_solution`; every cell records into a fresh
            private context and the collector absorbs each cell's data
            exactly once, serial and pooled alike.
    """
    if baseline not in solutions:
        raise ConfigError(f"baseline {baseline!r} must be one of the solutions")
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    collector = _resolve_collector(obs)
    obs_config = collector.config if collector is not None else None

    collected: dict[tuple[str, str], SimulationResult] = {}
    cell_keys: dict[tuple[str, str], str] = {}
    if result_cache is not None:
        from repro.service.cache import cell_key
        from repro.service.protocol import JobSpec

        cache_spec = JobSpec(
            workloads=tuple(workloads), solutions=tuple(solutions),
            profile=profile, intervals=intervals, baseline=baseline,
            fault_rate=fault_rate, fault_seed=fault_seed, recovery=recovery,
        )
        for workload in workloads:
            for solution in solutions:
                key = cell_key(cache_spec, workload, solution)
                cell_keys[(workload, solution)] = key
                hit = result_cache.get(key)
                if hit is not None:
                    collected[(workload, solution)] = hit
    cached_coords = frozenset(collected)

    cells = [
        (workload, solution, profile, intervals, fault_rate, fault_seed,
         use_cache, recovery, obs_config)
        for workload in workloads
        for solution in solutions
        if (workload, solution) not in cached_coords
    ]
    if workers == 1:
        if not use_cache:
            trace_cache = None
        elif trace_cache is None:
            from repro.sim.tracecache import TraceCache

            trace_cache = TraceCache()
        with _stream_collector(collector):
            for workload, solution, *_ in cells:
                before = trace_cache.stats() if trace_cache is not None else None
                result = run_solution(
                    solution,
                    workload,
                    profile,
                    intervals=intervals,
                    fault_rate=fault_rate,
                    fault_seed=fault_seed,
                    trace_cache=trace_cache,
                    recovery=recovery,
                    obs=obs_config,
                )
                if trace_cache is not None and result.perf is not None:
                    result.perf.cache = trace_cache.stats().delta(before)
                collected[(workload, solution)] = result
    else:
        for workload, solution, result in _pool_map(
            _run_cell, cells, workers, collector=collector
        ):
            collected[(workload, solution)] = result

    if result_cache is not None:
        for coords, result in collected.items():
            if coords not in cached_coords:
                result_cache.put(cell_keys[coords], result)

    if collector is not None:
        for result in collected.values():
            if result.obs is not None:
                collector.absorb(result.obs)

    results: dict[str, dict[str, SimulationResult]] = {}
    for workload in workloads:
        results[workload] = {}
        for solution in solutions:
            results[workload][solution] = collected[(workload, solution)]
    return MatrixResult(
        results=results, baseline=baseline, perf=_aggregate_perf(collected.values())
    )


def _aggregate_perf(results) -> PerfStats | None:
    """Merge per-cell perf stats (cache counters are per-cell deltas)."""
    merged: PerfStats | None = None
    for result in results:
        if result.perf is None:
            continue
        merged = result.perf if merged is None else merged.merge(result.perf)
    return merged


# -- shared-warmup sweeps ---------------------------------------------------


@dataclass(frozen=True)
class SweepVariant:
    """One cell of a parameter sweep.

    Attributes:
        label: unique name of the cell (e.g. ``"tau_m=0.5"``).
        params: knob values handed to the sweep's apply function at the
            branch point.  Must be picklable (plain dicts of scalars).
    """

    label: str
    params: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    """Results of one shared-warmup parameter sweep.

    Attributes:
        results: ``results[label]`` -> SimulationResult (full runs: the
            records cover warmup + divergent intervals alike).
        warmup_intervals: length of the shared prefix.
        perf: host-side stats merged across variants; ``perf.snapshots``
            carries the snapshot-cache counters this sweep contributed.
    """

    results: dict[str, SimulationResult]
    warmup_intervals: int
    perf: PerfStats | None = None


def _run_variant_cold(
    solution: str,
    workload: str,
    profile: BenchProfile,
    params: dict,
    apply_fn: Callable,
    warmup_intervals: int,
    rest: int,
    fault_rate: float,
    fault_seed: int,
    collect_quality: bool,
    trace_cache: "TraceCache | None",
    engine_kwargs: dict,
    obs_config: "ObsConfig | None" = None,
    obs_label: str = "",
) -> SimulationResult:
    """One sweep cell from scratch: warm up, branch, finish."""
    # Engines mutate config objects (interval tracking, branch knobs); a
    # shared kwargs value must not leak one cell's mutations into the next.
    engine_kwargs = copy.deepcopy(engine_kwargs)
    engine = make_engine(
        solution,
        workload,
        scale=profile.scale,
        seed=profile.seed,
        collect_quality=collect_quality,
        injector=_make_injector(fault_rate, fault_seed),
        trace_cache=trace_cache,
        obs=_cell_obs(obs_config, label=obs_label),
        **engine_kwargs,
    )
    for _ in range(warmup_intervals):
        engine.step()
    apply_fn(engine, params)
    result = engine.run(rest)
    _close_cell_stream(engine.obs)
    return result


def _run_cold_cell(args: tuple) -> tuple[str, SimulationResult]:
    """Cold sweep cell in a worker process (must be picklable)."""
    global _worker_cache
    (solution, workload, profile, label, params, apply_fn, warmup, rest,
     fault_rate, fault_seed, collect_quality, engine_kwargs, obs_config) = args
    if _worker_cache is None:
        from repro.sim.tracecache import TraceCache

        _worker_cache = TraceCache()
    before = _worker_cache.stats()
    result = _run_variant_cold(
        solution, workload, profile, params, apply_fn, warmup, rest,
        fault_rate, fault_seed, collect_quality, _worker_cache, engine_kwargs,
        obs_config=obs_config, obs_label=f"{workload}/{solution}/{label}",
    )
    if result.perf is not None:
        result.perf.cache = _worker_cache.stats().delta(before)
    return label, result


#: Per-worker-process snapshot store, keyed by spill-file path, so every
#: variant a worker runs unpickles the shared warmup payload only once.
_worker_snapshots: dict = {}


def _run_fork_cell(args: tuple) -> tuple[str, SimulationResult]:
    """Forked sweep cell in a worker process (must be picklable)."""
    global _worker_cache, _worker_snapshots
    path, label, params, apply_fn, rest, obs_config, obs_label = args
    snap = _worker_snapshots.get(path)
    if snap is None:
        with open(path, "rb") as fh:
            snap = pickle.load(fh)
        _worker_snapshots[path] = snap
    if _worker_cache is None:
        from repro.sim.tracecache import TraceCache

        _worker_cache = TraceCache()
    before = _worker_cache.stats()
    engine = SimulationEngine.fork(
        snap, trace_cache=_worker_cache, obs=_cell_obs(obs_config, label=obs_label)
    )
    apply_fn(engine, params)
    result = engine.run(rest)
    _close_cell_stream(engine.obs)
    if result.perf is not None:
        result.perf.cache = _worker_cache.stats().delta(before)
    return label, result


def run_sweep(
    solution: str,
    workload: str,
    profile: BenchProfile,
    variants: list[SweepVariant],
    apply_fn: Callable,
    warmup_intervals: int,
    intervals: int | None = None,
    use_snapshots: bool | None = None,
    workers: int | None = None,
    snapshot_cache: SnapshotCache | None = None,
    trace_cache: "TraceCache | None" = None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    collect_quality: bool = False,
    obs="default",
    **engine_kwargs,
) -> SweepResult:
    """Run a parameter sweep whose cells share a warmup prefix.

    Every variant simulates the same first ``warmup_intervals`` intervals
    — same solution, same workload, same seeds, variant knobs not yet
    applied — then ``apply_fn(engine, variant.params)`` runs at the
    branch point and the remaining intervals diverge.  Because the knobs
    only take effect *after* the prefix in both modes, the snapshot path
    (warm up once, :meth:`~repro.sim.engine.SimulationEngine.fork` per
    variant) is bit-identical to the cold path (every variant simulated
    from interval 0), which the differential tests assert.

    Args:
        apply_fn: ``(engine, params) -> None``, applies one variant's
            knobs.  Must be a module-level function (workers pickle it).
        warmup_intervals: shared-prefix length; must leave at least one
            divergent interval.
        use_snapshots: fork from one warmed snapshot instead of cold
            runs; ``None`` uses the CLI default
            (:func:`set_default_snapshots`).
        workers: processes to fan variants over, as in :func:`run_matrix`.
            With snapshots the parent warms up once, spills the snapshot
            to disk, and workers fork from the spilled payload.
        snapshot_cache: share warmed snapshots across sweeps keyed by
            ``(workload, scale, seed, solution, fault, warmup)``; ``None``
            builds a private one.
        obs: as in :func:`run_solution`.  Each variant records into its
            own context; the shared warmup (when actually simulated, i.e.
            on a snapshot-cache miss) appears as its own track.
    """
    total = intervals if intervals is not None else profile.intervals_for(workload)
    if not 0 < warmup_intervals < total:
        raise ConfigError(
            f"warmup_intervals must be in (0, {total}), got {warmup_intervals}"
        )
    rest = total - warmup_intervals
    labels = [v.label for v in variants]
    if len(set(labels)) != len(labels):
        raise ConfigError("sweep variant labels must be unique")
    if use_snapshots is None:
        use_snapshots = _DEFAULT_SNAPSHOTS
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    collector = _resolve_collector(obs)
    obs_config = collector.config if collector is not None else None

    collected: dict[str, SimulationResult] = {}
    snap_stats_before: CacheStats | None = None
    tmpdir: str | None = None
    warmup_obs: "ObsContext | None" = None

    if not use_snapshots:
        if workers == 1:
            if trace_cache is None:
                from repro.sim.tracecache import TraceCache

                trace_cache = TraceCache()
            with _stream_collector(collector):
                for v in variants:
                    before = trace_cache.stats()
                    result = _run_variant_cold(
                        solution, workload, profile, v.params, apply_fn,
                        warmup_intervals, rest, fault_rate, fault_seed,
                        collect_quality, trace_cache, engine_kwargs,
                        obs_config=obs_config,
                        obs_label=f"{workload}/{solution}/{v.label}",
                    )
                    if result.perf is not None:
                        result.perf.cache = trace_cache.stats().delta(before)
                    collected[v.label] = result
        else:
            cells = [
                (solution, workload, profile, v.label, v.params, apply_fn,
                 warmup_intervals, rest, fault_rate, fault_seed,
                 collect_quality, engine_kwargs, obs_config)
                for v in variants
            ]
            for label, result in _pool_map(
                _run_cold_cell, cells, workers, collector=collector
            ):
                collected[label] = result
    else:
        if snapshot_cache is None:
            if workers > 1:
                tmpdir = tempfile.mkdtemp(prefix="repro-snap-")
                snapshot_cache = SnapshotCache(spill_dir=tmpdir)
            else:
                snapshot_cache = SnapshotCache()
        snap_stats_before = snapshot_cache.stats()
        if trace_cache is None:
            from repro.sim.tracecache import TraceCache

            trace_cache = TraceCache()
        key = (
            workload, float(profile.scale), int(profile.seed), solution,
            float(fault_rate), int(fault_seed), int(warmup_intervals),
        )

        def _warmup() -> "EngineSnapshot":
            # The warmup only simulates on a snapshot-cache miss, so its
            # obs track exists exactly when warmup work actually happened.
            nonlocal warmup_obs
            warmup_obs = _cell_obs(
                obs_config, label=f"{workload}/{solution}/warmup"
            )
            engine = make_engine(
                solution,
                workload,
                scale=profile.scale,
                seed=profile.seed,
                collect_quality=collect_quality,
                injector=_make_injector(fault_rate, fault_seed),
                trace_cache=trace_cache,
                obs=warmup_obs,
                **copy.deepcopy(engine_kwargs),
            )
            for _ in range(warmup_intervals):
                engine.step()
            return capture_engine(engine, key=key)

        with _stream_collector(collector):
            snap = snapshot_cache.get_or_create(key, _warmup, obs=collector)
        _close_cell_stream(warmup_obs)
        try:
            if workers == 1:
                with _stream_collector(collector):
                    for v in variants:
                        before = trace_cache.stats()
                        engine = SimulationEngine.fork(
                            snap,
                            trace_cache=trace_cache,
                            obs=_cell_obs(
                                obs_config, label=f"{workload}/{solution}/{v.label}"
                            ),
                        )
                        apply_fn(engine, v.params)
                        result = engine.run(rest)
                        _close_cell_stream(engine.obs)
                        if result.perf is not None:
                            result.perf.cache = trace_cache.stats().delta(before)
                        collected[v.label] = result
            else:
                if snapshot_cache.spill_dir is not None:
                    path = snapshot_cache.spill_path(key)
                    if not os.path.exists(path):
                        snapshot_cache.put(key, snap)
                else:
                    # Caller's cache is memory-only; mirror the payload to a
                    # temp file so workers can reach it.
                    tmpdir = tempfile.mkdtemp(prefix="repro-snap-")
                    path = os.path.join(tmpdir, "snapshot.pkl")
                    with open(path, "wb") as fh:
                        pickle.dump(snap, fh, protocol=5)
                cells = [
                    (path, v.label, v.params, apply_fn, rest, obs_config,
                     f"{workload}/{solution}/{v.label}")
                    for v in variants
                ]
                for label, result in _pool_map(
                    _run_fork_cell, cells, workers, collector=collector
                ):
                    collected[label] = result
        finally:
            if tmpdir is not None:
                shutil.rmtree(tmpdir, ignore_errors=True)

    if collector is not None:
        if warmup_obs is not None:
            collector.absorb(warmup_obs.snapshot())
        for label in labels:
            if collected[label].obs is not None:
                collector.absorb(collected[label].obs)

    perf = _aggregate_perf([collected[label] for label in labels])
    if perf is not None and snapshot_cache is not None and snap_stats_before is not None:
        perf.snapshots = snapshot_cache.stats().delta(snap_stats_before)
    return SweepResult(
        results={label: collected[label] for label in labels},
        warmup_intervals=warmup_intervals,
        perf=perf,
    )


def _pool_map(fn, cells, workers: int, collector: "ObsContext | None" = None):
    """Fan ``cells`` over a process pool, optionally relaying live streams.

    fork (where available) keeps startup cheap and inherits the
    process-global perfflags switch; spawn re-imports with defaults.
    When ``collector`` has streaming sinks and the platform forks, a
    bounded relay queue is installed *before* the pool starts (workers
    inherit it) and drained onto the collector's sinks between
    completions — the live view.  Final results still travel back as
    ``ObsData``, untouched by the relay.  Without fork the relay is
    skipped (no live view, identical final results).
    """
    global _RELAY_QUEUE
    import multiprocessing as mp

    if perfflags.compiled():
        # Load + warm the kernel backend before the pool starts: forked
        # workers inherit the bound/JITted kernels, and spawned workers
        # at least share the on-disk cache (kernels.kernel_cache_dir())
        # instead of each paying a cold compile.
        kernels.warmup()
    method = "fork" if "fork" in mp.get_all_start_methods() else None
    ctx = mp.get_context(method) if method else mp.get_context()
    relay = (collector is not None and collector.stream_sinks
             and method == "fork")
    queue = ctx.Queue(RELAY_QUEUE_MAXSIZE) if relay else None
    if queue is not None:
        _RELAY_QUEUE = queue
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx,
            initializer=_pool_worker_init,
        ) as pool:
            if queue is None:
                yield from pool.map(fn, cells)
            else:
                pending = {pool.submit(fn, cell) for cell in cells}
                while pending:
                    done, pending = wait(pending, timeout=0.05)
                    _drain_relay(queue, collector)
                    for future in done:
                        yield future.result()
        if queue is not None:
            _drain_relay(queue, collector)
    finally:
        if queue is not None:
            _RELAY_QUEUE = None
            queue.close()
