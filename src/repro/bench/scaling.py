"""Benchmark profiles: how large and how long each experiment runs.

Two profiles ship:

* ``FULL`` — machine scaled 1/128, interval counts proportional to the
  paper's Table 7 run lengths; minutes of wall time per figure.
* ``QUICK`` — machine scaled 1/512 and short runs; used by pytest-benchmark
  so the whole suite finishes quickly while exercising identical code.

Select with the ``REPRO_BENCH_PROFILE`` environment variable
(``full``/``quick``; default quick for pytest, full for standalone runs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class BenchProfile:
    """One benchmark sizing profile.

    Attributes:
        name: profile label.
        scale: machine capacity scale.
        intervals: per-workload simulated profiling intervals.
        seed: base RNG seed.
    """

    name: str
    scale: float
    intervals: dict[str, int] = field(
        default_factory=lambda: {
            "gups": 200,
            "voltdb": 180,
            "cassandra": 200,
            "bfs": 120,
            "sssp": 160,
            "spark": 192,
        }
    )
    seed: int = 7

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    def intervals_for(self, workload: str) -> int:
        return self.intervals.get(workload, 120)


FULL = BenchProfile(name="full", scale=1.0 / 128.0)

QUICK = BenchProfile(
    name="quick",
    scale=1.0 / 512.0,
    intervals={
        "gups": 40,
        "voltdb": 40,
        "cassandra": 40,
        "bfs": 30,
        "sssp": 30,
        "spark": 48,
    },
)

_PROFILES = {"full": FULL, "quick": QUICK}


def profile_names() -> list[str]:
    """The selectable bench profile names."""
    return sorted(_PROFILES)


def profile_by_name(name: str) -> BenchProfile:
    """The profile registered under ``name`` (``quick``/``full``)."""
    key = name.lower()
    if key not in _PROFILES:
        raise ConfigError(
            f"unknown bench profile {name!r}; choose from {sorted(_PROFILES)}"
        )
    return _PROFILES[key]


def profile_from_env(default: str = "quick") -> BenchProfile:
    """Pick the profile named by ``REPRO_BENCH_PROFILE`` (or ``default``)."""
    return profile_by_name(os.environ.get("REPRO_BENCH_PROFILE", default))
