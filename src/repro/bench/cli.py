"""Shared command line for the ``benchmarks/bench_*.py`` drivers.

Every driver exposes ``run_experiment(profile, ...)`` and ends with::

    if __name__ == "__main__":
        from repro.bench.cli import bench_main
        bench_main(run_experiment)

which gives all of them a uniform flag set:

* ``--profile quick|full`` — bench sizing profile (overrides the
  ``REPRO_BENCH_PROFILE`` environment variable);
* ``--workers K`` — processes for matrix fan-out; installed as the
  process default so every ``run_matrix`` call in the experiment picks
  it up (results are bit-identical at any K);
* ``--workloads a,b,c`` — restrict the experiment's workload set, mapped
  onto the driver's ``workloads``/``workload`` parameter when it has one;
* ``--backend legacy|vectorized|compiled`` — hot-path implementation
  tier (see :mod:`repro.perfflags`); all tiers are bit-identical, the
  choice only moves wall clock;
* ``--snapshots/--no-snapshots`` — whether shared-warmup sweeps fork
  from one warmed engine snapshot (the default) or simulate every cell
  from interval 0; installed as the process default every ``run_sweep``
  call picks up (results are bit-identical either way);
* ``--obs [--obs-out DIR]`` — install a process-wide observability
  collector (see :mod:`repro.obs`); every runner call records events,
  spans, metrics, and migration provenance into it, and the collector is
  exported (Chrome ``trace.json``, ``events.jsonl``, ``metrics.json``,
  ``provenance.jsonl``) after the experiment finishes.  Observability
  never changes results — runs are bit-identical with it on or off.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import Callable

from repro import perfflags
from repro.bench.runner import set_default_snapshots, set_default_workers
from repro.bench.scaling import profile_by_name, profile_from_env, profile_names
from repro.errors import ConfigError


def bench_main(
    run_experiment: Callable[..., str],
    default_profile: str = "full",
    argv: list[str] | None = None,
) -> None:
    """Parse the shared bench flags, run the experiment, print its report."""
    parser = argparse.ArgumentParser(
        description=(run_experiment.__doc__ or "").strip() or None
    )
    parser.add_argument(
        "--profile", choices=profile_names(), default=None,
        help="bench sizing profile (default: REPRO_BENCH_PROFILE or "
             f"{default_profile!r})",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="worker processes for matrix fan-out (default: 1; results "
             "are identical for any K)",
    )
    parser.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="comma-separated workload subset (drivers with a fixed "
             "workload accept exactly one name)",
    )
    parser.add_argument(
        "--backend", choices=perfflags.BACKENDS, default="vectorized",
        help="hot-path implementation tier (legacy/vectorized/compiled; "
             "bit-identical, affects wall clock only)",
    )
    parser.add_argument(
        "--snapshots", action=argparse.BooleanOptionalAction, default=True,
        help="fork shared-warmup sweep cells from one warmed engine "
             "snapshot (default on; results are identical either way)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="collect observability data (events/spans/metrics/provenance) "
             "and export it after the run (results are identical either way)",
    )
    parser.add_argument(
        "--obs-out", default="obs-out", metavar="DIR",
        help="directory for the observability export (default: obs-out)",
    )
    parser.add_argument(
        "--obs-stream", action="store_true",
        help="stream telemetry to OBS_OUT/stream.ndjson while cells run "
             "(pool workers relay through the parent); implies --obs",
    )
    parser.add_argument(
        "--obs-socket", default=None, metavar="ADDR",
        help="also stream to a line-protocol socket (unix:PATH or "
             "HOST:PORT) served by `repro watch --connect`; implies --obs",
    )
    args = parser.parse_args(argv)

    perfflags.set_backend(args.backend)
    set_default_workers(args.workers)
    set_default_snapshots(args.snapshots)
    collector = None
    if args.obs or args.obs_stream or args.obs_socket:
        import os

        from repro.obs.context import ObsConfig, ObsContext, set_default_context

        collector = ObsContext(
            ObsConfig(stream=bool(args.obs_stream or args.obs_socket)),
            label="bench",
        )
        if args.obs_stream:
            from repro.obs.sinks import NdjsonFileSink

            collector.add_sink(
                NdjsonFileSink(os.path.join(args.obs_out, "stream.ndjson"))
            )
        if args.obs_socket:
            from repro.obs.sinks import SocketSink

            collector.add_sink(SocketSink(args.obs_socket))
        set_default_context(collector)
    profile = (
        profile_by_name(args.profile)
        if args.profile is not None
        else profile_from_env(default=default_profile)
    )

    kwargs = {}
    if args.workloads:
        names = [w.strip() for w in args.workloads.split(",") if w.strip()]
        params = inspect.signature(run_experiment).parameters
        if "workloads" in params:
            kwargs["workloads"] = names
        elif "workload" in params:
            if len(names) != 1:
                raise ConfigError(
                    "this experiment runs one workload; pass a single name"
                )
            kwargs["workload"] = names[0]
        else:
            raise ConfigError("this experiment has a fixed workload set")
    import time

    started = time.perf_counter()
    try:
        print(run_experiment(profile, **kwargs))
    except BaseException:
        if collector is not None:
            collector.stream_abort()
            for sink in collector.stream_sinks:
                cleanup = getattr(sink, "cleanup_if_empty", None)
                if cleanup is not None:
                    cleanup()
        raise
    seconds = time.perf_counter() - started
    if collector is not None:
        paths = collector.export(args.obs_out)
        collector.stream_close()
        print(f"observability export written to {paths['trace']} "
              f"(open in ui.perfetto.dev) and {args.obs_out}/")
    _append_history(run_experiment, profile, args, seconds)


def _append_history(run_experiment, profile, args, seconds: float) -> None:
    """One trajectory record per successful driver invocation.

    Only ``bench_main`` appends — pytest-benchmark entry points call
    ``run_experiment`` directly and must not pollute the trajectory.
    The record carries the flattened numeric content of the
    ``BENCH_perf.json`` next to the driver, so ``repro diff --bench``
    can compare pinned numbers (not just wall clock) across entries.
    A history failure never fails the bench run.
    """
    import json

    from repro.bench.history import (
        append_record,
        flatten_metrics,
        resolve_history_path,
    )

    try:
        driver_file = Path(inspect.getfile(run_experiment))
        driver = driver_file.stem
        root = driver_file.resolve().parent.parent
        path = resolve_history_path(root)
        if path is None:
            return
        metrics: dict[str, float] = {}
        perf_path = root / "BENCH_perf.json"
        if perf_path.exists():
            with open(perf_path, encoding="utf-8") as fh:
                metrics = flatten_metrics(json.load(fh))
        record = append_record(
            path,
            driver=driver,
            profile=profile.name,
            seconds=seconds,
            backend=getattr(args, "backend", ""),
            workers=getattr(args, "workers", 1),
            metrics=metrics,
        )
        print(f"bench history: appended {record['iso']} to {path}")
    except OSError as exc:  # pragma: no cover - depends on host fs state
        print(f"bench history: skipped ({exc})", file=sys.stderr)
