"""Multi-seed statistics for benchmark rigor.

A single seeded run gives one sample of a stochastic system; paper-grade
claims ("MTM outperforms X by 17%") deserve a mean and a spread.  This
module repeats runs across seeds and summarizes normalized times with
means and 95% confidence half-widths (normal approximation — fine for the
handful-of-repeats regime these sweeps use).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.bench.scaling import BenchProfile
from repro.bench.runner import run_solution
from repro.errors import ConfigError
from repro.metrics.report import Table


@dataclass(frozen=True)
class SeriesStats:
    """Mean and spread of one solution's normalized times.

    Attributes:
        mean: average normalized execution time.
        ci95: 95% confidence half-width (0 with a single repeat).
        samples: raw normalized values.
    """

    mean: float
    ci95: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: list[float]) -> "SeriesStats":
        """Summarize raw samples into mean and 95% half-width."""
        if not samples:
            raise ConfigError("no samples")
        n = len(samples)
        mean = sum(samples) / n
        if n == 1:
            return cls(mean=mean, ci95=0.0, samples=tuple(samples))
        var = sum((s - mean) ** 2 for s in samples) / (n - 1)
        ci95 = 1.96 * math.sqrt(var / n)
        return cls(mean=mean, ci95=ci95, samples=tuple(samples))


def bootstrap_ci(
    samples: list[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap percentile CI of the sample mean.

    Resampling-based, so it needs no distributional assumption — the
    right tool for the skewed, few-sample series the analytics diff
    layer compares (bench-history metrics, dwell-time samples).  Seeded
    for reproducibility: the same samples always yield the same CI.
    """
    import numpy as np

    if not samples:
        raise ConfigError("no samples")
    data = np.asarray(samples, dtype=np.float64)
    if len(data) == 1:
        return (float(data[0]), float(data[0]))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(data), size=(n_boot, len(data)))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def bootstrap_diff_ci(
    a: list[float],
    b: list[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI of ``mean(a) - mean(b)`` (two independent samples).

    A CI containing zero means the observed mean difference is not
    statistically distinguishable at the given confidence.
    """
    import numpy as np

    if not a or not b:
        raise ConfigError("both sample sets must be non-empty")
    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    if len(xa) == 1 and len(xb) == 1:
        d = float(xa[0] - xb[0])
        return (d, d)
    rng = np.random.default_rng(seed)
    means_a = xa[rng.integers(0, len(xa), size=(n_boot, len(xa)))].mean(axis=1)
    means_b = xb[rng.integers(0, len(xb), size=(n_boot, len(xb)))].mean(axis=1)
    diffs = means_a - means_b
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(diffs, alpha)),
            float(np.quantile(diffs, 1.0 - alpha)))


def repeated_comparison(
    workload: str,
    solutions: list[str],
    profile: BenchProfile,
    repeats: int = 3,
    baseline: str | None = None,
    intervals: int | None = None,
) -> dict[str, SeriesStats]:
    """Run every solution ``repeats`` times and return normalized stats.

    The baseline (default: the first solution) is re-run per seed so each
    repeat's normalization shares the seed's workload stream.
    """
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    if not solutions:
        raise ConfigError("need at least one solution")
    baseline = baseline if baseline is not None else solutions[0]
    if baseline not in solutions:
        raise ConfigError(f"baseline {baseline!r} must be among the solutions")

    samples: dict[str, list[float]] = {s: [] for s in solutions}
    for repeat in range(repeats):
        seeded = replace(profile, seed=profile.seed + 1000 * repeat)
        times = {
            solution: run_solution(solution, workload, seeded, intervals=intervals).total_time
            for solution in solutions
        }
        base = times[baseline]
        for solution in solutions:
            samples[solution].append(times[solution] / base)
    return {s: SeriesStats.from_samples(v) for s, v in samples.items()}


def stats_table(
    workload: str, stats: dict[str, SeriesStats], baseline: str
) -> Table:
    """Render repeated-comparison stats as a text table."""
    table = Table(
        f"{workload}: normalized time over {len(next(iter(stats.values())).samples)} seeds "
        f"(baseline: {baseline})",
        ["solution", "mean", "95% CI", "samples"],
    )
    for solution, s in stats.items():
        table.add_row(
            solution,
            f"{s.mean:.3f}",
            f"+/-{s.ci95:.3f}",
            " ".join(f"{x:.3f}" for x in s.samples),
        )
    return table
