"""Benchmark harness support: scaled configurations and runners.

The modules under ``benchmarks/`` (one per paper table/figure) are thin
wrappers around these helpers, so each experiment's workload parameters
and run lengths live in exactly one place.
"""

from repro.bench.scaling import BenchProfile, FULL, QUICK, profile_from_env
from repro.bench.runner import run_solution, run_matrix, MatrixResult
from repro.bench.stats import SeriesStats, repeated_comparison, stats_table

__all__ = [
    "BenchProfile",
    "FULL",
    "QUICK",
    "profile_from_env",
    "run_solution",
    "run_matrix",
    "MatrixResult",
    "SeriesStats",
    "repeated_comparison",
    "stats_table",
]
