"""Drop-in ``np.unique`` variants tuned for the simulator's hot loops.

``np.unique`` on integer arrays goes through a hash table in recent
NumPy, which profiles as the single largest non-RNG cost in the
simulator's inner loops.  Sorting followed by a first-occurrence mask
produces the exact same output (ascending unique values) in a fraction
of the time for the array sizes the simulator handles, and degenerates
to a single vectorized comparison when the input is already sorted.

Every helper here is *output-identical* to its ``np.unique`` spelling;
the legacy spelling is kept behind :func:`repro.perfflags.vectorized`
so the pre-optimization code path stays measurable.
"""

from __future__ import annotations

import numpy as np

from repro import perfflags


def dedup_sorted(a: np.ndarray) -> np.ndarray:
    """Unique values of an already-sorted 1-D array (ascending input).

    Equal to ``np.unique(a)`` when ``a`` is sorted ascending; the caller
    guarantees sortedness.
    """
    if a.size <= 1:
        return a.copy()
    keep = np.empty(a.size, dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    return a[keep]


def unique(a: np.ndarray) -> np.ndarray:
    """``np.unique(a)`` for 1-D arrays, via sort + first-occurrence mask."""
    if not perfflags.vectorized():
        return np.unique(a)
    a = np.asarray(a).ravel()
    return dedup_sorted(np.sort(a))


def unique_counts(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(a, return_counts=True)`` via sort + run boundaries."""
    if not perfflags.vectorized():
        return np.unique(a, return_counts=True)
    a = np.sort(np.asarray(a).ravel())
    if a.size == 0:
        return a, np.empty(0, dtype=np.intp)
    keep = np.empty(a.size, dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    idx = np.flatnonzero(keep)
    counts = np.diff(np.append(idx, a.size))
    return a[idx], counts


def unique_inverse(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(a, return_inverse=True)`` via a stable argsort."""
    if not perfflags.vectorized():
        values, inverse = np.unique(a, return_inverse=True)
        return values, inverse.ravel()
    a = np.asarray(a).ravel()
    if a.size == 0:
        return a.copy(), np.empty(0, dtype=np.intp)
    order = np.argsort(a, kind="stable")
    sa = a[order]
    keep = np.empty(sa.size, dtype=bool)
    keep[0] = True
    np.not_equal(sa[1:], sa[:-1], out=keep[1:])
    inverse = np.empty(sa.size, dtype=np.intp)
    inverse[order] = np.cumsum(keep) - 1
    return sa[keep], inverse
