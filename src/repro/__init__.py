"""MTM reproduction: multi-tiered memory profiling and migration.

A discrete-time simulation library reproducing *MTM: Rethinking Memory
Profiling and Migration for Multi-Tiered Large Memory* (EuroSys '24):
the adaptive profiler, the global fast-promotion/slow-demotion policy,
the adaptive asynchronous migration mechanism, and every baseline the
paper evaluates against, on a simulated 4-tier Optane-class machine.

Quickstart::

    from repro import MtmManager, build_workload

    manager = MtmManager(scale=1 / 256)
    result = manager.run(build_workload("gups", 1 / 256), num_intervals=60)
    print(result.breakdown(), result.fast_tier_share())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.manager import MtmManager, MtmSystemConfig
from repro.core.api import move_memory_regions
from repro.core.baselines import SOLUTIONS, make_engine, solution_names
from repro.hw.topology import cxl_topology, optane_2tier, optane_4tier, uniform_topology
from repro.sim.costmodel import CostModel, CostParams, effective_interval
from repro.sim.engine import SimulationEngine, SimulationResult
from repro.workloads.registry import WORKLOAD_SPECS, build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "MtmManager",
    "MtmSystemConfig",
    "move_memory_regions",
    "SOLUTIONS",
    "make_engine",
    "solution_names",
    "optane_2tier",
    "optane_4tier",
    "cxl_topology",
    "uniform_topology",
    "CostModel",
    "CostParams",
    "effective_interval",
    "SimulationEngine",
    "SimulationResult",
    "WORKLOAD_SPECS",
    "build_workload",
    "workload_names",
    "__version__",
]
