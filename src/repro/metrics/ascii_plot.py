"""Terminal line plots for benchmark series.

The paper's line figures (Fig. 1's recall/accuracy, Fig. 12's throughput
curves) need a way to be *seen* without matplotlib; this renders multiple
series into a character grid with a legend, one glyph per series.
"""

from __future__ import annotations

import math


from repro.errors import ConfigError

#: Glyphs assigned to series in order.
_GLYPHS = "*o+x#@%&"


def ascii_plot(
    series: dict[str, list[float]],
    width: int = 72,
    height: int = 18,
    y_label: str = "",
    x_label: str = "interval",
    y_min: float | None = None,
    y_max: float | None = None,
    logy: bool = False,
) -> str:
    """Render named series as an ASCII chart.

    Args:
        series: name -> y-values (x is the index; lengths may differ).
        width/height: plot area in characters.
        y_min/y_max: axis limits (auto from data when omitted).
        logy: log-scale the y axis (Fig. 1 uses log recall); requires all
            plotted values > 0 (zeros are clamped to the axis minimum).
    """
    if not series:
        raise ConfigError("nothing to plot")
    if width < 8 or height < 4:
        raise ConfigError("plot area too small")
    if len(series) > len(_GLYPHS):
        raise ConfigError(f"at most {len(_GLYPHS)} series supported")

    all_values = [v for ys in series.values() for v in ys]
    if not all_values:
        raise ConfigError("series are empty")
    lo = min(all_values) if y_min is None else y_min
    hi = max(all_values) if y_max is None else y_max
    if logy:
        positive = [v for v in all_values if v > 0]
        floor = min(positive) if positive else 1e-3
        lo = max(lo, floor / 2) if lo <= 0 else lo
    if hi <= lo:
        hi = lo + 1.0

    def to_row(value: float) -> int:
        if logy:
            value = max(value, lo)
            frac = (math.log10(value) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            frac = (value - lo) / (hi - lo)
        return int(round((height - 1) * (1.0 - min(max(frac, 0.0), 1.0))))

    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(ys) for ys in series.values())
    for (name, ys), glyph in zip(series.items(), _GLYPHS):
        if not ys:
            continue
        for i, value in enumerate(ys):
            col = 0 if max_len == 1 else int(round(i * (width - 1) / (max_len - 1)))
            grid[to_row(value)][col] = glyph

    top_label = f"{hi:.3g}"
    bottom_label = f"{lo:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    lines = []
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label.rjust(gutter)
        elif row_idx == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(" " * (gutter + 1) + x_label)
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
    )
    header = (y_label + ("  [log y]" if logy else "")).strip()
    out = []
    if header:
        out.append(header)
    out.extend(lines)
    out.append(legend)
    return "\n".join(out)
