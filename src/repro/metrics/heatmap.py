"""Access heatmaps over (address, time) — Fig. 6.

The paper visualizes where a profiler *believes* accesses happen versus
where they actually happen, across the virtual address space and time.
:class:`AccessHeatmap` accumulates either ground-truth batches or a
profiler's per-region scores into a 2-D grid that renders as ASCII art or
exports as a numpy array for plotting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.profile.base import ProfileSnapshot
from repro.sim.trace import AccessBatch

#: Glyph ramp from cold to hot for ASCII rendering.
_RAMP = " .:-=+*#%@"


class AccessHeatmap:
    """(time x address) intensity grid.

    Args:
        n_pages: size of the tracked address range in pages.
        address_bins: columns (address resolution).
        max_intervals: rows retained (grows dynamically up to this).
    """

    def __init__(self, n_pages: int, address_bins: int = 96, max_intervals: int = 512) -> None:
        if n_pages < 1:
            raise ConfigError(f"n_pages must be >= 1, got {n_pages}")
        if address_bins < 1 or max_intervals < 1:
            raise ConfigError("address_bins and max_intervals must be >= 1")
        self.n_pages = n_pages
        self.address_bins = address_bins
        self.max_intervals = max_intervals
        self._rows: list[np.ndarray] = []

    def record_batch(self, batch: AccessBatch) -> None:
        """Append one interval of ground-truth access counts."""
        row = np.zeros(self.address_bins, dtype=np.float64)
        if batch.pages.size:
            bins = (batch.pages * self.address_bins // self.n_pages).astype(np.int64)
            bins = np.clip(bins, 0, self.address_bins - 1)
            np.add.at(row, bins, batch.counts.astype(np.float64))
        self._append(row)

    def record_snapshot(self, snapshot: ProfileSnapshot) -> None:
        """Append one interval of a profiler's believed hotness."""
        row = np.zeros(self.address_bins, dtype=np.float64)
        for report in snapshot.reports:
            lo = report.start * self.address_bins // self.n_pages
            hi = max(lo + 1, report.end * self.address_bins // self.n_pages)
            row[lo : min(hi, self.address_bins)] += report.score
        self._append(row)

    def _append(self, row: np.ndarray) -> None:
        if len(self._rows) >= self.max_intervals:
            self._rows.pop(0)
        self._rows.append(row)

    def grid(self) -> np.ndarray:
        """The (intervals x address_bins) intensity matrix."""
        if not self._rows:
            return np.zeros((0, self.address_bins))
        return np.vstack(self._rows)

    def render(self, height: int = 24) -> str:
        """ASCII heatmap, newest interval at the bottom."""
        grid = self.grid()
        if grid.size == 0:
            return "(empty heatmap)"
        # Downsample rows to the requested height.
        if grid.shape[0] > height:
            idx = np.linspace(0, grid.shape[0] - 1, height).astype(np.int64)
            grid = grid[idx]
        peak = grid.max()
        if peak <= 0:
            peak = 1.0
        levels = np.clip((grid / peak) ** 0.5 * (len(_RAMP) - 1), 0, len(_RAMP) - 1)
        lines = ["".join(_RAMP[int(v)] for v in row) for row in levels]
        border = "+" + "-" * self.address_bins + "+"
        return "\n".join([border] + ["|" + line + "|" for line in lines] + [border])
