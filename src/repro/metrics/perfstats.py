"""Host-side performance instrumentation for simulator runs.

:class:`PerfStats` records *real* (host wall-clock) seconds spent in each
engine phase, as opposed to the simulated seconds the
:class:`~repro.sim.clock.Clock` accounts.  It exists so the performance
work — vectorized hot paths, the trace cache, the snapshot/fork engine,
the parallel matrix runner — can be measured and regression-gated
(``benchmarks/bench_perf_smoke.py``) without touching simulated timing,
which must stay bit-identical across all of those switches.

Besides per-phase totals, each phase keeps its per-interval duration
samples so tail behaviour is visible: :meth:`PerfStats.percentiles`
reports p50/p95 per phase, which is how a rare O(footprint) slip in an
otherwise O(touched) pipeline shows up.

The measurements never feed back into the simulation, so the
instrumentation itself cannot perturb results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import combine_fields, delta_fields, merge_sample_maps

#: CacheStats merge semantics, shared with the obs registry primitives.
_CACHE_SUM_FIELDS = ("hits", "misses", "evictions")
_CACHE_MAX_FIELDS = ("cached_bytes",)


@dataclass
class CacheStats:
    """Counters snapshot from a :class:`~repro.sim.tracecache.TraceCache`
    or :class:`~repro.sim.snapshot.SnapshotCache`.

    Attributes:
        hits: requests served from cached state.
        misses: requests that had to compute the state.
        evictions: whole entries dropped to fit the byte budget.
        cached_bytes: bytes currently held by the cache.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0 when unused)."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.hits / total

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum; ``cached_bytes`` takes the max (the byte
        figure is a point-in-time gauge, not a counter)."""
        return combine_fields(self, other, sum_fields=_CACHE_SUM_FIELDS,
                              max_fields=_CACHE_MAX_FIELDS)

    def delta(self, before: "CacheStats | None") -> "CacheStats":
        """Counters accumulated since the ``before`` snapshot.

        Used by the matrix runner to attribute a shared (per-process)
        cache's activity to individual cells, so worker-side counters
        can be summed in the parent without double counting.
        """
        return delta_fields(self, before, counter_fields=_CACHE_SUM_FIELDS,
                            gauge_fields=_CACHE_MAX_FIELDS)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_bytes": self.cached_bytes,
            "hit_rate": self.hit_rate,
        }


def _percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac


@dataclass
class PerfStats:
    """Per-phase host wall-time of one engine run.

    Attributes:
        workload_seconds: batch synthesis (or cache lookup) time.
        profile_seconds: profiler passes.
        migrate_seconds: policy decisions plus planner execution.
        total_seconds: whole ``run()`` call, including phases not broken
            out above (MMU application, PCM counting, bookkeeping).
        compile_seconds: kernel compile/bind time attributed to this run
            (the :mod:`repro.kernels` build/JIT work that happened during
            it); separates one-time compile latency from steady-state
            run time when the compiled backend is active.
        intervals: intervals simulated.
        cache: trace-cache counters, when a cache served this run.
        snapshots: snapshot-cache counters, when a sweep forked this run
            (attached by the sweep runner, not the engine).
        phase_samples: per-interval duration samples keyed by phase name
            (``workload``/``profile``/``migrate``/``interval``) feeding
            the p50/p95 percentiles.
    """

    workload_seconds: float = 0.0
    profile_seconds: float = 0.0
    migrate_seconds: float = 0.0
    total_seconds: float = 0.0
    compile_seconds: float = 0.0
    intervals: int = 0
    cache: CacheStats | None = field(default=None)
    snapshots: CacheStats | None = field(default=None)
    phase_samples: dict[str, list[float]] = field(default_factory=dict)

    @property
    def other_seconds(self) -> float:
        """Wall time not attributed to a named phase."""
        accounted = self.workload_seconds + self.profile_seconds + self.migrate_seconds
        return max(0.0, self.total_seconds - accounted)

    def record_sample(self, phase: str, seconds: float) -> None:
        """Append one per-interval duration sample for ``phase``."""
        self.phase_samples.setdefault(phase, []).append(seconds)

    def percentiles(self, qs: tuple[float, ...] = (50.0, 95.0)) -> dict[str, dict[str, float]]:
        """Per-phase wall-time percentiles, e.g. ``{"profile": {"p50": ..}}``."""
        return {
            phase: {f"p{q:g}": _percentile(samples, q) for q in qs}
            for phase, samples in self.phase_samples.items()
        }

    def merge(self, other: "PerfStats") -> "PerfStats":
        """Aggregate two runs' stats.

        Cache counters sum when both sides carry *deltas* (the matrix
        runner's aggregation path); when either side is ``None`` the
        other is kept as-is.
        """
        merged = combine_fields(
            self, other,
            sum_fields=("workload_seconds", "profile_seconds",
                        "migrate_seconds", "total_seconds",
                        "compile_seconds", "intervals"),
        )
        merged.cache = _merge_cache(self.cache, other.cache)
        merged.snapshots = _merge_cache(self.snapshots, other.snapshots)
        merged.phase_samples = merge_sample_maps(self.phase_samples,
                                                 other.phase_samples)
        return merged

    def as_dict(self) -> dict:
        """JSON-ready snapshot (used by the perf-smoke benchmark)."""
        out = {
            "workload_seconds": self.workload_seconds,
            "profile_seconds": self.profile_seconds,
            "migrate_seconds": self.migrate_seconds,
            "other_seconds": self.other_seconds,
            "total_seconds": self.total_seconds,
            "compile_seconds": self.compile_seconds,
            "intervals": self.intervals,
        }
        if self.phase_samples:
            out["percentiles"] = self.percentiles()
        if self.cache is not None:
            out["cache"] = self.cache.as_dict()
        if self.snapshots is not None:
            out["snapshots"] = self.snapshots.as_dict()
        return out


def _merge_cache(a: CacheStats | None, b: CacheStats | None) -> CacheStats | None:
    if a is None:
        return b
    if b is None:
        return a
    return a + b
