"""Host-side performance instrumentation for simulator runs.

:class:`PerfStats` records *real* (host wall-clock) seconds spent in each
engine phase, as opposed to the simulated seconds the
:class:`~repro.sim.clock.Clock` accounts.  It exists so the performance
work — vectorized hot paths, the trace cache, the parallel matrix runner
— can be measured and regression-gated (``benchmarks/bench_perf_smoke.py``)
without touching simulated timing, which must stay bit-identical across
all of those switches.

The measurements never feed back into the simulation, so the
instrumentation itself cannot perturb results.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters snapshot from a :class:`~repro.sim.tracecache.TraceCache`.

    Attributes:
        hits: batch requests served from memoized streams.
        misses: batch requests that had to synthesize the batch.
        evictions: whole streams dropped to fit the byte budget.
        cached_bytes: bytes currently held across all cached streams.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of batch requests served from cache (0 when unused)."""
        total = self.requests
        if total == 0:
            return 0.0
        return self.hits / total

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_bytes": self.cached_bytes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PerfStats:
    """Per-phase host wall-time of one engine run.

    Attributes:
        workload_seconds: batch synthesis (or cache lookup) time.
        profile_seconds: profiler passes.
        migrate_seconds: policy decisions plus planner execution.
        total_seconds: whole ``run()`` call, including phases not broken
            out above (MMU application, PCM counting, bookkeeping).
        intervals: intervals simulated.
        cache: trace-cache counters, when a cache served this run.
    """

    workload_seconds: float = 0.0
    profile_seconds: float = 0.0
    migrate_seconds: float = 0.0
    total_seconds: float = 0.0
    intervals: int = 0
    cache: CacheStats | None = field(default=None)

    @property
    def other_seconds(self) -> float:
        """Wall time not attributed to a named phase."""
        accounted = self.workload_seconds + self.profile_seconds + self.migrate_seconds
        return max(0.0, self.total_seconds - accounted)

    def merge(self, other: "PerfStats") -> "PerfStats":
        """Aggregate two runs' stats (cache counters are not summed —
        the caller snapshots the shared cache once instead)."""
        return PerfStats(
            workload_seconds=self.workload_seconds + other.workload_seconds,
            profile_seconds=self.profile_seconds + other.profile_seconds,
            migrate_seconds=self.migrate_seconds + other.migrate_seconds,
            total_seconds=self.total_seconds + other.total_seconds,
            intervals=self.intervals + other.intervals,
            cache=self.cache if self.cache is not None else other.cache,
        )

    def as_dict(self) -> dict:
        """JSON-ready snapshot (used by the perf-smoke benchmark)."""
        out = {
            "workload_seconds": self.workload_seconds,
            "profile_seconds": self.profile_seconds,
            "migrate_seconds": self.migrate_seconds,
            "other_seconds": self.other_seconds,
            "total_seconds": self.total_seconds,
            "intervals": self.intervals,
        }
        if self.cache is not None:
            out["cache"] = self.cache.as_dict()
        return out
