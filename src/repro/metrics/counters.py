"""Hot-volume and migration accounting (Tables 3 and 5).

Table 3 reports the *volume of hot pages identified* by each solution and
the resulting fast-tier access counts.  :class:`HotVolumeTracker`
accumulates the unique pages a solution ever classified hot (detected in
its top regions or promoted), which is the closest observable analogue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.profile.base import ProfileSnapshot
from repro.units import PAGE_SIZE, format_bytes

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.engine import SimulationResult


class HotVolumeTracker:
    """Accumulates the unique pages ever identified as hot.

    Args:
        n_pages: address-space size in pages.
        detect_volume: per-interval detection budget in pages (how many
            pages a snapshot's hottest regions may contribute).
    """

    def __init__(self, n_pages: int, detect_volume: int) -> None:
        if n_pages < 1 or detect_volume < 1:
            raise ConfigError("n_pages and detect_volume must be >= 1")
        self.detect_volume = detect_volume
        self._seen = np.zeros(n_pages, dtype=bool)

    def record(self, snapshot: ProfileSnapshot) -> None:
        """Fold one interval's hottest pages into the cumulative set."""
        pages = snapshot.top_hot_pages(self.detect_volume)
        if pages.size:
            self._seen[pages] = True

    @property
    def volume_pages(self) -> int:
        return int(np.count_nonzero(self._seen))

    @property
    def volume_bytes(self) -> int:
        return self.volume_pages * PAGE_SIZE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"HotVolumeTracker({format_bytes(self.volume_bytes)})"


@dataclass(frozen=True)
class MigrationSummary:
    """Aggregate migration behaviour of one run."""

    label: str
    promoted_bytes: int
    demoted_bytes: int
    orders: int
    skipped: int
    sync_switches: int
    huge_pages_torn: int
    critical_seconds: float
    background_seconds: float


def migration_summary(result: SimulationResult) -> MigrationSummary:
    """Extract the migration log of a run into a report-friendly record."""
    log = result.migration_log
    return MigrationSummary(
        label=result.label,
        promoted_bytes=log.promoted_bytes,
        demoted_bytes=log.demoted_bytes,
        orders=log.orders_executed,
        skipped=log.orders_skipped,
        sync_switches=log.sync_switches,
        huge_pages_torn=log.huge_pages_torn,
        critical_seconds=log.critical_time,
        background_seconds=log.background_time,
    )
