"""Execution-time breakdowns (Fig. 5).

Splits a run's critical-path time into application execution, profiling,
and migration — plus the overlapped background migration work that, being
asynchronous, does *not* appear in end-to-end time (MTM's whole point in
Sec. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.units import format_time

if TYPE_CHECKING:
    from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class TimeBreakdown:
    """One run's time split.

    Attributes:
        label: solution name.
        app: application execution seconds.
        profiling: profiling seconds on the critical path.
        migration: migration seconds on the critical path.
        background: overlapped (asynchronous) migration seconds.
    """

    label: str
    app: float
    profiling: float
    migration: float
    background: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end critical-path time."""
        return self.app + self.profiling + self.migration

    def profiling_share(self) -> float:
        """Profiling as a fraction of total (the 5% constraint check)."""
        if self.total == 0:
            return 0.0
        return self.profiling / self.total

    def migration_share(self) -> float:
        if self.total == 0:
            return 0.0
        return self.migration / self.total

    @classmethod
    def from_result(cls, result: SimulationResult) -> "TimeBreakdown":
        b = result.breakdown()
        return cls(
            label=result.label,
            app=b["app"],
            profiling=b["profiling"],
            migration=b["migration"],
            background=result.clock.background_time,
        )


def breakdown_table(breakdowns: list[TimeBreakdown]) -> str:
    """Text table of breakdowns, one row per solution (Fig. 5's data)."""
    header = f"{'solution':<26} {'total':>10} {'app':>10} {'profiling':>10} {'migration':>10} {'async(bg)':>10}"
    lines = [header, "-" * len(header)]
    for b in breakdowns:
        lines.append(
            f"{b.label:<26} {format_time(b.total):>10} {format_time(b.app):>10} "
            f"{format_time(b.profiling):>10} {format_time(b.migration):>10} "
            f"{format_time(b.background):>10}"
        )
    return "\n".join(lines)
