"""Plain-text table and series formatting for the benchmark harness.

Every benchmark prints the rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class Table:
    """A simple left-aligned text table.

    Attributes:
        title: printed above the table.
        columns: header labels.
    """

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ed."""
        if len(cells) != len(self.columns):
            raise ConfigError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "  ".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title), fmt(self.columns), sep]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def normalize(values: dict[str, float], baseline: str) -> dict[str, float]:
    """Normalize a {name: value} map to one entry (Fig. 4's presentation).

    Raises:
        ConfigError: if the baseline is missing or non-positive.
    """
    if baseline not in values:
        raise ConfigError(f"baseline {baseline!r} not in {sorted(values)}")
    base = values[baseline]
    if base <= 0:
        raise ConfigError(f"baseline value must be positive, got {base}")
    return {name: value / base for name, value in values.items()}


def format_series(name: str, xs: list, ys: list, x_label: str = "x", y_label: str = "y") -> str:
    """Two-column series dump (the data behind a figure's line)."""
    if len(xs) != len(ys):
        raise ConfigError("xs and ys lengths differ")
    lines = [f"# series: {name}", f"# {x_label:>12} {y_label:>14}"]
    for x, y in zip(xs, ys):
        y_text = f"{y:.6g}" if isinstance(y, float) else str(y)
        lines.append(f"{str(x):>14} {y_text:>14}")
    return "\n".join(lines)
