"""Robustness accounting: faults absorbed, recovery work, degraded time.

Companion to :func:`~repro.metrics.counters.migration_summary` for runs
with a fault injector attached.  Collapses the engine's
:class:`~repro.faults.injector.FaultLog`, the planner's retry counters,
and the degraded-interval record into one report-friendly dataclass, so
the resilience benchmark and the CLI print the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.metrics.report import Table

if TYPE_CHECKING:
    from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class RobustnessReport:
    """Fault and recovery behaviour of one run.

    Attributes:
        label: the run's label.
        fault_events: total injected fault events across all models.
        busy_events: partial-migration EBUSY events.
        busy_pages: pages bounced by EBUSY (retried later).
        enomem_events: destination-allocation ENOMEM events.
        sample_loss_events: PEBS buffer-overflow events.
        samples_dropped: PEBS samples lost to injected overflows.
        truncated_scans: profiling scans cut short.
        helper_stalls: async helper-thread stall events.
        retries_scheduled: transient failures queued for backoff retry.
        retries_succeeded: queued retries that eventually committed.
        retries_exhausted: orders dropped after the attempt budget.
        fallback_moves: orders that committed through the fallback
            (sync ``move_pages()``) mechanism.
        demoted_for_room_pages: cold pages demoted to make promotion room.
        degraded_intervals: intervals run in degraded mode (watchdog shed
            or transient abort).
        intervals: total intervals simulated.
    """

    label: str
    fault_events: int
    busy_events: int
    busy_pages: int
    enomem_events: int
    sample_loss_events: int
    samples_dropped: int
    truncated_scans: int
    helper_stalls: int
    retries_scheduled: int
    retries_succeeded: int
    retries_exhausted: int
    fallback_moves: int
    demoted_for_room_pages: int
    degraded_intervals: int
    intervals: int

    @property
    def degraded_share(self) -> float:
        if self.intervals == 0:
            return 0.0
        return self.degraded_intervals / self.intervals

    @property
    def retry_success_rate(self) -> float:
        if self.retries_scheduled == 0:
            return 1.0
        return self.retries_succeeded / self.retries_scheduled


def robustness_summary(result: SimulationResult) -> RobustnessReport:
    """Extract one run's fault/recovery counters.

    Works for fault-free runs too (all fault counters zero), so callers
    can tabulate mixed sweeps without special-casing rate 0.
    """
    faults = result.fault_log
    log = result.migration_log
    return RobustnessReport(
        label=result.label,
        fault_events=faults.total_events if faults is not None else 0,
        busy_events=faults.busy_events if faults is not None else 0,
        busy_pages=faults.busy_pages if faults is not None else 0,
        enomem_events=faults.enomem_events if faults is not None else 0,
        sample_loss_events=faults.sample_loss_events if faults is not None else 0,
        samples_dropped=faults.samples_dropped if faults is not None else 0,
        truncated_scans=faults.truncated_scans if faults is not None else 0,
        helper_stalls=faults.helper_stalls if faults is not None else 0,
        retries_scheduled=log.retries_scheduled,
        retries_succeeded=log.retries_succeeded,
        retries_exhausted=log.retries_exhausted,
        fallback_moves=log.fallback_moves,
        demoted_for_room_pages=log.demoted_for_room_pages,
        degraded_intervals=result.degraded_intervals,
        intervals=len(result.records),
    )


def robustness_table(reports: list[RobustnessReport], title: str = "Robustness") -> Table:
    """Tabulate a fault-rate sweep (one report per run)."""
    table = Table(
        title,
        ["run", "faults", "retries", "ok", "exhausted", "fallback", "degraded"],
    )
    for r in reports:
        table.add_row(
            r.label,
            str(r.fault_events),
            str(r.retries_scheduled),
            str(r.retries_succeeded),
            str(r.retries_exhausted),
            str(r.fallback_moves),
            f"{r.degraded_intervals} ({r.degraded_share:.0%})",
        )
    return table
