"""Measurement and reporting utilities.

Everything the paper's tables and figures read out: time breakdowns
(Fig. 5), access heatmaps (Fig. 6), hot-page volume accounting (Table 3),
memory-overhead accounting (Table 5), and plain-text table/series
formatters used by the benchmark harness.
"""

from repro.metrics.ascii_plot import ascii_plot
from repro.metrics.breakdown import TimeBreakdown, breakdown_table
from repro.metrics.heatmap import AccessHeatmap
from repro.metrics.counters import HotVolumeTracker, migration_summary
from repro.metrics.report import (
    Table,
    format_series,
    normalize,
)
from repro.metrics.robustness import (
    RobustnessReport,
    robustness_summary,
    robustness_table,
)

__all__ = [
    "ascii_plot",
    "TimeBreakdown",
    "breakdown_table",
    "AccessHeatmap",
    "HotVolumeTracker",
    "migration_summary",
    "RobustnessReport",
    "robustness_summary",
    "robustness_table",
    "Table",
    "format_series",
    "normalize",
]
