"""``move_memory_regions()``: the paper's new migration API (Sec. 7.2/8).

Takes the same inputs as Linux ``move_pages()`` — a set of pages and a
destination node — but migrates through MTM's adaptive mechanism: helper
threads copy asynchronously, dirtiness is tracked through the reserved PTE
bit, and a mid-copy write switches the move to the synchronous scheme.

This module exposes it as a plain function over the simulator's kernel
objects, mirroring how the daemon service calls into the kernel module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MigrationError
from repro.hw.frames import FrameAccountant
from repro.migrate.mechanism import MigrationTiming
from repro.migrate.mtm_mechanism import MoveMemoryRegionsMechanism, MtmMechanismConfig
from repro.migrate.planner import MigrationPlanner
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.policy.base import MigrationOrder
from repro.sim.costmodel import CostModel


def move_memory_regions(
    page_table: PageTable,
    frames: FrameAccountant,
    cost_model: CostModel,
    pages: np.ndarray,
    dst_node: int,
    mmu: Mmu | None = None,
    config: MtmMechanismConfig | None = None,
    rng: np.random.Generator | None = None,
) -> MigrationTiming:
    """Move ``pages`` to ``dst_node`` with the adaptive mechanism.

    All pages must currently reside on a single source node (one region),
    as with the kernel API.  Returns the timing split into critical-path
    and background (overlapped) work; the page table and frame accounting
    are updated on success.

    Raises:
        MigrationError: if the pages span several source nodes, are
            unmapped, or the destination lacks capacity.
    """
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size == 0:
        raise MigrationError("no pages to move")
    nodes = np.unique(page_table.node_of(pages))
    if nodes.size != 1 or nodes[0] < 0:
        raise MigrationError(f"pages span nodes {nodes.tolist()}; move one region at a time")
    src_node = int(nodes[0])
    if src_node == dst_node:
        raise MigrationError("pages already on the destination node")
    if not frames.can_fit(dst_node, int(pages.size)):
        raise MigrationError(f"node {dst_node} lacks capacity for {pages.size} pages")

    mechanism = MoveMemoryRegionsMechanism(cost_model, config=config, rng=rng)
    planner = MigrationPlanner(page_table, frames, mechanism)
    order = MigrationOrder(pages=pages, src_node=src_node, dst_node=dst_node)
    timing = planner.execute([order], mmu)
    if planner.log.orders_executed != 1:
        raise MigrationError("migration was skipped; check placement state")
    return timing
