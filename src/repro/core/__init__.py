"""The MTM page-management system: high-level API and baseline factory.

:class:`~repro.core.manager.MtmManager` is the paper's user-space daemon
service as a library object: point it at a workload and it profiles,
decides, and migrates per interval.  :mod:`repro.core.baselines` builds the
same machinery for every baseline the paper evaluates, so comparative
experiments are one call per solution.
"""

from repro.core.manager import MtmManager, MtmSystemConfig
from repro.core.api import move_memory_regions
from repro.core.baselines import (
    SOLUTIONS,
    SolutionSpec,
    make_engine,
    solution_names,
)

__all__ = [
    "MtmManager",
    "MtmSystemConfig",
    "move_memory_regions",
    "SOLUTIONS",
    "SolutionSpec",
    "make_engine",
    "solution_names",
]
