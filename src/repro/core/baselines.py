"""Solution factory: MTM, its ablations, and every evaluated baseline.

Each entry builds a fully wired :class:`~repro.sim.engine.SimulationEngine`
for one of the solutions in the paper's evaluation (Sec. 9), with the
baselines configured exactly as the paper describes — same migration
throughput cap, same profiling overhead target, their own profiling and
policy quirks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.hw.topology import TierTopology, optane_4tier
from repro.migrate.mechanism import Mechanism
from repro.migrate.move_pages import MovePagesMechanism
from repro.migrate.mtm_mechanism import MoveMemoryRegionsMechanism
from repro.migrate.nimble import NimbleMechanism
from repro.policy.autotiering import AutoTieringConfig, AutoTieringPolicy
from repro.policy.base import Policy
from repro.policy.first_touch import FirstTouchPolicy
from repro.policy.hemem_policy import HeMemPolicy, HeMemPolicyConfig
from repro.policy.mtm_policy import MtmPolicy, MtmPolicyConfig
from repro.policy.thermostat_policy import ThermostatPolicy, ThermostatPolicyConfig
from repro.policy.tiered_autonuma import TieredAutoNumaConfig, TieredAutoNumaPolicy
from repro.profile.autonuma import RandomWindowConfig, RandomWindowProfiler
from repro.profile.base import Profiler
from repro.profile.hemem import PebsOnlyProfiler
from repro.profile.mtm import MtmProfiler, MtmProfilerConfig
from repro.profile.thermostat import ThermostatProfiler
from repro.sim.costmodel import CostModel, CostParams, effective_interval
from repro.sim.engine import (
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_PM_ONLY,
    PLACEMENT_SLOW_TIER_FIRST,
    SimulationEngine,
)
from repro.sim.rng import make_rng
from repro.workloads.base import Workload
from repro.workloads.registry import build_workload

if TYPE_CHECKING:
    from repro.obs.context import ObsContext
    from repro.sim.tracecache import TraceCache


@dataclass(frozen=True)
class SolutionSpec:
    """Static description of one solution.

    Attributes:
        name: registry key.
        description: one-liner for reports.
        placement: initial placement strategy.
        hmc: hardware cache mode.
    """

    name: str
    description: str
    placement: str = PLACEMENT_FIRST_TOUCH
    hmc: bool = False


SOLUTIONS: dict[str, SolutionSpec] = {
    "first-touch": SolutionSpec(
        "first-touch", "first-touch NUMA allocation, no migration"
    ),
    "hmc": SolutionSpec(
        "hmc", "hardware-managed DRAM cache (Optane Memory Mode)",
        placement=PLACEMENT_PM_ONLY, hmc=True,
    ),
    "vanilla-tiered-autonuma": SolutionSpec(
        "vanilla-tiered-autonuma", "Linux tiered-AutoNUMA without the hot-page patches"
    ),
    "tiered-autonuma": SolutionSpec(
        "tiered-autonuma", "tiered-AutoNUMA with MFU hot-page selection patches"
    ),
    "autotiering": SolutionSpec(
        "autotiering", "AutoTiering (ATC'21): flexible but unranked migration"
    ),
    "hemem": SolutionSpec(
        "hemem", "HeMem (SOSP'21): PEBS-only profiling, two-tier policy"
    ),
    "thermostat": SolutionSpec(
        "thermostat", "Thermostat (ASPLOS'17): fixed regions, demotion-driven"
    ),
    "damon": SolutionSpec(
        "damon", "DAMON monitor + DAMOS migrate_hot/cold schemes (extension)"
    ),
    "mtm": SolutionSpec(
        "mtm", "MTM: adaptive profiling + global fast-promotion policy",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
    # Ablations (Fig. 7).
    "mtm-no-amr": SolutionSpec(
        "mtm-no-amr", "MTM without adaptive memory regions",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
    "mtm-no-aps": SolutionSpec(
        "mtm-no-aps", "MTM with random PTE-scan distribution",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
    "mtm-no-oc": SolutionSpec(
        "mtm-no-oc", "MTM without profiling overhead control",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
    "mtm-no-pebs": SolutionSpec(
        "mtm-no-pebs", "MTM without performance-counter assistance",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
    "mtm-sync": SolutionSpec(
        "mtm-sync", "MTM with synchronous page migration only",
        placement=PLACEMENT_SLOW_TIER_FIRST,
    ),
}


def solution_names() -> list[str]:
    """All registered solution names."""
    return list(SOLUTIONS)


def make_engine(
    solution: str,
    workload: Workload | str,
    scale: float,
    topology: TierTopology | None = None,
    interval: float | None = None,
    overhead_constraint: float = 0.05,
    seed: int = 0,
    socket: int = 0,
    collect_quality: bool = False,
    cost_params: CostParams | None = None,
    mtm_profiler_config: MtmProfilerConfig | None = None,
    mtm_policy_config: MtmPolicyConfig | None = None,
    injector: FaultInjector | None = None,
    recovery: bool = True,
    trace_cache: "TraceCache | None" = None,
    obs: "ObsContext | None" = None,
) -> SimulationEngine:
    """Build a ready-to-run engine for ``solution`` on ``workload``.

    Args:
        solution: one of :func:`solution_names`.
        workload: a built-but-not-attached workload object, or a registry
            name (built at ``scale`` with ``seed``).
        scale: machine capacity scale; also scales the effective interval
            and migration budgets.
        topology: machine override (default: the 4-tier Optane testbed at
            ``scale``).
        interval: profiling interval t_mi in simulated seconds (``None``
            = the paper's 10 s scaled by ``scale``).
        overhead_constraint: profiling overhead target (paper default 5%).
        mtm_profiler_config / mtm_policy_config: overrides for sensitivity
            studies (tau/alpha sweeps); ignored by non-MTM solutions.
        injector: optional fault injector threaded through the engine.
        recovery: ``False`` disables the planner's retry/backoff queue
            (fail-fast; transient faults surface as degraded intervals).
        trace_cache: optional shared batch-stream cache.  Only consumed
            when ``workload`` is a registry *name* (the cache key needs
            the exact ``(name, scale, seed)`` the stream derives from);
            a pre-built workload object runs uncached.
        obs: optional observability context; events, spans, metrics, and
            migration provenance from this engine land there.
    """
    if solution not in SOLUTIONS:
        raise ConfigError(f"unknown solution {solution!r}; choose from {solution_names()}")
    spec = SOLUTIONS[solution]
    if topology is None:
        topology = optane_4tier(scale)
    trace_key: tuple[str, float, int] | None = None
    if isinstance(workload, str):
        if trace_cache is not None:
            trace_key = (workload, float(scale), int(seed))
        workload = build_workload(workload, scale, seed=seed)
    else:
        trace_cache = None
    params = cost_params if cost_params is not None else CostParams().with_scale(scale)
    if interval is None:
        interval = effective_interval(params.scale)
    cost_model = CostModel(topology, params)
    rng = make_rng(seed + 17)

    profiler: Profiler | None = None
    policy: Policy
    mechanism: Mechanism | None = None

    if solution == "first-touch":
        policy = FirstTouchPolicy()
    elif solution == "hmc":
        policy = FirstTouchPolicy()
    elif solution in ("vanilla-tiered-autonuma", "tiered-autonuma"):
        patched = solution == "tiered-autonuma"
        # The patched kernel's NUMA-balancing scanner covers ~1 GB per
        # interval; vanilla sticks to the classic 256 MB window.
        from repro.units import GiB, MiB

        profiler = RandomWindowProfiler(
            cost_model,
            RandomWindowConfig(
                interval=interval,
                mfu=patched,
                window_bytes=(1 * GiB if patched else 256 * MiB),
            ),
            rng=rng,
        )
        policy = TieredAutoNumaPolicy(
            TieredAutoNumaConfig(scale=scale, auto_threshold=patched, default_socket=socket)
        )
        mechanism = MovePagesMechanism(cost_model)
    elif solution == "autotiering":
        profiler = RandomWindowProfiler(
            cost_model,
            RandomWindowConfig(interval=interval, mfu=False),
            rng=rng,
        )
        policy = AutoTieringPolicy(
            AutoTieringConfig(scale=scale, default_socket=socket, seed=seed)
        )
        mechanism = MovePagesMechanism(cost_model)
    elif solution == "hemem":
        profiler = PebsOnlyProfiler(cost_model, rng=rng)
        policy = HeMemPolicy(HeMemPolicyConfig(scale=scale, default_socket=socket))
        mechanism = NimbleMechanism(cost_model)
    elif solution == "damon":
        from repro.policy.damos import DamosConfig, DamosPolicy
        from repro.profile.damon import DamonConfig, DamonProfiler

        profiler = DamonProfiler(
            cost_model,
            DamonConfig(interval=interval, overhead_constraint=overhead_constraint),
            rng=rng,
        )
        policy = DamosPolicy(DamosConfig(scale=scale, default_socket=socket))
        mechanism = MovePagesMechanism(cost_model)
    elif solution == "thermostat":
        from repro.profile.thermostat import ThermostatConfig

        profiler = ThermostatProfiler(
            cost_model, ThermostatConfig(interval=interval, overhead_constraint=overhead_constraint),
            rng=rng,
        )
        policy = ThermostatPolicy(
            ThermostatPolicyConfig(scale=scale, default_socket=socket)
        )
        mechanism = MovePagesMechanism(cost_model)
    else:  # mtm and its ablations
        prof_cfg = mtm_profiler_config
        if prof_cfg is None:
            prof_cfg = MtmProfilerConfig(
                interval=interval, overhead_constraint=overhead_constraint
            )
        if solution == "mtm-no-amr":
            prof_cfg.adaptive_regions = False
        elif solution == "mtm-no-aps":
            prof_cfg.adaptive_sampling = False
        elif solution == "mtm-no-oc":
            prof_cfg.overhead_control = False
        elif solution == "mtm-no-pebs":
            prof_cfg.use_pebs = False
        profiler = MtmProfiler(cost_model, prof_cfg, rng=rng)
        pol_cfg = mtm_policy_config
        if pol_cfg is None:
            pol_cfg = MtmPolicyConfig(scale=scale, default_socket=socket)
        policy = MtmPolicy(pol_cfg)
        mechanism = MoveMemoryRegionsMechanism(
            cost_model, rng=rng, force_sync=(solution == "mtm-sync")
        )

    return SimulationEngine(
        topology=topology,
        workload=workload,
        policy=policy,
        profiler=profiler,
        mechanism=mechanism,
        placement=spec.placement,
        cost_params=params,
        interval=interval,
        seed=seed,
        socket=socket,
        collect_quality=collect_quality,
        hmc=spec.hmc,
        label=solution,
        injector=injector,
        recovery=recovery,
        trace_cache=trace_cache,
        trace_key=trace_key,
        obs=obs,
    )
