"""MtmManager: the user-space daemon service as a library object (Sec. 8).

The paper implements MTM as a kernel module (profiling) plus a user-space
daemon (policy + migration).  This class is that daemon for simulator
users: construct it over a machine, attach a workload, and either run a
number of intervals in one call or step interval by interval.

Example:
    >>> from repro.core import MtmManager
    >>> from repro.workloads import build_workload
    >>> mgr = MtmManager(scale=1 / 256)
    >>> result = mgr.run(build_workload("gups", 1 / 256), num_intervals=50)
    >>> result.fast_tier_share() > 0
    True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.injector import FaultConfig, FaultInjector
from repro.hw.topology import TierTopology, optane_4tier
from repro.profile.mtm import MtmProfilerConfig
from repro.policy.mtm_policy import MtmPolicyConfig
from repro.sim.costmodel import CostParams
from repro.sim.engine import IntervalRecord, SimulationEngine, SimulationResult
from repro.workloads.base import Workload


@dataclass
class MtmSystemConfig:
    """Everything configurable about an MTM deployment.

    Attributes:
        scale: machine capacity scale (1.0 = the paper's testbed sizes).
        interval: profiling interval t_mi in simulated seconds; ``None``
            uses the paper's 10 s scaled by ``scale``.
        overhead_constraint: profiling overhead target (paper: 5%).
        socket: viewpoint socket for tier ranking.
        seed: master RNG seed.
        profiler: MTM profiler overrides (tau, num_scans, ablations...).
        policy: MTM policy overrides (alpha is on the profiler; budget,
            buckets here).
        collect_quality: score profiling against workload ground truth.
        faults: fault-model rates, or a single uniform rate as a float;
            ``None`` / all-zero rates attach no injector (bit-identical
            to a fault-free deployment).
        fault_seed: seed for the injector's private RNG stream.
        recovery: ``False`` runs the daemon fail-fast — transient faults
            abort the interval instead of entering the retry queue.
    """

    scale: float = 1.0 / 128.0
    interval: float | None = None
    overhead_constraint: float = 0.05
    socket: int = 0
    seed: int = 0
    profiler: MtmProfilerConfig | None = None
    policy: MtmPolicyConfig | None = None
    collect_quality: bool = False
    faults: FaultConfig | float | None = None
    fault_seed: int = 0
    recovery: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.interval is not None and self.interval <= 0:
            raise ConfigError(f"interval must be positive, got {self.interval}")
        if isinstance(self.faults, (int, float)) and not isinstance(self.faults, bool):
            self.faults = FaultConfig.uniform(float(self.faults))

    def make_injector(self) -> FaultInjector | None:
        """Build the configured injector, or ``None`` when fault-free."""
        if self.faults is None or not self.faults.enabled:
            return None
        return FaultInjector(self.faults, seed=self.fault_seed)


class MtmManager:
    """High-level entry point: manage a workload with MTM.

    Args:
        topology: machine (default: 4-tier Optane testbed at ``scale``).
        scale: capacity scale used when building the default topology.
        config: deployment configuration.
    """

    def __init__(
        self,
        topology: TierTopology | None = None,
        scale: float | None = None,
        config: MtmSystemConfig | None = None,
    ) -> None:
        self.config = config if config is not None else MtmSystemConfig()
        if scale is not None:
            self.config.scale = scale
        self.topology = topology if topology is not None else optane_4tier(self.config.scale)
        self._engine: SimulationEngine | None = None

    def attach(self, workload: Workload) -> SimulationEngine:
        """Wire MTM around ``workload``; returns the live engine."""
        from repro.core.baselines import make_engine

        cfg = self.config
        from repro.sim.costmodel import effective_interval

        interval = cfg.interval if cfg.interval is not None else effective_interval(cfg.scale)
        prof_cfg = cfg.profiler
        if prof_cfg is None:
            prof_cfg = MtmProfilerConfig(
                interval=interval, overhead_constraint=cfg.overhead_constraint
            )
        pol_cfg = cfg.policy
        if pol_cfg is None:
            pol_cfg = MtmPolicyConfig(scale=cfg.scale, default_socket=cfg.socket)
        self._engine = make_engine(
            "mtm",
            workload,
            scale=cfg.scale,
            topology=self.topology,
            interval=interval,
            overhead_constraint=cfg.overhead_constraint,
            seed=cfg.seed,
            socket=cfg.socket,
            collect_quality=cfg.collect_quality,
            cost_params=CostParams().with_scale(cfg.scale),
            mtm_profiler_config=prof_cfg,
            mtm_policy_config=pol_cfg,
            injector=cfg.make_injector(),
            recovery=cfg.recovery,
        )
        return self._engine

    @property
    def engine(self) -> SimulationEngine:
        if self._engine is None:
            raise ConfigError("no workload attached; call attach() or run()")
        return self._engine

    def run(self, workload: Workload, num_intervals: int) -> SimulationResult:
        """Attach ``workload`` and simulate ``num_intervals`` intervals."""
        self.attach(workload)
        return self.engine.run(num_intervals)

    def step(self) -> IntervalRecord:
        """Advance the attached system by one profiling interval."""
        return self.engine.step()

    def result(self) -> SimulationResult:
        """Results so far for the attached system."""
        return self.engine.result()
