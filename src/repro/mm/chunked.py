"""Chunked storage for page-granular state arrays.

Dense per-page arrays cost O(n_pages) memory the moment an address
space is created — at the paper's regime (hundreds of GB, hundreds of
millions of base pages) that is tens of GB of simulator state per
array, mostly holding the fill value.  :class:`ChunkedArray` divides
the index space into fixed-size power-of-two chunks where each chunk is
either a **scalar** (every element holds that value — the initial state
of all chunks, and again whenever a whole chunk is assigned one value)
or a **dense ndarray**, materialized the first time a chunk is written
non-uniformly.  Sparse workloads therefore pay for the chunks they
touch, not the footprint.

The class implements the indexing surface the simulator's hot paths
actually use — integer/slice/fancy get and set (including the
read-modify-write ``arr[idx] |= x`` desugaring), ``fill``, ``add_at``
(the ``np.add.at`` equivalent), whole-array ``== scalar``, and
``__array__`` — so :class:`~repro.mm.pagetable.PageTable` and
:class:`~repro.mm.mmu.Mmu` can swap it in without changing callers.
Scatter order is preserved per chunk, so duplicate-index assignment
keeps numpy's last-write-wins semantics and stays bit-identical to the
dense arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Default chunk length in elements (256 Ki pages = 1 GB of 4 KB pages).
DEFAULT_CHUNK_PAGES = 1 << 18


class ChunkedArray:
    """A 1-D array of ``n`` elements stored as scalar-or-dense chunks."""

    __slots__ = ("n", "dtype", "fill_value", "chunk_pages", "_shift", "_chunks")

    def __init__(self, n: int, dtype, fill_value, chunk_pages: int = DEFAULT_CHUNK_PAGES) -> None:
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        if chunk_pages < 1 or chunk_pages & (chunk_pages - 1):
            raise ConfigError(f"chunk_pages must be a power of two, got {chunk_pages}")
        self.n = n
        self.dtype = np.dtype(dtype)
        self.fill_value = self.dtype.type(fill_value)
        self.chunk_pages = chunk_pages
        self._shift = chunk_pages.bit_length() - 1
        nchunks = -(-n // chunk_pages)
        self._chunks: list = [self.fill_value] * nchunks

    # -- shape protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple[int]:
        return (self.n,)

    @property
    def size(self) -> int:
        return self.n

    def __len__(self) -> int:
        return self.n

    def _chunk_len(self, c: int) -> int:
        return min(self.n - (c << self._shift), self.chunk_pages)

    def _dense(self, c: int) -> np.ndarray:
        """The dense backing of chunk ``c``, materializing it if uniform."""
        data = self._chunks[c]
        if not isinstance(data, np.ndarray):
            data = np.full(self._chunk_len(c), data, dtype=self.dtype)
            self._chunks[c] = data
        return data

    def chunks(self):
        """Yield ``(start, end, data)`` per chunk; ``data`` is scalar or array."""
        for c, data in enumerate(self._chunks):
            start = c << self._shift
            yield start, start + self._chunk_len(c), data

    def _grouped(self, idx: np.ndarray):
        """Yield ``(chunk, positions)`` with positions in ascending order.

        Ascending position order per chunk preserves numpy's
        last-write-wins scatter semantics for duplicate indices.
        """
        cid = idx >> self._shift
        if idx.size == 0:
            return
        if np.all(cid[1:] >= cid[:-1]):
            uniq = np.unique(cid)
            lefts = np.searchsorted(cid, uniq, side="left")
            rights = np.searchsorted(cid, uniq, side="right")
            for c, lo, hi in zip(uniq, lefts, rights):
                yield int(c), slice(int(lo), int(hi))
        else:
            for c in np.unique(cid):
                yield int(c), np.flatnonzero(cid == c)

    # -- reads -----------------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            i = int(key)
            if i < 0:
                i += self.n
            data = self._chunks[i >> self._shift]
            if isinstance(data, np.ndarray):
                return data[i - ((i >> self._shift) << self._shift)]
            return data
        if isinstance(key, slice):
            start, stop, step = key.indices(self.n)
            if step != 1:
                return self.__getitem__(np.arange(start, stop, step, dtype=np.int64))
            out = np.empty(max(stop - start, 0), dtype=self.dtype)
            pos = start
            while pos < stop:
                c = pos >> self._shift
                cstart = c << self._shift
                hi = min(stop, cstart + self._chunk_len(c))
                data = self._chunks[c]
                if isinstance(data, np.ndarray):
                    out[pos - start : hi - start] = data[pos - cstart : hi - cstart]
                else:
                    out[pos - start : hi - start] = data
                pos = hi
            return out
        idx = np.asarray(key)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        idx = idx.astype(np.int64, copy=False)
        out = np.empty(idx.size, dtype=self.dtype)
        for c, sel in self._grouped(idx):
            data = self._chunks[c]
            if isinstance(data, np.ndarray):
                out[sel] = data[idx[sel] - (c << self._shift)]
            else:
                out[sel] = data
        return out

    # -- writes ----------------------------------------------------------------

    def __setitem__(self, key, value) -> None:
        if isinstance(key, (int, np.integer)):
            i = int(key)
            if i < 0:
                i += self.n
            self._dense(i >> self._shift)[i - ((i >> self._shift) << self._shift)] = value
            return
        if isinstance(key, slice):
            start, stop, step = key.indices(self.n)
            if step != 1:
                self.__setitem__(np.arange(start, stop, step, dtype=np.int64), value)
                return
            if stop <= start:
                return
            scalar = np.ndim(value) == 0
            vals = None if scalar else np.asarray(value)
            pos = start
            while pos < stop:
                c = pos >> self._shift
                cstart = c << self._shift
                clen = self._chunk_len(c)
                hi = min(stop, cstart + clen)
                if scalar:
                    if pos == cstart and hi == cstart + clen:
                        # Whole-chunk uniform assignment collapses back
                        # to scalar storage.
                        self._chunks[c] = self.dtype.type(value)
                    else:
                        data = self._chunks[c]
                        if isinstance(data, np.ndarray) or data != self.dtype.type(value):
                            self._dense(c)[pos - cstart : hi - cstart] = value
                else:
                    self._dense(c)[pos - cstart : hi - cstart] = vals[pos - start : hi - start]
                pos = hi
            return
        idx = np.asarray(key)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        idx = idx.astype(np.int64, copy=False)
        if idx.size == 0:
            return
        scalar = np.ndim(value) == 0
        vals = None if scalar else np.asarray(value)
        for c, sel in self._grouped(idx):
            local = idx[sel] - (c << self._shift)
            if scalar:
                data = self._chunks[c]
                if not isinstance(data, np.ndarray) and data == self.dtype.type(value):
                    continue
                self._dense(c)[local] = value
            else:
                self._dense(c)[local] = vals[sel]

    def fill(self, value) -> None:
        """Set every element to ``value`` (all chunks become scalar)."""
        v = self.dtype.type(value)
        self._chunks = [v] * len(self._chunks)

    def add_at(self, idx: np.ndarray, vals: np.ndarray) -> None:
        """``np.add.at`` semantics: unbuffered scatter-add (dupes accumulate)."""
        idx = np.asarray(idx, dtype=np.int64)
        for c, sel in self._grouped(idx):
            np.add.at(self._dense(c), idx[sel] - (c << self._shift), vals[sel])

    # -- whole-array operations ------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        if np.ndim(other) == 0:
            out = np.empty(self.n, dtype=bool)
            for start, end, data in self.chunks():
                out[start:end] = data == other
            return out
        return np.asarray(self) == other

    def __ne__(self, other):  # type: ignore[override]
        result = self.__eq__(other)
        return ~result

    def __hash__(self) -> int:  # eq returns arrays; identity hash keeps pickling sane
        return id(self)

    def __array__(self, dtype=None, copy=None):
        out = np.empty(self.n, dtype=self.dtype)
        for start, end, data in self.chunks():
            out[start:end] = data
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def count_equal(self, value) -> int:
        """Number of elements equal to ``value`` (O(dense chunks))."""
        total = 0
        for start, end, data in self.chunks():
            if isinstance(data, np.ndarray):
                total += int(np.count_nonzero(data == value))
            elif data == self.dtype.type(value):
                total += end - start
        return total

    def count_nonzero_and(self, mask: int) -> int:
        """Number of elements with any of ``mask``'s bits set."""
        total = 0
        for start, end, data in self.chunks():
            if isinstance(data, np.ndarray):
                total += int(np.count_nonzero(data & mask))
            elif int(data) & mask:
                total += end - start
        return total

    # -- storage accounting ----------------------------------------------------

    def dense_chunks(self) -> int:
        """Number of chunks that have been materialized."""
        return sum(1 for d in self._chunks if isinstance(d, np.ndarray))

    def storage_nbytes(self) -> int:
        """Bytes held by materialized chunks (scalar chunks are free)."""
        return sum(d.nbytes for d in self._chunks if isinstance(d, np.ndarray))
