"""Transparent huge page (THP) management.

The paper's testbed uses ``madvise``-driven THP with 2 MB pages.  The
manager decides, per VMA, which aligned 2 MB spans are mapped huge when the
VMA is populated, and offers collapse/split passes afterwards (khugepaged's
job).  Mixing huge and base pages inside one VMA is exactly the situation
that forces MTM's region split/merge to be huge-page aware (Sec. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mm.pagetable import PageTable
from repro.mm.vma import Vma
from repro.units import PAGES_PER_HUGE_PAGE


@dataclass(frozen=True)
class ThpPlan:
    """How one VMA's pages should be mapped.

    Attributes:
        huge_heads: heads of spans to map as 2 MB pages.
        base_pages: pages to map as 4 KB PTEs.
    """

    huge_heads: np.ndarray
    base_pages: np.ndarray

    @property
    def total_pages(self) -> int:
        return int(self.huge_heads.size) * PAGES_PER_HUGE_PAGE + int(self.base_pages.size)


class ThpManager:
    """Chooses huge/base mappings for VMAs.

    Args:
        enabled: THP off maps everything with base pages.
        huge_fraction: fraction of each VMA's *eligible aligned spans* mapped
            huge (1.0 = madvise on the whole VMA; intermediate values model
            the mixed mappings real THP produces under fragmentation).
        deterministic: if True, the first spans are chosen (reproducible);
            otherwise a generator must be supplied to :meth:`plan`.
    """

    def __init__(self, enabled: bool = True, huge_fraction: float = 1.0, deterministic: bool = True) -> None:
        if not 0.0 <= huge_fraction <= 1.0:
            raise ConfigError(f"huge_fraction must be in [0, 1], got {huge_fraction}")
        self.enabled = enabled
        self.huge_fraction = huge_fraction
        self.deterministic = deterministic

    def plan(self, vma: Vma, rng: np.random.Generator | None = None) -> ThpPlan:
        """Decide huge spans and leftover base pages for ``vma``."""
        all_pages = vma.pages()
        if not self.enabled or self.huge_fraction == 0.0:
            return ThpPlan(huge_heads=np.empty(0, dtype=np.int64), base_pages=all_pages)

        first_aligned = -(-vma.start // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
        last_aligned_end = (vma.end // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
        if last_aligned_end <= first_aligned:
            return ThpPlan(huge_heads=np.empty(0, dtype=np.int64), base_pages=all_pages)

        candidates = np.arange(first_aligned, last_aligned_end, PAGES_PER_HUGE_PAGE, dtype=np.int64)
        n_huge = int(round(candidates.size * self.huge_fraction))
        if n_huge == 0:
            return ThpPlan(huge_heads=np.empty(0, dtype=np.int64), base_pages=all_pages)
        if self.deterministic or rng is None:
            heads = candidates[:n_huge]
        else:
            heads = np.sort(rng.choice(candidates, size=n_huge, replace=False))

        in_huge = np.zeros(vma.npages, dtype=bool)
        for head in heads:
            offset = head - vma.start
            in_huge[offset : offset + PAGES_PER_HUGE_PAGE] = True
        return ThpPlan(huge_heads=heads, base_pages=all_pages[~in_huge])

    def populate(
        self,
        page_table: PageTable,
        vma: Vma,
        node: int,
        rng: np.random.Generator | None = None,
    ) -> ThpPlan:
        """Map the whole VMA onto ``node`` following the THP plan."""
        plan = self.plan(vma, rng)
        for head in plan.huge_heads:
            page_table.map_range(int(head), PAGES_PER_HUGE_PAGE, node, huge=True)
        base = plan.base_pages
        if base.size:
            # Map maximal contiguous runs of base pages in one call each.
            breaks = np.nonzero(np.diff(base) != 1)[0]
            run_starts = np.concatenate(([0], breaks + 1))
            run_ends = np.concatenate((breaks + 1, [base.size]))
            for lo, hi in zip(run_starts, run_ends):
                page_table.map_range(int(base[lo]), int(hi - lo), node)
        return plan

    @staticmethod
    def collapse_pass(page_table: PageTable, vma: Vma) -> int:
        """khugepaged sweep: collapse every eligible aligned span in ``vma``.

        Returns:
            Number of spans collapsed.
        """
        first = -(-vma.start // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
        last_end = (vma.end // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
        collapsed = 0
        for head in range(first, last_end, PAGES_PER_HUGE_PAGE):
            span = slice(head, head + PAGES_PER_HUGE_PAGE)
            flags = page_table.flags[span]
            from repro.mm.pte import PteFlag

            if np.all(flags & PteFlag.PRESENT) and not np.any(flags & PteFlag.HUGE):
                if np.unique(page_table.node[span]).size == 1:
                    page_table.collapse_huge(head)
                    collapsed += 1
        return collapsed
