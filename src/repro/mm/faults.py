"""Fault taxonomy and counters.

Profilers differ in *which fault* they lean on: AutoNUMA uses NUMA hint
faults (PROT_NONE mappings), Thermostat uses protection faults, MTM's
migration write-tracking uses a write-protection fault triggered through
the reserved PTE bit, and demand paging uses ordinary page faults.  The
paper quantifies two relevant cost ratios we encode here: a hint fault
costs 12x a PTE scan (Sec. 6.2) and the migration write-protect fault costs
~40 us (Sec. 9.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """Kinds of faults the substrate can raise."""

    PAGE = "page"  # demand paging / first touch
    PROTECTION = "protection"  # Thermostat-style mprotect profiling
    HINT = "hint"  # AutoNUMA NUMA hint fault
    WRITE_PROTECT = "write_protect"  # MTM migration dirtiness tracking


@dataclass
class FaultCounter:
    """Per-kind fault counts with pluggable unit costs.

    Attributes:
        costs: seconds per fault, per kind.
    """

    costs: dict[FaultKind, float] = field(
        default_factory=lambda: {
            FaultKind.PAGE: 1.5e-6,
            FaultKind.PROTECTION: 2.5e-6,
            FaultKind.HINT: 2.0e-6,
            FaultKind.WRITE_PROTECT: 40e-6,
        }
    )
    counts: dict[FaultKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FaultKind}
    )

    def record(self, kind: FaultKind, n: int = 1) -> float:
        """Record ``n`` faults of ``kind``; returns the time they cost."""
        if n < 0:
            raise ValueError(f"negative fault count: {n}")
        self.counts[kind] = self.counts.get(kind, 0) + n
        return n * self.costs[kind]

    def total(self) -> int:
        """Total faults of all kinds."""
        return sum(self.counts.values())

    def total_time(self) -> float:
        """Total time spent in fault handlers."""
        return sum(self.costs[k] * n for k, n in self.counts.items())

    def reset(self) -> None:
        for kind in list(self.counts):
            self.counts[kind] = 0
