"""Array-backed leaf page table for one address space.

The table stores, for every base (4 KB) virtual page, the component (NUMA
node) holding its frame and a :class:`~repro.mm.pte.PteFlag` bitfield.  Huge
pages are spans of :data:`~repro.units.PAGES_PER_HUGE_PAGE` aligned base
pages that all carry the HUGE flag; their access/dirty bits live on the
*head* page only, mirroring how a PMD-mapped huge page has a single entry.

Everything is vectorized over numpy arrays: a profiler scanning ten
thousand PTEs performs one array operation, which is what keeps simulating
hundreds of thousands of pages tractable.

Two storage layouts back the per-page state.  Small spaces use dense
numpy arrays.  Spaces at or above :data:`AUTO_CHUNK_PAGES` pages (or any
space constructed with ``chunked=True``) use
:class:`~repro.mm.chunked.ChunkedArray` segments so a sparse
hundreds-of-GB address space only materializes the chunks it touches;
the choice is invisible above the ``PageTable`` API and bit-identical.
In chunked mode the page->entry map is stored as an ``int16``
delta-from-identity (0 for base pages, ``-(page % 512)`` inside a huge
span), which both fits the chunk scalar representation (untouched
chunks cost nothing) and quarters the dense-chunk footprint.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, perfflags
from repro.errors import ConfigError, TranslationError
from repro.mm.chunked import DEFAULT_CHUNK_PAGES, ChunkedArray
from repro.mm.layout import PageTableGeometry, X86_64_GEOMETRY
from repro.mm.pte import PteFlag
from repro.units import PAGES_PER_HUGE_PAGE

_UNMAPPED_NODE = -1

#: Spaces at least this large default to chunked storage (4 Mi pages =
#: 16 GB of 4 KB pages — past the regime where dense arrays are cheap).
AUTO_CHUNK_PAGES = 1 << 22


class PageTable:
    """Leaf page-table state for ``n_pages`` of virtual address space.

    Args:
        n_pages: size of the virtual space in base pages.
        geometry: radix geometry, used for table-page counting.
        chunked: force chunked (True) or dense (False) storage; ``None``
            picks dense below :data:`AUTO_CHUNK_PAGES` pages and chunked
            at or above it.
        chunk_pages: chunk length for chunked storage; must be a power
            of two and a multiple of :data:`PAGES_PER_HUGE_PAGE`.
    """

    def __init__(
        self,
        n_pages: int,
        geometry: PageTableGeometry = X86_64_GEOMETRY,
        chunked: bool | None = None,
        chunk_pages: int | None = None,
    ) -> None:
        if n_pages < 1:
            raise ConfigError(f"n_pages must be >= 1, got {n_pages}")
        self.n_pages = n_pages
        self.geometry = geometry
        if chunked is None:
            chunked = perfflags.chunked_override()
        if chunked is None:
            chunked = n_pages >= AUTO_CHUNK_PAGES
        self.chunked = bool(chunked)
        self.chunk_pages = int(chunk_pages) if chunk_pages else DEFAULT_CHUNK_PAGES
        if self.chunk_pages % PAGES_PER_HUGE_PAGE:
            raise ConfigError(
                f"chunk_pages {self.chunk_pages} not a multiple of {PAGES_PER_HUGE_PAGE}"
            )
        if self.chunked:
            self.flags = ChunkedArray(n_pages, np.uint16, 0, self.chunk_pages)
            self.node = ChunkedArray(n_pages, np.int16, _UNMAPPED_NODE, self.chunk_pages)
        else:
            self.flags = np.zeros(n_pages, dtype=np.uint16)
            self.node = np.full(n_pages, _UNMAPPED_NODE, dtype=np.int16)
        # Placement-change generation + cached run-length encoding of
        # ``node``; see _node_runs().
        self._node_version = 0
        self._node_rle: tuple[int, np.ndarray, np.ndarray] | None = None
        # Page -> leaf-entry map, maintained on huge collapse/split so
        # entry_index() is a single gather instead of flag arithmetic.
        # Chunked spaces store it as an int16 delta from the identity map
        # (0 everywhere until a huge mapping appears), dense spaces as
        # the resolved int64 entry per page.
        if self.chunked:
            self._entry = None
            self._entry_delta = ChunkedArray(n_pages, np.int16, 0, self.chunk_pages)
        else:
            self._entry = np.arange(n_pages, dtype=np.int64)
            self._entry_delta = None
        # Entry-map change tracking: every mutation of ``_entry`` (huge
        # map/unmap/collapse/split) bumps the version and records the
        # dirtied span, so incremental consumers (the MTM profiler's
        # per-region entry cache) invalidate exactly the regions whose
        # page->entry resolution may have changed instead of recomputing
        # the whole footprint every interval.
        self._entry_change_version = 0
        self._entry_dirty: list[tuple[int, int, int]] = []  # (version, start, end)

    # -- mapping ---------------------------------------------------------------

    def map_range(self, start: int, npages: int, node: int, huge: bool = False) -> None:
        """Map ``npages`` pages starting at ``start`` onto component ``node``.

        Args:
            start: first virtual page number.
            npages: number of base pages.
            node: destination component node id (>= 0).
            huge: map as 2 MB huge pages; requires huge alignment of both
                ``start`` and ``npages``.
        """
        self._check_range(start, npages)
        if node < 0:
            raise ConfigError(f"invalid node {node}")
        sl = slice(start, start + npages)
        if np.any(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"range [{start}, {start + npages}) already mapped")
        base = np.uint16(PteFlag.default_mapped())
        if huge:
            if start % PAGES_PER_HUGE_PAGE or npages % PAGES_PER_HUGE_PAGE:
                raise ConfigError(
                    f"huge mapping [{start}, {start + npages}) is not 2MB-aligned"
                )
            base |= np.uint16(PteFlag.HUGE)
        self.flags[sl] = base
        self.node[sl] = node
        self._node_version += 1
        if huge:
            self._entry_mark_huge(start, start + npages)

    def unmap_range(self, start: int, npages: int) -> None:
        """Remove the mapping for ``npages`` pages starting at ``start``."""
        self._check_range(start, npages)
        sl = slice(start, start + npages)
        if not np.all(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"range [{start}, {start + npages}) not fully mapped")
        heads = self._partial_huge_heads(start, npages)
        if heads.size:
            raise TranslationError(
                f"unmap [{start}, {start + npages}) would tear huge pages at {heads[:4]}"
            )
        self.flags[sl] = 0
        self.node[sl] = _UNMAPPED_NODE
        self._node_version += 1
        self._entry_mark_identity(start, start + npages)

    def is_mapped(self, pages: np.ndarray | int) -> np.ndarray | bool:
        """Presence test for one page or an array of pages."""
        present = (self.flags[pages] & PteFlag.PRESENT) != 0
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return bool(present)
        return present

    def node_of(self, pages: np.ndarray | int) -> np.ndarray | int:
        """Component node holding each page (-1 if unmapped)."""
        nodes = self.node[pages]
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return int(nodes)
        return nodes

    def move_pages(self, pages: np.ndarray, dst_node: int) -> None:
        """Retarget mapped pages to ``dst_node`` (the remap step of migration)."""
        pages = np.asarray(pages, dtype=np.int64)
        if dst_node < 0:
            raise ConfigError(f"invalid node {dst_node}")
        if not np.all((self.flags[pages] & PteFlag.PRESENT) != 0):
            raise TranslationError("move_pages on unmapped page(s)")
        self.node[pages] = dst_node
        self._node_version += 1

    # -- huge pages --------------------------------------------------------------

    def is_huge(self, pages: np.ndarray | int) -> np.ndarray | bool:
        """Whether each page is part of a huge mapping."""
        huge = (self.flags[pages] & PteFlag.HUGE) != 0
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return bool(huge)
        return huge

    def collapse_huge(self, head: int) -> None:
        """Collapse the aligned 2 MB span at ``head`` into a huge mapping.

        All base pages must be mapped on the same node (khugepaged's
        precondition).
        """
        if head % PAGES_PER_HUGE_PAGE:
            raise ConfigError(f"head {head} not huge-aligned")
        self._check_range(head, PAGES_PER_HUGE_PAGE)
        sl = slice(head, head + PAGES_PER_HUGE_PAGE)
        if not np.all(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"span at {head} not fully mapped")
        if np.unique(self.node[sl]).size != 1:
            raise TranslationError(f"span at {head} straddles nodes; cannot collapse")
        self.flags[sl] |= np.uint16(PteFlag.HUGE)
        # Bits of the constituent pages fold into the single PMD entry.
        folded = np.uint16(0)
        if np.any(self.flags[sl] & PteFlag.ACCESSED):
            folded |= np.uint16(PteFlag.ACCESSED)
        if np.any(self.flags[sl] & PteFlag.DIRTY):
            folded |= np.uint16(PteFlag.DIRTY)
        self.flags[sl] &= ~np.uint16(PteFlag.ACCESSED | PteFlag.DIRTY)
        self.flags[head] |= folded
        self._entry_mark_huge(head, head + PAGES_PER_HUGE_PAGE)

    def split_huge(self, head: int) -> None:
        """Split the huge mapping at ``head`` back into base PTEs.

        The PMD's access/dirty bits are inherited by every base page, which
        is what the kernel's split does (it cannot know which 4 KB piece was
        touched).
        """
        if head % PAGES_PER_HUGE_PAGE:
            raise ConfigError(f"head {head} not huge-aligned")
        if not self.is_huge(head):
            raise TranslationError(f"page {head} is not huge")
        sl = slice(head, head + PAGES_PER_HUGE_PAGE)
        inherited = self.flags[head] & np.uint16(PteFlag.ACCESSED | PteFlag.DIRTY)
        self.flags[sl] &= ~np.uint16(PteFlag.HUGE)
        self.flags[sl] |= inherited
        self._entry_mark_identity(head, head + PAGES_PER_HUGE_PAGE)

    @property
    def entry_version(self) -> int:
        """Monotonic counter bumped whenever the page->entry map changes."""
        return self._entry_change_version

    def entry_dirty_since(self, version: int) -> list[tuple[int, int]]:
        """Page spans whose entry resolution changed after ``version``.

        Consumers caching :meth:`entry_index` results record the
        :attr:`entry_version` they computed against and invalidate any
        cached span overlapping one of the returned ``(start, end)``
        ranges.  The log self-compacts: once it grows past a bound it is
        folded into one whole-space span (callers then do one full
        recompute, which is what they would have done pre-cache anyway).
        """
        if version >= self._entry_change_version:
            return []
        return [(s, e) for v, s, e in self._entry_dirty if v > version]

    def _mark_entries_dirty(self, start: int, end: int) -> None:
        self._entry_change_version += 1
        self._entry_dirty.append((self._entry_change_version, start, end))
        if len(self._entry_dirty) > 4096:
            self._entry_dirty = [(self._entry_change_version, 0, self.n_pages)]

    def _entry_mark_identity(self, start: int, end: int) -> None:
        """Point ``[start, end)`` back at base-page entries (delta 0)."""
        if self.chunked:
            self._entry_delta[start:end] = 0
        else:
            self._entry[start:end] = np.arange(start, end, dtype=np.int64)
        self._mark_entries_dirty(start, end)

    def _entry_mark_huge(self, start: int, end: int) -> None:
        """Point the huge-aligned ``[start, end)`` at its span heads."""
        if self.chunked:
            rel = np.arange(start, end, dtype=np.int64) % PAGES_PER_HUGE_PAGE
            self._entry_delta[start:end] = (-rel).astype(np.int16)
        else:
            span = np.arange(start, end, dtype=np.int64)
            self._entry[start:end] = span - (span % PAGES_PER_HUGE_PAGE)
        self._mark_entries_dirty(start, end)

    def entry_index(self, pages: np.ndarray) -> np.ndarray:
        """The leaf entry holding each page's access/dirty bits.

        For a 4 KB page that is the page itself; for a page inside a huge
        mapping it is the huge head (the single PMD entry).
        """
        pages = np.asarray(pages, dtype=np.int64)
        if perfflags.vectorized():
            # The maintained page->entry map: one gather, no flag math.
            if self.chunked:
                return pages + self._entry_delta[pages]
            return self._entry[pages]
        huge = (self.flags[pages] & PteFlag.HUGE) != 0
        entries = pages.copy()
        entries[huge] = pages[huge] - (pages[huge] % PAGES_PER_HUGE_PAGE)
        return entries

    def span_entries(self, starts: np.ndarray, npages: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Unique leaf entries of many ``[start, start+npages)`` spans at once.

        Returns ``(entries, offsets)`` where span ``i``'s unique entries are
        ``entries[offsets[i]:offsets[i+1]]``, ascending — element-wise equal
        to ``np.unique(entry_index(arange(start, end)))`` per span, computed
        with one gather over the concatenated spans.  (Within an ascending
        page range ``entry_index`` is non-decreasing because huge mappings
        are aligned spans, so first occurrences *are* the sorted uniques.)
        """
        starts = np.asarray(starts, dtype=np.int64)
        npages = np.asarray(npages, dtype=np.int64)
        if starts.size == 0:
            return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
        if perfflags.compiled() and not self.chunked:
            # Single fused pass over the dense entry map — no
            # concatenated-pages materialization.
            return kernels.span_entries(starts, npages, self._entry)
        bounds = np.concatenate(([0], np.cumsum(npages)))
        total = int(bounds[-1])
        span_id = np.repeat(np.arange(starts.size), npages)
        pages = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1], npages) + np.repeat(starts, npages)
        entries = self.entry_index(pages)
        first = np.empty(total, dtype=bool)
        first[0] = True
        np.logical_or(
            entries[1:] != entries[:-1], span_id[1:] != span_id[:-1], out=first[1:]
        )
        offsets = np.concatenate(
            ([0], np.cumsum(np.bincount(span_id[first], minlength=starts.size)))
        )
        return entries[first], offsets

    def _node_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """Run-length encoding of ``node``: ``(bounds, values)``.

        Run ``i`` covers pages ``[bounds[i], bounds[i+1])`` and sits on
        ``values[i]``.  Placement is piecewise constant (migration moves
        whole regions), so the encoding is tiny and is rebuilt only when
        a mapping or migration bumped ``_node_version``.
        """
        if self._node_rle is None or self._node_rle[0] != self._node_version:
            if self.chunked:
                bounds, values = self._node_runs_chunked()
            elif perfflags.compiled():
                bounds, values = kernels.node_rle(self.node)
            else:
                change = np.flatnonzero(self.node[1:] != self.node[:-1])
                bounds = np.empty(change.size + 2, dtype=np.int64)
                bounds[0] = 0
                bounds[1:-1] = change + 1
                bounds[-1] = self.n_pages
                values = self.node[bounds[:-1]].astype(np.int64)
            self._node_rle = (self._node_version, bounds, values)
        return self._node_rle[1], self._node_rle[2]

    def _node_runs_chunked(self) -> tuple[np.ndarray, np.ndarray]:
        """Node RLE built chunk by chunk — scalar chunks contribute one
        candidate run without ever densifying."""
        start_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        prev_val: int | None = None
        for start, _end, data in self.node.chunks():
            if isinstance(data, np.ndarray):
                change = np.flatnonzero(data[1:] != data[:-1])
                run_starts = np.empty(change.size + 1, dtype=np.int64)
                run_starts[0] = start
                run_starts[1:] = start + change + 1
                run_vals = data[np.concatenate(([0], change + 1))].astype(np.int64)
            else:
                run_starts = np.array([start], dtype=np.int64)
                run_vals = np.array([data], dtype=np.int64)
            if prev_val is not None and run_vals.size and run_vals[0] == prev_val:
                # First run continues the previous chunk's last run.
                run_starts = run_starts[1:]
                run_vals = run_vals[1:]
            if run_vals.size:
                start_parts.append(run_starts)
                value_parts.append(run_vals)
                prev_val = int(run_vals[-1])
        bounds = np.concatenate(start_parts + [np.array([self.n_pages], dtype=np.int64)])
        values = np.concatenate(value_parts)
        return bounds, values

    def span_majority_nodes(self, starts: np.ndarray, npages: np.ndarray) -> np.ndarray:
        """Majority resident node of many spans at once (-1 when unmapped).

        Per-span equal to ``np.unique(node[start:end][mapped], return_counts
        =True)`` followed by ``argmax`` (ties break toward the lowest node,
        matching ``np.unique``'s ascending order + first-max ``argmax``).
        Computed from the cached node RLE: each span's per-node page counts
        are the lengths of its overlaps with the runs, so the work scales
        with placement fragmentation, not footprint.
        """
        starts = np.asarray(starts, dtype=np.int64)
        npages = np.asarray(npages, dtype=np.int64)
        if starts.size == 0:
            return np.empty(0, dtype=np.int64)
        bounds, values = self._node_runs()
        if perfflags.compiled():
            return kernels.span_majority(starts, npages, bounds, values)
        ends = starts + npages
        lo = np.searchsorted(bounds, starts, side="right") - 1
        hi = np.searchsorted(bounds, ends, side="left")  # runs [lo, hi) overlap
        nruns = np.maximum(hi - lo, 0)
        offs = np.concatenate(([0], np.cumsum(nruns)))
        span_id = np.repeat(np.arange(starts.size), nruns)
        ridx = (
            np.arange(int(offs[-1]), dtype=np.int64)
            - np.repeat(offs[:-1], nruns)
            + np.repeat(lo, nruns)
        )
        weights = np.minimum(bounds[ridx + 1], np.repeat(ends, nruns)) - np.maximum(
            bounds[ridx], np.repeat(starts, nruns)
        )
        nodes = values[ridx]
        mapped = (nodes >= 0) & (weights > 0)
        result = np.full(starts.size, -1, dtype=np.int64)
        if not np.any(mapped):
            return result
        n_nodes = int(nodes[mapped].max()) + 1
        counts = np.bincount(
            span_id[mapped] * n_nodes + nodes[mapped],
            weights=weights[mapped],
            minlength=starts.size * n_nodes,
        ).reshape(starts.size, n_nodes)
        has_mapped = counts.sum(axis=1) > 0
        result[has_mapped] = np.argmax(counts[has_mapped], axis=1)
        return result

    def huge_heads(self) -> np.ndarray:
        """Heads of all current huge mappings, ascending."""
        candidates = np.arange(0, self.n_pages, PAGES_PER_HUGE_PAGE)
        mask = (self.flags[candidates] & PteFlag.HUGE) != 0
        return candidates[mask]

    # -- accessed / dirty bits -----------------------------------------------

    def set_accessed(self, entries: np.ndarray, written: np.ndarray | None = None) -> None:
        """MMU path: mark entries accessed, and dirty where ``written``."""
        entries = np.asarray(entries, dtype=np.int64)
        self.flags[entries] |= np.uint16(PteFlag.ACCESSED)
        if written is not None:
            written = np.asarray(written, dtype=bool)
            self.flags[entries[written]] |= np.uint16(PteFlag.DIRTY)

    def scan_accessed(self, entries: np.ndarray, reset: bool = True) -> np.ndarray:
        """Read (and by default clear) the access bit of ``entries``.

        This is the primitive every PTE-scan profiler is built on; the
        *cost* of the scan is charged separately by the cost model.
        """
        entries = np.asarray(entries, dtype=np.int64)
        accessed = (self.flags[entries] & PteFlag.ACCESSED) != 0
        if reset:
            self.flags[entries] &= ~np.uint16(PteFlag.ACCESSED)
        return accessed

    def test_and_clear_dirty(self, entries: np.ndarray) -> np.ndarray:
        """Read and clear the dirty bit of ``entries``."""
        entries = np.asarray(entries, dtype=np.int64)
        dirty = (self.flags[entries] & PteFlag.DIRTY) != 0
        self.flags[entries] &= ~np.uint16(PteFlag.DIRTY)
        return dirty

    # -- auxiliary flags (profiler / migration machinery) ----------------------

    def set_flag(self, entries: np.ndarray, flag: PteFlag) -> None:
        """Set ``flag`` on ``entries`` (e.g. RESERVED11 write tracking)."""
        self.flags[np.asarray(entries, dtype=np.int64)] |= np.uint16(flag)

    def clear_flag(self, entries: np.ndarray, flag: PteFlag) -> None:
        """Clear ``flag`` on ``entries``."""
        self.flags[np.asarray(entries, dtype=np.int64)] &= ~np.uint16(flag)

    def has_flag(self, entries: np.ndarray, flag: PteFlag) -> np.ndarray:
        """Test ``flag`` on ``entries``."""
        return (self.flags[np.asarray(entries, dtype=np.int64)] & np.uint16(flag)) != 0

    # -- statistics --------------------------------------------------------------

    def mapped_pages(self) -> int:
        """Number of mapped base pages."""
        if self.chunked:
            return self.flags.count_nonzero_and(int(PteFlag.PRESENT))
        return int(np.count_nonzero(self.flags & PteFlag.PRESENT))

    def huge_mapped_pages(self) -> int:
        """Number of base pages covered by huge mappings."""
        if self.chunked:
            return self.flags.count_nonzero_and(int(PteFlag.HUGE))
        return int(np.count_nonzero(self.flags & PteFlag.HUGE))

    def leaf_entries(self) -> int:
        """Leaf entries a full scan must touch (4 KB PTEs + one per PMD)."""
        mapped = self.mapped_pages()
        huge_span = self.huge_mapped_pages()
        return self.geometry.pte_entries_to_scan(mapped - huge_span, huge_span)

    def pages_on_node(self, node: int) -> int:
        """Mapped base pages resident on component ``node``."""
        if self.chunked:
            return self.node.count_equal(node)
        return int(np.count_nonzero(self.node == node))

    def storage_nbytes(self) -> int:
        """Bytes held by this table's per-page state arrays.

        For chunked storage only materialized chunks count, which is the
        number the large-footprint microbench compares against the dense
        O(n_pages) cost.
        """
        if self.chunked:
            return (
                self.flags.storage_nbytes()
                + self.node.storage_nbytes()
                + self._entry_delta.storage_nbytes()
            )
        return self.flags.nbytes + self.node.nbytes + self._entry.nbytes

    # -- internals --------------------------------------------------------------

    def _check_range(self, start: int, npages: int) -> None:
        if npages < 1:
            raise ConfigError(f"npages must be >= 1, got {npages}")
        if start < 0 or start + npages > self.n_pages:
            raise ConfigError(
                f"range [{start}, {start + npages}) outside space of {self.n_pages}"
            )

    def _partial_huge_heads(self, start: int, npages: int) -> np.ndarray:
        """Huge heads whose span crosses either boundary of the range."""
        heads = self.huge_heads()
        if heads.size == 0:
            return heads
        end = start + npages
        crosses_start = (heads < start) & (heads + PAGES_PER_HUGE_PAGE > start)
        crosses_end = (heads < end) & (heads + PAGES_PER_HUGE_PAGE > end)
        return heads[crosses_start | crosses_end]
