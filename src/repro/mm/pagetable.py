"""Array-backed leaf page table for one address space.

The table stores, for every base (4 KB) virtual page, the component (NUMA
node) holding its frame and a :class:`~repro.mm.pte.PteFlag` bitfield.  Huge
pages are spans of :data:`~repro.units.PAGES_PER_HUGE_PAGE` aligned base
pages that all carry the HUGE flag; their access/dirty bits live on the
*head* page only, mirroring how a PMD-mapped huge page has a single entry.

Everything is vectorized over numpy arrays: a profiler scanning ten
thousand PTEs performs one array operation, which is what keeps simulating
hundreds of thousands of pages tractable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, TranslationError
from repro.mm.layout import PageTableGeometry, X86_64_GEOMETRY
from repro.mm.pte import PteFlag
from repro.units import PAGES_PER_HUGE_PAGE

_UNMAPPED_NODE = -1


class PageTable:
    """Leaf page-table state for ``n_pages`` of virtual address space.

    Args:
        n_pages: size of the virtual space in base pages.
        geometry: radix geometry, used for table-page counting.
    """

    def __init__(self, n_pages: int, geometry: PageTableGeometry = X86_64_GEOMETRY) -> None:
        if n_pages < 1:
            raise ConfigError(f"n_pages must be >= 1, got {n_pages}")
        self.n_pages = n_pages
        self.geometry = geometry
        self.flags = np.zeros(n_pages, dtype=np.uint16)
        self.node = np.full(n_pages, _UNMAPPED_NODE, dtype=np.int16)

    # -- mapping ---------------------------------------------------------------

    def map_range(self, start: int, npages: int, node: int, huge: bool = False) -> None:
        """Map ``npages`` pages starting at ``start`` onto component ``node``.

        Args:
            start: first virtual page number.
            npages: number of base pages.
            node: destination component node id (>= 0).
            huge: map as 2 MB huge pages; requires huge alignment of both
                ``start`` and ``npages``.
        """
        self._check_range(start, npages)
        if node < 0:
            raise ConfigError(f"invalid node {node}")
        sl = slice(start, start + npages)
        if np.any(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"range [{start}, {start + npages}) already mapped")
        base = np.uint16(PteFlag.default_mapped())
        if huge:
            if start % PAGES_PER_HUGE_PAGE or npages % PAGES_PER_HUGE_PAGE:
                raise ConfigError(
                    f"huge mapping [{start}, {start + npages}) is not 2MB-aligned"
                )
            base |= np.uint16(PteFlag.HUGE)
        self.flags[sl] = base
        self.node[sl] = node

    def unmap_range(self, start: int, npages: int) -> None:
        """Remove the mapping for ``npages`` pages starting at ``start``."""
        self._check_range(start, npages)
        sl = slice(start, start + npages)
        if not np.all(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"range [{start}, {start + npages}) not fully mapped")
        heads = self._partial_huge_heads(start, npages)
        if heads.size:
            raise TranslationError(
                f"unmap [{start}, {start + npages}) would tear huge pages at {heads[:4]}"
            )
        self.flags[sl] = 0
        self.node[sl] = _UNMAPPED_NODE

    def is_mapped(self, pages: np.ndarray | int) -> np.ndarray | bool:
        """Presence test for one page or an array of pages."""
        present = (self.flags[pages] & PteFlag.PRESENT) != 0
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return bool(present)
        return present

    def node_of(self, pages: np.ndarray | int) -> np.ndarray | int:
        """Component node holding each page (-1 if unmapped)."""
        nodes = self.node[pages]
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return int(nodes)
        return nodes

    def move_pages(self, pages: np.ndarray, dst_node: int) -> None:
        """Retarget mapped pages to ``dst_node`` (the remap step of migration)."""
        pages = np.asarray(pages, dtype=np.int64)
        if dst_node < 0:
            raise ConfigError(f"invalid node {dst_node}")
        if not np.all((self.flags[pages] & PteFlag.PRESENT) != 0):
            raise TranslationError("move_pages on unmapped page(s)")
        self.node[pages] = dst_node

    # -- huge pages --------------------------------------------------------------

    def is_huge(self, pages: np.ndarray | int) -> np.ndarray | bool:
        """Whether each page is part of a huge mapping."""
        huge = (self.flags[pages] & PteFlag.HUGE) != 0
        if np.isscalar(pages) or isinstance(pages, (int, np.integer)):
            return bool(huge)
        return huge

    def collapse_huge(self, head: int) -> None:
        """Collapse the aligned 2 MB span at ``head`` into a huge mapping.

        All base pages must be mapped on the same node (khugepaged's
        precondition).
        """
        if head % PAGES_PER_HUGE_PAGE:
            raise ConfigError(f"head {head} not huge-aligned")
        self._check_range(head, PAGES_PER_HUGE_PAGE)
        sl = slice(head, head + PAGES_PER_HUGE_PAGE)
        if not np.all(self.flags[sl] & PteFlag.PRESENT):
            raise TranslationError(f"span at {head} not fully mapped")
        if np.unique(self.node[sl]).size != 1:
            raise TranslationError(f"span at {head} straddles nodes; cannot collapse")
        self.flags[sl] |= np.uint16(PteFlag.HUGE)
        # Bits of the constituent pages fold into the single PMD entry.
        folded = np.uint16(0)
        if np.any(self.flags[sl] & PteFlag.ACCESSED):
            folded |= np.uint16(PteFlag.ACCESSED)
        if np.any(self.flags[sl] & PteFlag.DIRTY):
            folded |= np.uint16(PteFlag.DIRTY)
        self.flags[sl] &= ~np.uint16(PteFlag.ACCESSED | PteFlag.DIRTY)
        self.flags[head] |= folded

    def split_huge(self, head: int) -> None:
        """Split the huge mapping at ``head`` back into base PTEs.

        The PMD's access/dirty bits are inherited by every base page, which
        is what the kernel's split does (it cannot know which 4 KB piece was
        touched).
        """
        if head % PAGES_PER_HUGE_PAGE:
            raise ConfigError(f"head {head} not huge-aligned")
        if not self.is_huge(head):
            raise TranslationError(f"page {head} is not huge")
        sl = slice(head, head + PAGES_PER_HUGE_PAGE)
        inherited = self.flags[head] & np.uint16(PteFlag.ACCESSED | PteFlag.DIRTY)
        self.flags[sl] &= ~np.uint16(PteFlag.HUGE)
        self.flags[sl] |= inherited

    def entry_index(self, pages: np.ndarray) -> np.ndarray:
        """The leaf entry holding each page's access/dirty bits.

        For a 4 KB page that is the page itself; for a page inside a huge
        mapping it is the huge head (the single PMD entry).
        """
        pages = np.asarray(pages, dtype=np.int64)
        huge = (self.flags[pages] & PteFlag.HUGE) != 0
        entries = pages.copy()
        entries[huge] = pages[huge] - (pages[huge] % PAGES_PER_HUGE_PAGE)
        return entries

    def huge_heads(self) -> np.ndarray:
        """Heads of all current huge mappings, ascending."""
        candidates = np.arange(0, self.n_pages, PAGES_PER_HUGE_PAGE)
        mask = (self.flags[candidates] & PteFlag.HUGE) != 0
        return candidates[mask]

    # -- accessed / dirty bits -----------------------------------------------

    def set_accessed(self, entries: np.ndarray, written: np.ndarray | None = None) -> None:
        """MMU path: mark entries accessed, and dirty where ``written``."""
        entries = np.asarray(entries, dtype=np.int64)
        self.flags[entries] |= np.uint16(PteFlag.ACCESSED)
        if written is not None:
            written = np.asarray(written, dtype=bool)
            self.flags[entries[written]] |= np.uint16(PteFlag.DIRTY)

    def scan_accessed(self, entries: np.ndarray, reset: bool = True) -> np.ndarray:
        """Read (and by default clear) the access bit of ``entries``.

        This is the primitive every PTE-scan profiler is built on; the
        *cost* of the scan is charged separately by the cost model.
        """
        entries = np.asarray(entries, dtype=np.int64)
        accessed = (self.flags[entries] & PteFlag.ACCESSED) != 0
        if reset:
            self.flags[entries] &= ~np.uint16(PteFlag.ACCESSED)
        return accessed

    def test_and_clear_dirty(self, entries: np.ndarray) -> np.ndarray:
        """Read and clear the dirty bit of ``entries``."""
        entries = np.asarray(entries, dtype=np.int64)
        dirty = (self.flags[entries] & PteFlag.DIRTY) != 0
        self.flags[entries] &= ~np.uint16(PteFlag.DIRTY)
        return dirty

    # -- auxiliary flags (profiler / migration machinery) ----------------------

    def set_flag(self, entries: np.ndarray, flag: PteFlag) -> None:
        """Set ``flag`` on ``entries`` (e.g. RESERVED11 write tracking)."""
        self.flags[np.asarray(entries, dtype=np.int64)] |= np.uint16(flag)

    def clear_flag(self, entries: np.ndarray, flag: PteFlag) -> None:
        """Clear ``flag`` on ``entries``."""
        self.flags[np.asarray(entries, dtype=np.int64)] &= ~np.uint16(flag)

    def has_flag(self, entries: np.ndarray, flag: PteFlag) -> np.ndarray:
        """Test ``flag`` on ``entries``."""
        return (self.flags[np.asarray(entries, dtype=np.int64)] & np.uint16(flag)) != 0

    # -- statistics --------------------------------------------------------------

    def mapped_pages(self) -> int:
        """Number of mapped base pages."""
        return int(np.count_nonzero(self.flags & PteFlag.PRESENT))

    def huge_mapped_pages(self) -> int:
        """Number of base pages covered by huge mappings."""
        return int(np.count_nonzero(self.flags & PteFlag.HUGE))

    def leaf_entries(self) -> int:
        """Leaf entries a full scan must touch (4 KB PTEs + one per PMD)."""
        mapped = self.mapped_pages()
        huge_span = self.huge_mapped_pages()
        return self.geometry.pte_entries_to_scan(mapped - huge_span, huge_span)

    def pages_on_node(self, node: int) -> int:
        """Mapped base pages resident on component ``node``."""
        return int(np.count_nonzero(self.node == node))

    # -- internals --------------------------------------------------------------

    def _check_range(self, start: int, npages: int) -> None:
        if npages < 1:
            raise ConfigError(f"npages must be >= 1, got {npages}")
        if start < 0 or start + npages > self.n_pages:
            raise ConfigError(
                f"range [{start}, {start + npages}) outside space of {self.n_pages}"
            )

    def _partial_huge_heads(self, start: int, npages: int) -> np.ndarray:
        """Huge heads whose span crosses either boundary of the range."""
        heads = self.huge_heads()
        if heads.size == 0:
            return heads
        end = start + npages
        crosses_start = (heads < start) & (heads + PAGES_PER_HUGE_PAGE > start)
        crosses_end = (heads < end) & (heads + PAGES_PER_HUGE_PAGE > end)
        return heads[crosses_start | crosses_end]
