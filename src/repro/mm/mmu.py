"""MMU model: applies access batches to the page table.

The MMU is where the simulator's statistical detection model lives.  A
real MMU sets the PTE access bit on the first touch after each profiler
reset, so one scan observes "was this entry accessed since my last
reset" — a *window* of the interval.  How large that window is decides
everything about profiling quality:

* a profiler whose checks are **spread evenly** over the interval (DAMON's
  sampling) exposes each check to ``1/num_scans`` of the interval's
  accesses.  On a 2 MB huge-page entry even cold data accumulates several
  accesses per window, the bit is always set, and hot cannot be told from
  cold — the access-bit *saturation* behind DAMON's ~50% hot-page
  accuracy in the paper's Fig. 1;
* MTM's multi-scans run **back-to-back within the profiling pass**, whose
  duration is the overhead budget: each scan's window exposes only
  ``overhead_constraint / num_scans`` of the interval (~0.17 s of a 10 s
  interval at 5%).  Detection becomes rate-sensitive and a hot entry
  (tens of accesses per window) separates cleanly from a cold one.

Given an entry's interval access count ``k`` and a per-scan ``exposure``
(fraction of the interval one scan's window covers), the probability a
scan sees the bit set is ``p = 1 - exp(-k * exposure)`` (Poisson-uniform
access arrivals), and the detected count is Binomial(num_scans, p).

The MMU also maintains the PTE access/dirty bits themselves (so mechanisms
that read real bits — dirtiness tracking during migration, hint faults —
see consistent state) and cumulative per-page counters used as ground truth
by the profiling-quality metrics.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, perfflags
from repro.errors import ConfigError
from repro.mm.chunked import ChunkedArray
from repro.mm.pagetable import PageTable
from repro.mm.pte import PteFlag
from repro.sim.trace import AccessBatch


def _add_at(arr, idx: np.ndarray, vals: np.ndarray) -> None:
    """``np.add.at`` over either storage layout."""
    if isinstance(arr, ChunkedArray):
        arr.add_at(idx, vals)
    else:
        np.add.at(arr, idx, vals)


class Mmu:
    """Applies workload access batches to a page table.

    Args:
        page_table: the leaf table whose bits this MMU sets.
        num_sockets: sockets in the machine (for attribution bounds checks).
    """

    def __init__(self, page_table: PageTable, num_sockets: int = 1) -> None:
        if num_sockets < 1:
            raise ConfigError(f"num_sockets must be >= 1, got {num_sockets}")
        self.page_table = page_table
        self.num_sockets = num_sockets
        n = page_table.n_pages
        # Entry-granularity interval state (huge pages aggregate onto
        # heads).  Chunked page tables get chunked MMU state too — these
        # five arrays are the other O(n_pages) allocations per space.
        if page_table.chunked:
            cp = page_table.chunk_pages
            self._entry_counts = ChunkedArray(n, np.int64, 0, cp)
            self._entry_writes = ChunkedArray(n, np.int64, 0, cp)
            self._entry_socket = ChunkedArray(n, np.int8, -1, cp)
            self.cumulative_counts = ChunkedArray(n, np.int64, 0, cp)
            self.cumulative_writes = ChunkedArray(n, np.int64, 0, cp)
        else:
            self._entry_counts = np.zeros(n, dtype=np.int64)
            self._entry_writes = np.zeros(n, dtype=np.int64)
            self._entry_socket = np.full(n, -1, dtype=np.int8)
            # Base-page-granularity ground truth.
            self.cumulative_counts = np.zeros(n, dtype=np.int64)
            self.cumulative_writes = np.zeros(n, dtype=np.int64)
        self.interval_index = -1
        self._current_batch: AccessBatch | None = None
        self._touched_entries: np.ndarray | None = None

    # -- interval lifecycle --------------------------------------------------

    def begin_interval(self, batch: AccessBatch) -> None:
        """Install ``batch`` as the current interval's activity.

        Sets PTE access/dirty bits for touched entries and refreshes the
        interval histograms that scan/sample primitives read.
        """
        if batch.pages.size and np.any(batch.sockets >= self.num_sockets):
            raise ConfigError("batch attributes accesses to a nonexistent socket")
        if perfflags.vectorized():
            # Scatter-reset: only the entries the previous interval touched
            # are non-default, so resetting just those is bit-identical to
            # (and far cheaper than) three full-array fills.
            touched = self._touched_entries
            if touched is not None and touched.size:
                if perfflags.compiled() and not self.page_table.chunked:
                    kernels.mmu_scatter_reset(
                        touched,
                        self._entry_counts,
                        self._entry_writes,
                        self._entry_socket,
                    )
                else:
                    self._entry_counts[touched] = 0
                    self._entry_writes[touched] = 0
                    self._entry_socket[touched] = -1
        else:
            self._entry_counts.fill(0)
            self._entry_writes.fill(0)
            self._entry_socket.fill(-1)
        self._touched_entries = None
        self._current_batch = batch
        self.interval_index += 1
        if batch.pages.size == 0:
            return

        entries = self.page_table.entry_index(batch.pages)
        self._touched_entries = entries
        if perfflags.vectorized() and (
            batch.pages.size < 2 or np.all(batch.pages[1:] > batch.pages[:-1])
        ):
            if perfflags.compiled() and not self.page_table.chunked:
                # One fused compiled pass: per-entry accumulation (every
                # touched slot is zero after the reset above, so += equals
                # the run-sum assignment), socket attribution, PTE
                # access/dirty bits, and cumulative ground truth.
                kernels.mmu_ingest(
                    entries,
                    batch.counts,
                    batch.writes,
                    batch.sockets,
                    batch.pages,
                    self._entry_counts,
                    self._entry_writes,
                    self._entry_socket,
                    self.page_table.flags,
                    self.cumulative_counts,
                    self.cumulative_writes,
                    int(PteFlag.ACCESSED),
                    int(PteFlag.DIRTY),
                )
                return
            # Strictly-ascending unique pages (the AccessBatch histogram
            # invariant): per-entry sums are contiguous-run reductions over
            # the non-decreasing entry array, and every slot being summed
            # into is zero after the reset above — both bit-identical to
            # (and far cheaper than) ``np.add.at`` scatter-adds.
            keep = np.empty(entries.size, dtype=bool)
            keep[0] = True
            np.not_equal(entries[1:], entries[:-1], out=keep[1:])
            idx = np.flatnonzero(keep)
            if idx.size == entries.size:
                self._entry_counts[entries] = batch.counts
                self._entry_writes[entries] = batch.writes
            else:
                self._entry_counts[entries[idx]] = np.add.reduceat(batch.counts, idx)
                self._entry_writes[entries[idx]] = np.add.reduceat(batch.writes, idx)
            self._entry_socket[entries] = batch.sockets
            self.page_table.set_accessed(entries, written=batch.writes > 0)
            self.cumulative_counts[batch.pages] += batch.counts
            self.cumulative_writes[batch.pages] += batch.writes
            return
        _add_at(self._entry_counts, entries, batch.counts)
        _add_at(self._entry_writes, entries, batch.writes)
        # Dominant socket per entry: last writer wins among equal pages is
        # acceptable because batches already carry per-page dominants.
        self._entry_socket[entries] = batch.sockets

        self.page_table.set_accessed(entries, written=batch.writes > 0)
        _add_at(self.cumulative_counts, batch.pages, batch.counts)
        _add_at(self.cumulative_writes, batch.pages, batch.writes)

    @property
    def current_batch(self) -> AccessBatch:
        """The batch installed by the last :meth:`begin_interval`."""
        if self._current_batch is None:
            raise ConfigError("no interval has begun")
        return self._current_batch

    def release_batch(self) -> None:
        """Drop the reference to the current interval's batch.

        The engine calls this once every consumer of the interval's
        activity (cost model, PCM, profilers, PEBS) has run, so the
        arrays can be reclaimed and peak RSS stays O(one interval's
        touched pages) regardless of run length or footprint.  The
        touched-entry set survives — the next :meth:`begin_interval`
        still needs it for the scatter-reset.
        """
        self._current_batch = None

    # -- profiler primitives --------------------------------------------------

    def entry_count(self, entries: np.ndarray) -> np.ndarray:
        """Exact access count of ``entries`` this interval (oracle; used by
        ground-truth metrics, not by profilers)."""
        return self._entry_counts[np.asarray(entries, dtype=np.int64)]

    def entry_write_count(self, entries: np.ndarray) -> np.ndarray:
        """Exact write count of ``entries`` this interval."""
        return self._entry_writes[np.asarray(entries, dtype=np.int64)]

    def scan_detect(
        self,
        entries: np.ndarray,
        num_scans: int,
        rng: np.random.Generator,
        exposure: float | None = None,
        count_scale: float = 1.0,
    ) -> np.ndarray:
        """Access counts a ``num_scans``-scan profiler observes on ``entries``.

        Returns integers in ``[0, num_scans]`` per entry, drawn from the
        exposure model described in the module docstring.  The scan *cost*
        is charged separately by the cost model; call this once per entry
        per interval.

        Args:
            exposure: fraction of the interval's accesses one scan window
                covers.  ``None`` means evenly spread checks
                (``1 / num_scans`` — the saturating DAMON behaviour);
                burst-scanning profilers pass their pass-duration fraction.
            count_scale: fraction of the entry's accesses visible to the
                profiler.  Thermostat estimates a 2 MB huge page's hotness
                from one of its 4 KB slices, i.e. sees ~1/512 of the
                accesses (Sec. 5.4); that information loss is this knob.
        """
        entries = np.asarray(entries, dtype=np.int64)
        if num_scans < 1:
            raise ConfigError(f"num_scans must be >= 1, got {num_scans}")
        if not 0.0 < count_scale <= 1.0:
            raise ConfigError(f"count_scale must be in (0, 1], got {count_scale}")
        if exposure is None:
            exposure = 1.0 / num_scans
        if not 0.0 < exposure <= 1.0:
            raise ConfigError(f"exposure must be in (0, 1], got {exposure}")
        k = self._entry_counts[entries].astype(np.float64)
        if count_scale < 1.0:
            k = rng.binomial(self._entry_counts[entries], count_scale).astype(np.float64)
        p_scan = 1.0 - np.exp(-k * exposure)
        return rng.binomial(num_scans, p_scan).astype(np.int64)

    def fault_detect(self, entries: np.ndarray) -> np.ndarray:
        """Single-shot fault-based detection (Thermostat / AutoNUMA style).

        A protection- or hint-fault profiler arms the entry once and learns
        only whether it was touched, i.e. the ``num_scans == 1`` semantics.
        """
        entries = np.asarray(entries, dtype=np.int64)
        return (self._entry_counts[entries] >= 1).astype(np.int64)

    def accessor_socket(self, entries: np.ndarray) -> np.ndarray:
        """Dominant accessing socket per entry this interval (-1 if untouched).

        This is what a hint fault reveals: which CPU touched the page.
        """
        return self._entry_socket[np.asarray(entries, dtype=np.int64)]

    def write_happened(self, entries: np.ndarray) -> np.ndarray:
        """Whether each entry received any write this interval.

        Used by the adaptive migration mechanism's dirtiness tracking.
        """
        entries = np.asarray(entries, dtype=np.int64)
        return self._entry_writes[entries] >= 1
