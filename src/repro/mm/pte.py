"""PTE flag bits.

The bit positions mirror their x86-64 counterparts where one exists; the
reserved bit 11 is the one MTM repurposes for write tracking during
asynchronous migration (Sec. 7.2 / Sec. 8), and PROT_NONE stands in for the
AutoNUMA hint-fault encoding.
"""

from __future__ import annotations

import enum


class PteFlag(enum.IntFlag):
    """Flags stored per leaf page-table entry."""

    NONE = 0
    #: Page is mapped to a physical frame.
    PRESENT = 1 << 0
    #: Writes are permitted (cleared by write-protection-based profilers).
    WRITABLE = 1 << 1
    #: Set by the MMU on any access; cleared by profiler scans.
    ACCESSED = 1 << 5
    #: Set by the MMU on a write; cleared when the page is cleaned/migrated.
    DIRTY = 1 << 6
    #: This entry is a 2 MB huge mapping (lives in the PMD).
    HUGE = 1 << 7
    #: Reserved bit 11, used by MTM's migration write tracking.
    RESERVED11 = 1 << 11
    #: Mapping removed to force a NUMA hint fault on next access.
    PROT_NONE = 1 << 12

    @classmethod
    def default_mapped(cls) -> "PteFlag":
        """Flags of a freshly mapped, writable, clean page."""
        return cls.PRESENT | cls.WRITABLE
