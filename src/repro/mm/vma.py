"""Virtual memory areas and the per-process address space.

An :class:`AddressSpace` is the process-level container everything else
hangs off: a contiguous virtual page range carved into named VMAs (the data
objects a workload allocates), backed by one :class:`~repro.mm.pagetable.PageTable`.
MTM and DAMON both seed their profiling regions from the VMA list, so VMAs
also carry a human-readable name used by the heatmap experiments (objects
"A"/"B"/"C" of Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, TranslationError
from repro.mm.layout import PageTableGeometry, X86_64_GEOMETRY
from repro.mm.pagetable import PageTable
from repro.units import PAGES_PER_HUGE_PAGE, PAGE_SIZE, format_bytes


@dataclass(frozen=True)
class Vma:
    """One virtual memory area.

    Attributes:
        start: first virtual page number.
        npages: length in base pages.
        name: label for reporting (e.g. ``"hotset"``).
    """

    start: int
    npages: int
    name: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.npages < 1:
            raise ConfigError(f"bad VMA [{self.start}, +{self.npages})")

    @property
    def end(self) -> int:
        """One past the last page."""
        return self.start + self.npages

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def contains(self, page: int) -> bool:
        return self.start <= page < self.end

    def pages(self) -> np.ndarray:
        """All page numbers in this VMA."""
        return np.arange(self.start, self.end, dtype=np.int64)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vma({self.name}, [{self.start}, {self.end}), {format_bytes(self.nbytes)})"


class AddressSpace:
    """A process address space: VMAs over one page table.

    Args:
        n_pages: virtual space size in base pages.
        geometry: page-table geometry.
    """

    def __init__(self, n_pages: int, geometry: PageTableGeometry = X86_64_GEOMETRY) -> None:
        self.page_table = PageTable(n_pages, geometry)
        self.geometry = geometry
        self._vmas: list[Vma] = []
        self._cursor = 0  # next free page for sequential allocation

    @property
    def n_pages(self) -> int:
        return self.page_table.n_pages

    @property
    def vmas(self) -> tuple[Vma, ...]:
        return tuple(self._vmas)

    def allocate_vma(self, npages: int, name: str, align: int = PAGES_PER_HUGE_PAGE) -> Vma:
        """Reserve the next ``npages`` pages as a named VMA.

        Allocation is sequential with alignment (default: huge-page
        alignment, matching how mmap places large anonymous regions), which
        keeps VMAs disjoint and region formation deterministic.

        Note: this reserves *virtual* space only; pages are mapped later by
        the placement policy (first touch, slow-tier-first, ...).
        """
        if npages < 1:
            raise ConfigError(f"npages must be >= 1, got {npages}")
        if align < 1:
            raise ConfigError(f"align must be >= 1, got {align}")
        start = -(-self._cursor // align) * align
        if start + npages > self.n_pages:
            raise ConfigError(
                f"address space exhausted: need {npages} pages at {start}, "
                f"space has {self.n_pages}"
            )
        vma = Vma(start=start, npages=npages, name=name)
        self._vmas.append(vma)
        self._cursor = vma.end
        return vma

    def vma_of(self, page: int) -> Vma:
        """The VMA containing ``page``.

        Raises:
            TranslationError: if no VMA covers the page.
        """
        for vma in self._vmas:
            if vma.contains(page):
                return vma
        raise TranslationError(f"page {page} is not in any VMA")

    def vma_by_name(self, name: str) -> Vma:
        """Lookup a VMA by its label."""
        for vma in self._vmas:
            if vma.name == name:
                return vma
        raise TranslationError(f"no VMA named {name!r}")

    def total_vma_pages(self) -> int:
        """Pages reserved across all VMAs."""
        return sum(v.npages for v in self._vmas)

    def mapped_fraction(self) -> float:
        """Fraction of VMA pages that are actually mapped."""
        total = self.total_vma_pages()
        if total == 0:
            return 0.0
        return self.page_table.mapped_pages() / total
