"""Memory-management substrate: address spaces, page tables, MMU, faults.

This subpackage provides the kernel-side objects the paper's profilers and
migration mechanisms manipulate: virtual address spaces carved into VMAs, a
five-level page-table model with PTE bitfields (present / accessed / dirty /
reserved-bit-11 / protection), transparent huge pages, an MMU that applies
access batches, a TLB with flush costs, and the fault taxonomy (page,
protection, hint faults).
"""

from repro.mm.layout import PageTableGeometry, X86_64_GEOMETRY
from repro.mm.pte import PteFlag
from repro.mm.pagetable import PageTable
from repro.mm.vma import Vma, AddressSpace
from repro.mm.hugepage import ThpManager
from repro.mm.mmu import Mmu
from repro.mm.tlb import Tlb
from repro.mm.faults import FaultKind, FaultCounter

__all__ = [
    "PageTableGeometry",
    "X86_64_GEOMETRY",
    "PteFlag",
    "PageTable",
    "Vma",
    "AddressSpace",
    "ThpManager",
    "Mmu",
    "Tlb",
    "FaultKind",
    "FaultCounter",
]
