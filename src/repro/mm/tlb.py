"""TLB cost accounting.

The simulator does not model TLB *contents* (reach effects are folded into
the per-tier latencies, which were measured with THP on).  What it does
track is the operations whose costs differentiate the profiling and
migration designs: full flushes and per-page remote shootdowns.  MTM's PTE
scan deliberately skips the TLB flush (Sec. 5, "PTE scan without flushing
TLB"), Thermostat's protection games cannot, and every migration unmap
pays a shootdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class Tlb:
    """Counts TLB maintenance operations and their time.

    Attributes:
        flush_cost: seconds per full flush.
        shootdown_cost: seconds per page of remote shootdown.
    """

    flush_cost: float = 4e-6
    shootdown_cost: float = 1e-6
    flushes: int = 0
    pages_shot_down: int = 0
    time_spent: float = 0.0

    def __post_init__(self) -> None:
        if self.flush_cost < 0 or self.shootdown_cost < 0:
            raise ConfigError("TLB costs must be non-negative")

    def flush(self) -> float:
        """Record a full flush; returns its cost."""
        self.flushes += 1
        self.time_spent += self.flush_cost
        return self.flush_cost

    def shootdown(self, npages: int) -> float:
        """Record shootdown of ``npages`` mappings; returns its cost."""
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        cost = npages * self.shootdown_cost
        self.pages_shot_down += npages
        self.time_spent += cost
        return cost

    def reset(self) -> None:
        """Zero all counters and accumulated time."""
        self.flushes = 0
        self.pages_shot_down = 0
        self.time_spent = 0.0
