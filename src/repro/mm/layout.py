"""Page-table geometry for the five-level x86-64 layout.

The paper's default *memory region* is "a contiguous address space mapped by
a last-level page directory entry (PDE)" — on x86-64 a PMD entry covering
2 MB.  This module provides the arithmetic for how many entries and table
pages each level needs for a given span, which the cost model uses to price
full-table scans and the migration mechanisms use to count the page-table
pages that must move with a region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class PageTableGeometry:
    """Shape of a radix page table.

    Attributes:
        levels: number of levels (5 for x86-64 with LA57).
        bits_per_level: index bits per level (9 on x86-64: 512 entries).
        page_shift: log2 of the base page size (12 for 4 KB).
    """

    levels: int = 5
    bits_per_level: int = 9
    page_shift: int = 12

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ConfigError("page table needs at least 2 levels")
        if self.bits_per_level < 1:
            raise ConfigError("bits_per_level must be >= 1")
        if (1 << self.page_shift) != PAGE_SIZE:
            raise ConfigError(
                f"page_shift {self.page_shift} disagrees with PAGE_SIZE {PAGE_SIZE}"
            )

    @property
    def entries_per_table(self) -> int:
        """Entries in one table page (512 on x86-64)."""
        return 1 << self.bits_per_level

    @property
    def huge_page_pages(self) -> int:
        """Base pages covered by one last-level PDE (a PMD huge page)."""
        return self.entries_per_table

    @property
    def region_pages(self) -> int:
        """Base pages in the paper's default memory region (one PMD span)."""
        return self.entries_per_table

    def span_pages(self, level: int) -> int:
        """Base pages covered by one entry at ``level`` (0 = leaf PTE).

        Level 0 is a PTE (1 page); level 1 is a PMD entry (512 pages), etc.
        """
        if not 0 <= level < self.levels:
            raise ConfigError(f"level {level} out of range 0..{self.levels - 1}")
        return self.entries_per_table**level

    def tables_needed(self, npages: int, level: int = 0) -> int:
        """Table pages needed at ``level`` to map ``npages`` contiguous pages.

        Level 0 counts leaf PTE table pages, level 1 counts PMD table pages,
        and so on.  Assumes the mapping starts table-aligned, which is how
        the simulator lays out VMAs.
        """
        if npages < 0:
            raise ConfigError(f"negative page count: {npages}")
        if npages == 0:
            return 0
        covered_by_one_table = self.entries_per_table * self.span_pages(level)
        return -(-npages // covered_by_one_table)

    def total_table_pages(self, npages: int) -> int:
        """Table pages across all levels to map ``npages`` base pages."""
        return sum(self.tables_needed(npages, level) for level in range(self.levels - 1))

    def pte_entries_to_scan(self, npages: int, huge_mask_pages: int = 0) -> int:
        """Leaf entries a full scan must visit for a mixed mapping.

        Args:
            npages: base pages mapped as 4 KB PTEs.
            huge_mask_pages: base pages mapped by 2 MB PDEs (each PDE is a
                single entry covering :attr:`huge_page_pages` pages).
        """
        if npages < 0 or huge_mask_pages < 0:
            raise ConfigError("negative page counts")
        if huge_mask_pages % self.huge_page_pages:
            raise ConfigError(
                f"huge span {huge_mask_pages} not a multiple of {self.huge_page_pages}"
            )
        return npages + huge_mask_pages // self.huge_page_pages


#: The geometry of the paper's testbed (Linux v6.6, five-level tables).
X86_64_GEOMETRY = PageTableGeometry()
