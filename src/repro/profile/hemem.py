"""HeMem-style PEBS-only profiling (baseline).

HeMem (SOSP'21) never scans PTEs: page hotness comes entirely from PEBS
samples, accumulated per page with periodic cooling.  That makes profiling
nearly free, but sampling randomness misses hot pages — "using
perf-counters alone is not enough to provide high-quality profiling"
(Sec. 5.5), which is what Fig. 12 shows once the working set spills out of
DRAM.  Scores are reported per 2 MB chunk so policies can treat all
profilers uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro import perfflags
from repro.errors import ConfigError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.events import PEBS_ALL_EVENTS
from repro.perf.pebs import PebsSampler
from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import DEFAULT_REGION_PAGES
from repro.sim.costmodel import CostModel


@dataclass
class PebsOnlyConfig:
    """HeMem profiling tunables.

    Attributes:
        cooling_interval: intervals between halving of accumulated counts
            (HeMem's cooling).
        chunk_pages: reporting granularity.
    """

    cooling_interval: int = 4
    chunk_pages: int = DEFAULT_REGION_PAGES

    def __post_init__(self) -> None:
        if self.cooling_interval < 1:
            raise ConfigError("cooling_interval must be >= 1")
        if self.chunk_pages < 1:
            raise ConfigError("chunk_pages must be >= 1")


class PebsOnlyProfiler(Profiler):
    """HeMem's counter-only profiler."""

    name = "hemem_pebs"

    def __init__(
        self,
        cost_model: CostModel,
        config: PebsOnlyConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config if config is not None else PebsOnlyConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._page_table: PageTable | None = None
        self._chunk_starts: np.ndarray | None = None
        self._chunk_sizes: np.ndarray | None = None
        self._scores: np.ndarray | None = None
        self._interval = -1

    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        self._page_table = page_table
        starts: list[int] = []
        sizes: list[int] = []
        for start, npages in spans:
            offset = start
            remaining = npages
            while remaining > 0:
                size = min(self.config.chunk_pages, remaining)
                starts.append(offset)
                sizes.append(size)
                offset += size
                remaining -= size
        self._chunk_starts = np.array(starts, dtype=np.int64)
        self._chunk_sizes = np.array(sizes, dtype=np.int64)
        self._scores = np.zeros(len(starts), dtype=np.float64)
        self._interval = -1

    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        if self._page_table is None or self._scores is None:
            raise ConfigError("profile() before setup()")
        if pebs is None:
            raise ConfigError("PEBS-only profiling requires a PebsSampler")
        page_table = self._page_table
        self._interval += 1

        # HeMem programs DRAM + NVM events and samples continuously.
        original_events = pebs.events
        pebs.events = PEBS_ALL_EVENTS
        try:
            sample_set = pebs.sample(mmu.current_batch, page_table, socket=socket)
        finally:
            pebs.events = original_events

        if self._interval % self.config.cooling_interval == 0 and self._interval > 0:
            self._scores *= 0.5  # HeMem's cooling halves all counts.

        if sample_set.pages.size:
            idx = np.searchsorted(self._chunk_starts, sample_set.pages, side="right") - 1
            valid = idx >= 0
            np.add.at(self._scores, idx[valid], sample_set.samples[valid].astype(np.float64))

        if perfflags.incremental():
            # One bulk pass over the placement RLE instead of a per-chunk
            # O(chunk_pages) slice+count; bit-identical node resolution
            # (both tie-break toward the lowest node id).
            nodes = page_table.span_majority_nodes(self._chunk_starts, self._chunk_sizes)
            reports = [
                RegionReport(
                    start=int(self._chunk_starts[i]),
                    npages=int(self._chunk_sizes[i]),
                    score=float(self._scores[i]),
                    whi=float(self._scores[i]),
                    node=int(nodes[i]),
                )
                for i in range(self._chunk_starts.size)
            ]
        else:
            reports = [
                RegionReport(
                    start=int(self._chunk_starts[i]),
                    npages=int(self._chunk_sizes[i]),
                    score=float(self._scores[i]),
                    whi=float(self._scores[i]),
                    node=int(self._majority_node(i)),
                )
                for i in range(self._chunk_starts.size)
            ]
        time = self.cost_model.pebs_time(sample_set.total_samples)
        obs = self.obs
        if obs is not None:
            self._emit_scan(
                obs,
                interval=self._interval,
                regions=int(self._chunk_starts.size),
                scanned=int(self._chunk_starts.size),
                scans_used=0,
                budget=0,
                over_budget=False,
                pebs_samples=sample_set.total_samples,
                profiling_time=time,
            )
        return ProfileSnapshot(
            interval=self._interval,
            reports=reports,
            profiling_time=time,
            pebs_samples=sample_set.total_samples,
        )

    def memory_overhead_bytes(self) -> int:
        return 8 * (self._scores.size if self._scores is not None else 0)

    def _majority_node(self, chunk_idx: int) -> int:
        assert self._page_table is not None and self._chunk_starts is not None
        start = int(self._chunk_starts[chunk_idx])
        size = int(self._chunk_sizes[chunk_idx])
        nodes = self._page_table.node[start : start + size]
        mapped = nodes[nodes >= 0]
        if mapped.size == 0:
            return -1
        values, counts = nputil.unique_counts(mapped)
        return int(values[np.argmax(counts)])
