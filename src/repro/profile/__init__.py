"""Profiling mechanisms: MTM's adaptive profiler and all baselines.

Implements Sec. 5 of the paper (adaptive memory regions, adaptive page
sampling, overhead control, huge-page awareness, PEBS-assisted scan) plus
the profilers MTM is evaluated against: DAMON, Thermostat, the
AutoNUMA/AutoTiering random-window sampler, and HeMem's PEBS-only
profiling.  :mod:`repro.profile.quality` computes the recall/accuracy
metrics of Fig. 1.
"""

from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import MemoryRegion, RegionSet, RegionStats
from repro.profile.quality import ProfilingQuality, evaluate_quality
from repro.profile.mtm import MtmProfiler, MtmProfilerConfig
from repro.profile.damon import DamonProfiler, DamonConfig
from repro.profile.thermostat import ThermostatProfiler, ThermostatConfig
from repro.profile.autonuma import RandomWindowProfiler, RandomWindowConfig
from repro.profile.hemem import PebsOnlyProfiler, PebsOnlyConfig

__all__ = [
    "Profiler",
    "ProfileSnapshot",
    "RegionReport",
    "MemoryRegion",
    "RegionSet",
    "RegionStats",
    "ProfilingQuality",
    "evaluate_quality",
    "MtmProfiler",
    "MtmProfilerConfig",
    "DamonProfiler",
    "DamonConfig",
    "ThermostatProfiler",
    "ThermostatConfig",
    "RandomWindowProfiler",
    "RandomWindowConfig",
    "PebsOnlyProfiler",
    "PebsOnlyConfig",
]
