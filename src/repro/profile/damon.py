"""DAMON: Linux's region-based data-access monitor (baseline).

Faithful to the upstream algorithm the paper critiques (Sec. 3):

* regions are seeded from the VMAs and bounded by ``[min_regions,
  max_regions]`` — overhead is controlled **only** through the region
  count, one sampled page per region per aggregation interval;
* two adjacent regions merge when their access counts differ by at most
  ``merge_threshold``;
* whenever fewer than ``max_regions / 2`` regions exist, *every* region is
  split into two **randomly sized** halves — the ad-hoc formation the
  paper blames for DAMON's low accuracy;
* no huge-page awareness: split points land anywhere, so one 2 MB page can
  end up profiled by two regions;
* no temporal smoothing beyond the current aggregation's count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import perfflags
from repro.errors import ConfigError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.pebs import PebsSampler
from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import MemoryRegion, RegionSet
from repro.sim.costmodel import CostModel


@dataclass
class DamonConfig:
    """DAMON tunables.

    Attributes:
        min_regions: lower bound on the region count.
        max_regions: upper bound (the overhead knob).  ``None`` derives it
            from the same Eq. 1 budget MTM gets, so comparisons run at
            equal profiling overhead as in Fig. 1.
        checks_per_aggregation: access-bit checks per sampled page per
            aggregation.  Upstream DAMON checks every 5 ms within a 100 ms
            aggregation: 20 checks, ``nr_accesses`` in [0, 20].
        aggregations_per_interval: aggregation rounds per profiling
            interval (the paper's 10 s interval spans ~100 of upstream's
            100 ms aggregations); each round samples a *fresh* random page
            of every region.
        check_exposure: fraction of the interval's accesses one check
            window sees.  Upstream's 5 ms sampling window over the paper's
            10 s interval is 5e-4 — small enough that hot and cold entries
            *do* separate (unlike a naive every-third-of-the-interval
            check, which saturates).  Region scores are noisy single-page
            estimates, which combined with the random splits is what caps
            DAMON's accuracy in Fig. 1.
        merge_threshold: max score difference for merging (score scale is
            mean detected checks per page, ~1 for hot, ~0.1 for cold).
        interval: profiling interval in seconds.
        overhead_constraint: profiling overhead target (for budget derivation).
    """

    min_regions: int = 10
    max_regions: int | None = None
    checks_per_aggregation: int = 20
    aggregations_per_interval: int = 100
    check_exposure: float = 5e-4
    merge_threshold: float = 0.5
    interval: float = 10.0
    overhead_constraint: float = 0.05

    def __post_init__(self) -> None:
        if self.min_regions < 1:
            raise ConfigError(f"min_regions must be >= 1, got {self.min_regions}")
        if self.checks_per_aggregation < 1:
            raise ConfigError("checks_per_aggregation must be >= 1")
        if self.aggregations_per_interval < 1:
            raise ConfigError("aggregations_per_interval must be >= 1")
        if not 0.0 < self.check_exposure <= 1.0:
            raise ConfigError("check_exposure must be in (0, 1]")
        if self.max_regions is not None and self.max_regions < self.min_regions:
            raise ConfigError("max_regions < min_regions")


class DamonProfiler(Profiler):
    """Linux DAMON, as described in Sec. 3 of the paper."""

    name = "damon"

    def __init__(
        self,
        cost_model: CostModel,
        config: DamonConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config if config is not None else DamonConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.regions: RegionSet | None = None
        self._page_table: PageTable | None = None
        self._interval = -1

    @property
    def max_regions(self) -> int:
        """Region cap derived from the same overhead budget MTM gets.

        DAMON's sampling/aggregation cadence is wall-clock (one interval
        here represents the paper's 10 s), so the budget arithmetic runs
        in paper time: a region costs ``aggregations * checks`` scans per
        10 s, and the cap is the 5%-of-10s scan budget divided by that
        (~190 regions — upstream's defaults land in the hundreds too).
        """
        if self.config.max_regions is not None:
            return self.config.max_regions
        from repro.sim.costmodel import PAPER_INTERVAL

        scans_per_region = (
            self.config.aggregations_per_interval * self.config.checks_per_aggregation
        )
        budget_scans = PAPER_INTERVAL * self.config.overhead_constraint / (
            self.cost_model.params.scan_overhead
        )
        return max(self.config.min_regions, int(budget_scans / scans_per_region))

    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        self._page_table = page_table
        # DAMON's initial regions come straight from the VMA tree: one
        # region per VMA span (coarse — the paper's Fig. 6 point "B").
        self.regions = RegionSet(
            [MemoryRegion(start=s, npages=n) for s, n in spans if n > 0]
        )
        self._interval = -1

    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        if self.regions is None or self._page_table is None:
            raise ConfigError("profile() before setup()")
        cfg = self.config
        page_table = self._page_table
        self._interval += 1
        obs = self.obs
        scans = 0
        merges_before = self.regions.stats.merges

        # Per aggregation round DAMON samples a fresh random page of every
        # region and checks its bit checks_per_aggregation times with the
        # short (5 ms) sampling window; the interval spans many rounds,
        # but the state the operator reads is the tail of the aggregation
        # stream (the last ~half second) — a noisy few-page estimate,
        # which is the root of DAMON's limited hot-page quality in Fig. 1.
        for region in self.regions:
            n_rounds = min(cfg.aggregations_per_interval, region.npages)
            pages = self.rng.integers(region.start, region.end, n_rounds)
            entries = page_table.entry_index(pages)
            detected = mmu.scan_detect(
                entries, cfg.checks_per_aggregation, self.rng,
                exposure=cfg.check_exposure,
            )
            tail = detected[-5:] if detected.size >= 5 else detected
            region.record_interval(float(tail.mean()), 0.0, alpha=1.0)
            scans += n_rounds * cfg.checks_per_aggregation

        # Merge adjacent regions whose counts differ by less than the
        # threshold (strictly — a 0-vs-1 pair stays distinct).
        self.regions.merge_pass(cfg.merge_threshold, top_k_variance=1)
        merges_delta = self.regions.stats.merges - merges_before

        # Split every region into two randomly sized halves when the count
        # has room — DAMON's ad-hoc split (no huge-page alignment).
        splits_delta = 0
        if len(self.regions) < self.max_regions / 2:
            new_regions: list[MemoryRegion] = []
            splits = 0
            for region in self.regions:
                if region.npages >= 2 and len(self.regions) + splits < self.max_regions:
                    cut = int(self.rng.integers(1, region.npages))
                    left = MemoryRegion(
                        start=region.start, npages=cut,
                        hi=region.hi, whi=region.whi, prev_hi=region.prev_hi,
                    )
                    right = MemoryRegion(
                        start=region.start + cut, npages=region.npages - cut,
                        hi=region.hi, whi=region.whi, prev_hi=region.prev_hi,
                    )
                    new_regions.extend((left, right))
                    splits += 1
                else:
                    new_regions.append(region)
            self.regions = RegionSet(new_regions)
            self.regions.stats.splits += splits
            splits_delta = splits
        self.regions.end_interval()
        if obs is not None:
            self._emit_formation(obs, merges=merges_delta, splits=splits_delta)

        if perfflags.incremental():
            # Resolve every region's resident node in one RLE pass rather
            # than a per-region O(npages) slice; bit-identical ordering.
            starts, sizes, _ = self.regions.as_arrays()
            nodes = page_table.span_majority_nodes(starts, sizes)
            reports = [
                RegionReport(
                    start=r.start,
                    npages=r.npages,
                    score=r.hi,
                    whi=r.hi,
                    node=int(nodes[j]),
                )
                for j, r in enumerate(self.regions)
            ]
        else:
            reports = [
                RegionReport(
                    start=r.start,
                    npages=r.npages,
                    score=r.hi,
                    whi=r.hi,
                    node=r.node(page_table),
                )
                for r in self.regions
            ]
        # The scans happened over one wall-clock interval that stands for
        # the paper's 10 s; charge the same *fraction* of the simulated
        # interval.
        from repro.sim.costmodel import PAPER_INTERVAL

        time = self.cost_model.scan_time(scans) * (cfg.interval / PAPER_INTERVAL)
        if obs is not None:
            self._emit_scan(
                obs,
                interval=self._interval,
                regions=len(self.regions),
                scanned=len(self.regions),
                scans_used=scans,
                budget=self.max_regions,
                over_budget=False,
                pebs_samples=0,
                profiling_time=time,
            )
        return ProfileSnapshot(
            interval=self._interval,
            reports=reports,
            profiling_time=time,
            scans_performed=scans,
        )

    def memory_overhead_bytes(self) -> int:
        # DAMON stores ~48 bytes per damon_region.
        return 48 * (len(self.regions) if self.regions else 0)
