"""Memory regions: the unit of profiling and migration.

A region is a contiguous span of virtual pages, by default the span of one
last-level page-directory entry (2 MB).  Regions are *logical*: merging and
splitting never touches the page table (Sec. 5.1).  Each region carries its
page-sample quota, the hotness indication from the most recent interval
(``hi``), its exponential moving average (``whi``, Eq. 2), and the last
interval's ``hi`` for the variance signal that drives quota redistribution
(Sec. 5.2).

The split point is huge-page aware (Sec. 5.4): if the midpoint would land
inside a huge page it is nudged to the huge-page boundary, so one huge page
is never profiled by two regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro import perfflags
from repro.errors import ConfigError, ProfilingError
from repro.mm.pagetable import PageTable
from repro.units import PAGES_PER_HUGE_PAGE, PAGE_SIZE, format_bytes

#: Default region span: one last-level PDE = 2 MB = 512 base pages.
DEFAULT_REGION_PAGES = PAGES_PER_HUGE_PAGE


@dataclass
class MemoryRegion:
    """One profiling region.

    Attributes:
        start: first base page.
        npages: length in base pages.
        n_samples: page-sample quota for the next interval.
        hi: hotness indication of the last interval (mean detected access
            count over sampled pages, in [0, num_scans]).
        whi: exponential moving average of ``hi`` (Eq. 2).
        prev_hi: ``hi`` of the interval before last (variance signal).
        last_max_diff: max difference in detected counts between sampled
            pages last interval (split signal, Sec. 5.1).
        dominant_socket: socket issuing most accesses (multi-view, -1 unknown).
        hottest_entry: page number of the hottest sampled entry last
            interval (-1 unknown); guides the split point so a hot
            fragment is carved out directly instead of by repeated
            bisection ("the splitting of memory regions ... is able to be
            guided", Sec. 1).
    """

    start: int
    npages: int
    n_samples: int = 1
    hi: float = 0.0
    whi: float = 0.0
    prev_hi: float = 0.0
    last_max_diff: float = 0.0
    dominant_socket: int = -1
    hottest_entry: int = -1

    def __post_init__(self) -> None:
        if self.start < 0 or self.npages < 1:
            raise ConfigError(f"bad region [{self.start}, +{self.npages})")
        if self.n_samples < 1:
            raise ConfigError(f"region needs >= 1 sample, got {self.n_samples}")

    def __setattr__(self, name: str, value) -> None:
        # Owner-notify hook: the containing RegionSet keeps O(1) running
        # totals of quota and coverage, and regions are mutated directly
        # all over the profiler (quota redistribution, ablations, tests).
        # Routing the two aggregated fields through the owner keeps the
        # cached totals correct no matter who mutates the region.
        if name in ("n_samples", "npages"):
            owner = self.__dict__.get("_owner")
            old = self.__dict__.get(name)
            self.__dict__[name] = value
            if owner is not None and old is not None and value != old:
                owner._region_field_changed(name, value - old)
        else:
            self.__dict__[name] = value

    @property
    def end(self) -> int:
        return self.start + self.npages

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    @property
    def variance_signal(self) -> float:
        """Hotness swing across the last two intervals (Sec. 5.2)."""
        return abs(self.hi - self.prev_hi)

    def record_interval(self, hi: float, max_diff: float, alpha: float) -> None:
        """Fold one interval's observation into the region state.

        Args:
            hi: this interval's hotness indication.
            max_diff: max detected-count difference between sampled pages.
            alpha: EMA weight of the current observation (Eq. 2).
        """
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0,1], got {alpha}")
        self.prev_hi = self.hi
        self.hi = float(hi)
        self.last_max_diff = float(max_diff)
        self.whi = alpha * self.hi + (1.0 - alpha) * self.whi

    def entries(self, page_table: PageTable) -> np.ndarray:
        """Unique leaf entries (PTEs / PMD heads) covering this region."""
        pages = np.arange(self.start, self.end, dtype=np.int64)
        return nputil.unique(page_table.entry_index(pages))

    def max_samples(self, page_table: PageTable) -> int:
        """Upper bound on useful samples: distinct entries in the region."""
        return int(self.entries(page_table).size)

    def node(self, page_table: PageTable) -> int:
        """Component holding the majority of this region's pages (-1 if unmapped)."""
        if perfflags.incremental():
            # Run-length resolution over the page table's placement runs:
            # O(runs overlapping the region) instead of O(npages), and
            # bit-identical — both paths break majority ties toward the
            # lowest node id.
            starts = np.asarray([self.start], dtype=np.int64)
            sizes = np.asarray([self.npages], dtype=np.int64)
            return int(page_table.span_majority_nodes(starts, sizes)[0])
        nodes = page_table.node[self.start : self.end]
        mapped = nodes[nodes >= 0]
        if mapped.size == 0:
            return -1
        values, counts = nputil.unique_counts(mapped)
        return int(values[np.argmax(counts)])

    def pages(self) -> np.ndarray:
        return np.arange(self.start, self.end, dtype=np.int64)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Region([{self.start}, {self.end}), {format_bytes(self.nbytes)}, "
            f"samples={self.n_samples}, hi={self.hi:.2f}, whi={self.whi:.2f})"
        )


@dataclass
class RegionStats:
    """Merge/split counters for Table 7."""

    merges: int = 0
    splits: int = 0
    intervals: int = 0
    region_count_sum: int = 0

    def merged_per_interval(self) -> float:
        return self.merges / self.intervals if self.intervals else 0.0

    def split_per_interval(self) -> float:
        return self.splits / self.intervals if self.intervals else 0.0

    def avg_regions(self) -> float:
        return self.region_count_sum / self.intervals if self.intervals else 0.0


class RegionSet:
    """An ordered, disjoint set of regions with merge/split operations.

    Regions never overlap and are kept sorted by start page.  Adjacency for
    merging means *contiguity* (``a.end == b.start``): the paper merges
    "two contiguous regions".
    """

    def __init__(self, regions: list[MemoryRegion] | None = None) -> None:
        self._regions: list[MemoryRegion] = []
        self._total_samples = 0
        self._total_pages = 0
        self.stats = RegionStats()
        if regions:
            for region in sorted(regions, key=lambda r: r.start):
                self.add(region)

    # -- container ----------------------------------------------------------

    def add(self, region: MemoryRegion) -> None:
        """Insert ``region``, enforcing disjointness."""
        idx = self._insertion_index(region.start)
        if idx > 0 and self._regions[idx - 1].end > region.start:
            raise ProfilingError(f"{region} overlaps {self._regions[idx - 1]}")
        if idx < len(self._regions) and region.end > self._regions[idx].start:
            raise ProfilingError(f"{region} overlaps {self._regions[idx]}")
        self._regions.insert(idx, region)
        self._adopt(region)

    def _adopt(self, region: MemoryRegion) -> None:
        region.__dict__["_owner"] = self
        self._total_samples += region.n_samples
        self._total_pages += region.npages

    def _orphan(self, region: MemoryRegion) -> None:
        region.__dict__["_owner"] = None
        self._total_samples -= region.n_samples
        self._total_pages -= region.npages

    def _region_field_changed(self, name: str, delta: int) -> None:
        """Owner-notify callback from :class:`MemoryRegion.__setattr__`."""
        if name == "n_samples":
            self._total_samples += delta
        else:
            self._total_pages += delta

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    def __getitem__(self, idx: int) -> MemoryRegion:
        return self._regions[idx]

    @property
    def regions(self) -> tuple[MemoryRegion, ...]:
        return tuple(self._regions)

    def total_samples(self) -> int:
        """Total sample quota, from the cached running total (O(1))."""
        return self._total_samples

    def total_pages(self) -> int:
        """Pages covered by all regions, from the cached total (O(1))."""
        return self._total_pages

    def region_of(self, page: int) -> MemoryRegion:
        """The region containing ``page``."""
        idx = self._insertion_index(page + 1) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.start <= page < region.end:
                return region
        raise ProfilingError(f"page {page} is not covered by any region")

    # -- formation: merge --------------------------------------------------------

    def merge_pass(
        self,
        tau_m: float,
        top_k_variance: int = 5,
        max_pages: int | None = None,
        heterogeneity_guard: float | None = None,
        use_ema_guard: bool = True,
    ) -> int:
        """Merge contiguous regions whose ``hi`` differs by less than ``tau_m``.

        After each merge the combined sample quota is halved (floored at 1)
        and the saved quota is redistributed to the ``top_k_variance``
        regions with the largest hotness swing (Sec. 5.2).

        Args:
            max_pages: never grow a region beyond this size.  Keeps every
                region migratable as a unit (well under any tier's
                capacity), matching the region sizes the paper reports at
                full machine scale (Table 7: ~hundreds of MB).
            heterogeneity_guard: a region whose sampled pages disagreed by
                more than this last interval is *internally* mixed and is
                never merged — it is still being refined by splits.
                Without the guard, a small hot fragment diluted inside a
                large region keeps the region's mean ``hi`` low, the merge
                pass re-absorbs every split child, and refinement can
                never isolate the fragment.  (This enforces the paper's
                stated invariant that pages within a region exhibit
                similar hotness.)
            use_ema_guard: also require the regions' EMAs (``whi``) to
                agree before merging, so one blinked observation cannot
                absorb a hot region (see the inline comment).  Disabled by
                the formation-ablation study.

        Returns:
            Number of merges performed.
        """
        if tau_m < 0:
            raise ConfigError(f"tau_m must be >= 0, got {tau_m}")
        if max_pages is not None and max_pages < 1:
            raise ConfigError(f"max_pages must be >= 1, got {max_pages}")
        merges = 0
        saved_quota = 0
        i = 0
        while i + 1 < len(self._regions):
            a, b = self._regions[i], self._regions[i + 1]
            fits = max_pages is None or a.npages + b.npages <= max_pages
            homogeneous = heterogeneity_guard is None or (
                a.last_max_diff <= heterogeneity_guard
                and b.last_max_diff <= heterogeneity_guard
            )
            # Both the most recent observation (hi) and the EMA (whi) must
            # agree the regions are alike: one missed scan interval (a
            # PEBS capture miss) zeroes hi but not whi, and without the
            # EMA check a genuinely hot region would be absorbed into its
            # cold neighbourhood on such a blink.
            alike = abs(a.hi - b.hi) < tau_m and (
                not use_ema_guard or abs(a.whi - b.whi) < tau_m
            )
            if fits and homogeneous and a.end == b.start and alike:
                merged = self._merge_pair(a, b)
                combined = a.n_samples + b.n_samples
                merged.n_samples = max(1, combined // 2)
                saved_quota += combined - merged.n_samples
                self._orphan(a)
                self._orphan(b)
                self._regions[i : i + 2] = [merged]
                self._adopt(merged)
                merges += 1
                # Stay at i: the merged region may merge again leftward of
                # the next neighbour.
            else:
                i += 1
        if saved_quota:
            self.redistribute_quota(saved_quota, top_k=top_k_variance)
        self.stats.merges += merges
        return merges

    @staticmethod
    def _merge_pair(a: MemoryRegion, b: MemoryRegion) -> MemoryRegion:
        """Combine two contiguous regions; statistics are size-weighted."""
        total = a.npages + b.npages
        w_a, w_b = a.npages / total, b.npages / total
        return MemoryRegion(
            start=a.start,
            npages=total,
            n_samples=1,  # caller overrides
            hi=w_a * a.hi + w_b * b.hi,
            whi=w_a * a.whi + w_b * b.whi,
            prev_hi=w_a * a.prev_hi + w_b * b.prev_hi,
            last_max_diff=max(a.last_max_diff, b.last_max_diff),
            dominant_socket=a.dominant_socket if a.npages >= b.npages else b.dominant_socket,
        )

    # -- formation: split --------------------------------------------------------

    def split_pass(self, tau_s: float, page_table: PageTable | None = None) -> int:
        """Split regions whose sampled pages disagree by more than ``tau_s``.

        The split point is the midpoint, adjusted to a huge-page boundary
        when a page table is supplied and the midpoint falls inside a huge
        mapping (Sec. 5.4).  The parent's quota is divided evenly so the
        total PTE-scan count is unchanged.

        Returns:
            Number of splits performed.
        """
        if tau_s < 0:
            raise ConfigError(f"tau_s must be >= 0, got {tau_s}")
        splits = 0
        out: list[MemoryRegion] = []
        for region in self._regions:
            if region.last_max_diff > tau_s and region.npages >= 2:
                left, right = self.split_region(region, page_table)
                if right is None:
                    out.append(region)
                else:
                    self._orphan(region)
                    out.extend((left, right))
                    self._adopt(left)
                    self._adopt(right)
                    splits += 1
            else:
                out.append(region)
        self._regions = out
        self.stats.splits += splits
        return splits

    @staticmethod
    def split_region(
        region: MemoryRegion, page_table: PageTable | None = None
    ) -> tuple[MemoryRegion, MemoryRegion | None]:
        """Split one region, huge-page aligned, guided by the hot sample.

        When the profiler recorded which sampled entry was hottest, the
        split lands on that entry's boundary, so a hot fragment is carved
        out of a large mixed region in one or two cuts rather than by
        repeated bisection.  Without guidance the midpoint is used.

        Returns:
            ``(left, right)``; ``right`` is None when no legal split point
            exists (e.g. the region is a single huge page).
        """
        mid = region.start + region.npages // 2
        hot = region.hottest_entry
        if region.start < hot < region.end:
            # Cut just before the hot entry's huge span; if the hot entry
            # leads the region, cut just after it instead.
            aligned_hot = hot - (hot % PAGES_PER_HUGE_PAGE)
            if aligned_hot > region.start:
                mid = aligned_hot
            else:
                mid = region.start + PAGES_PER_HUGE_PAGE
        elif hot == region.start:
            mid = region.start + PAGES_PER_HUGE_PAGE
        if page_table is not None and page_table.is_huge(min(mid, page_table.n_pages - 1)):
            aligned = mid - (mid % PAGES_PER_HUGE_PAGE)
            if aligned <= region.start:
                aligned = region.start + ((mid - region.start) // PAGES_PER_HUGE_PAGE + 1) * PAGES_PER_HUGE_PAGE
            mid = aligned
        if mid <= region.start or mid >= region.end:
            return (region, None)
        quota_left = max(1, region.n_samples // 2)
        quota_right = max(1, region.n_samples - quota_left)
        left = MemoryRegion(
            start=region.start,
            npages=mid - region.start,
            n_samples=quota_left,
            hi=region.hi,
            whi=region.whi,
            prev_hi=region.prev_hi,
            last_max_diff=0.0,
            dominant_socket=region.dominant_socket,
        )
        right = MemoryRegion(
            start=mid,
            npages=region.end - mid,
            n_samples=quota_right,
            hi=region.hi,
            whi=region.whi,
            prev_hi=region.prev_hi,
            last_max_diff=0.0,
            dominant_socket=region.dominant_socket,
        )
        return (left, right)

    # -- quota management --------------------------------------------------------

    def redistribute_quota(self, quota: int, top_k: int = 5) -> None:
        """Give ``quota`` extra samples to the top-``top_k`` variance regions.

        MTM keeps a running top-five of hotness-swing regions (Sec. 5.2);
        the saved samples from merging go to them, round-robin.
        """
        if quota < 0:
            raise ConfigError(f"negative quota: {quota}")
        if quota == 0 or not self._regions:
            return
        # Stable descending argsort over the gathered signal array: same
        # ordering (ties keep insertion order) as the old per-region
        # ``sorted(key=..., reverse=True)`` without building key tuples.
        order = np.argsort(-self._variance_signals(), kind="stable")
        targets = [self._regions[int(i)] for i in order[: max(1, top_k)]]
        # Round-robin from the first target, in closed form.
        base, rem = divmod(quota, len(targets))
        for i, target in enumerate(targets):
            target.n_samples += base + (1 if i < rem else 0)

    def rebalance_to_budget(self, budget: int) -> None:
        """Force the total sample quota to exactly ``budget``.

        Excess is trimmed from the lowest-variance regions (never below one
        sample per region); shortfall goes to the highest-variance regions.
        Requires ``len(self) <= budget``; the overhead controller must merge
        first if not (Sec. 5.3).
        """
        if budget < len(self._regions):
            raise ProfilingError(
                f"budget {budget} < region count {len(self._regions)}; merge first"
            )
        total = self.total_samples()
        if total < budget:
            self.redistribute_quota(budget - total)
        elif total > budget:
            excess = total - budget
            order = np.argsort(self._variance_signals(), kind="stable")
            for i in order:
                region = self._regions[int(i)]
                take = min(excess, region.n_samples - 1)
                region.n_samples -= take
                excess -= take
                if excess == 0:
                    break

    def end_interval(self) -> None:
        """Bump the per-interval statistics (call once per interval)."""
        self.stats.intervals += 1
        self.stats.region_count_sum += len(self._regions)

    # -- construction helpers --------------------------------------------------------

    @classmethod
    def from_spans(
        cls,
        spans: list[tuple[int, int]],
        region_pages: int = DEFAULT_REGION_PAGES,
    ) -> "RegionSet":
        """Carve ``(start, npages)`` spans into fixed-size initial regions.

        This is how MTM seeds regions: one region per valid last-level PDE
        (2 MB by default).  The tail of a span that doesn't fill a whole
        region still becomes a (smaller) region.
        """
        if region_pages < 1:
            raise ConfigError(f"region_pages must be >= 1, got {region_pages}")
        regions = []
        for start, npages in spans:
            offset = start
            remaining = npages
            while remaining > 0:
                size = min(region_pages, remaining)
                regions.append(MemoryRegion(start=offset, npages=size))
                offset += size
                remaining -= size
        return cls(regions)

    # -- internals --------------------------------------------------------------

    def _variance_signals(self) -> np.ndarray:
        """Per-region hotness swings, gathered into one array."""
        return np.fromiter(
            (abs(r.hi - r.prev_hi) for r in self._regions),
            dtype=np.float64,
            count=len(self._regions),
        )

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Struct-of-arrays snapshot ``(starts, npages, n_samples)``.

        Bulk per-interval operations (the vectorized profiler) gather the
        region list once and operate on arrays; the list of
        :class:`MemoryRegion` objects stays canonical so held references
        and direct mutation keep working.
        """
        n = len(self._regions)
        starts = np.fromiter((r.start for r in self._regions), dtype=np.int64, count=n)
        npages = np.fromiter((r.npages for r in self._regions), dtype=np.int64, count=n)
        samples = np.fromiter((r.n_samples for r in self._regions), dtype=np.int64, count=n)
        return starts, npages, samples

    def _insertion_index(self, start: int) -> int:
        lo, hi = 0, len(self._regions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._regions[mid].start < start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def check_invariants(self) -> None:
        """Assert ordering/disjointness and cached totals; used by tests."""
        for a, b in zip(self._regions, self._regions[1:]):
            if a.end > b.start:
                raise ProfilingError(f"regions overlap: {a} / {b}")
            if a.start >= b.start:
                raise ProfilingError(f"regions out of order: {a} / {b}")
        samples = sum(r.n_samples for r in self._regions)
        pages = sum(r.npages for r in self._regions)
        if samples != self._total_samples or pages != self._total_pages:
            raise ProfilingError(
                f"cached totals drifted: samples {self._total_samples} vs {samples}, "
                f"pages {self._total_pages} vs {pages}"
            )
