"""Thermostat's profiling mechanism (baseline).

Thermostat (Agarwal & Wenisch, ASPLOS'17) keeps **fixed-size** 2 MB
regions, samples one random 4 KB page per region, and counts accesses by
write-protecting the sampled page and taking protection faults.  Three
consequences the paper leans on (Secs. 3, 5.4, 9.3):

* fault-based counting is expensive (a protection fault costs far more
  than a PTE scan), so under the same overhead budget Thermostat can
  profile far fewer pages — here only a random subset of regions fits;
* the 4 KB slice of a 2 MB huge page sees ~1/512 of its accesses, losing
  profiling quality (modeled through ``count_scale``);
* regions never merge or split, so the quality cannot adapt to locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.pebs import PebsSampler
from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import DEFAULT_REGION_PAGES, RegionSet
from repro.sim.costmodel import CostModel
from repro.units import PAGES_PER_HUGE_PAGE


@dataclass
class ThermostatConfig:
    """Thermostat tunables.

    Attributes:
        interval: profiling interval in seconds.
        overhead_constraint: profiling overhead target.
        polls_per_interval: poison/fault rounds per sampled page.
        protection_fault_cost: seconds per protection fault (the paper
            measures Thermostat's per-sample cost at ~2.5x MTM's).
        region_pages: fixed region size (2 MB, never changes).
        poison_exposure: fraction of the interval a sampled page stays
            poisoned per poll; ``None`` = polls evenly spread over the
            interval (each poisoned until its fault or the next poll).
    """

    interval: float = 10.0
    overhead_constraint: float = 0.05
    polls_per_interval: int = 3
    protection_fault_cost: float | None = None
    region_pages: int = DEFAULT_REGION_PAGES
    poison_exposure: float | None = None

    def __post_init__(self) -> None:
        if self.polls_per_interval < 1:
            raise ConfigError("polls_per_interval must be >= 1")
        if self.poison_exposure is not None and not 0.0 < self.poison_exposure <= 1.0:
            raise ConfigError("poison_exposure must be in (0, 1]")


class ThermostatProfiler(Profiler):
    """Thermostat's fixed-region, protection-fault profiler."""

    name = "thermostat"

    def __init__(
        self,
        cost_model: CostModel,
        config: ThermostatConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config if config is not None else ThermostatConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.regions: RegionSet | None = None
        self._page_table: PageTable | None = None
        self._interval = -1

    @property
    def fault_cost(self) -> float:
        """Per-fault cost; defaults to 2.5x MTM's per-scan cost (Sec. 9.3)."""
        if self.config.protection_fault_cost is not None:
            return self.config.protection_fault_cost
        return 2.5 * self.cost_model.params.scan_overhead

    @property
    def budget_regions(self) -> int:
        """Regions that fit the overhead budget at fault-based pricing."""
        budget_time = self.config.interval * self.config.overhead_constraint
        per_region = self.fault_cost * self.config.polls_per_interval
        return max(1, int(budget_time / per_region))

    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        self._page_table = page_table
        self.regions = RegionSet.from_spans(spans, region_pages=self.config.region_pages)
        self._interval = -1

    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        if self.regions is None or self._page_table is None:
            raise ConfigError("profile() before setup()")
        cfg = self.config
        page_table = self._page_table
        self._interval += 1

        regions = list(self.regions)
        k = min(self.budget_regions, len(regions))
        picked = self.rng.choice(len(regions), size=k, replace=False)
        faults = 0
        for idx in picked:
            region = regions[int(idx)]
            page = int(self.rng.integers(region.start, region.end))
            entry = page_table.entry_index(np.array([page]))
            # A 4 KB slice of a huge page sees ~1/512 of its accesses.
            scale = 1.0 / PAGES_PER_HUGE_PAGE if page_table.is_huge(page) else 1.0
            detected = mmu.scan_detect(
                entry,
                cfg.polls_per_interval,
                self.rng,
                exposure=cfg.poison_exposure,
                count_scale=scale,
            )
            region.record_interval(float(detected[0]), 0.0, alpha=1.0)
            faults += cfg.polls_per_interval
        # Unsampled regions keep stale hi — Thermostat has no decay, which
        # is part of why its quality converges slowly (Fig. 1).
        self.regions.end_interval()

        reports = [
            RegionReport(
                start=r.start,
                npages=r.npages,
                score=r.hi,
                whi=r.hi,
                node=r.node(page_table),
            )
            for r in self.regions
        ]
        return ProfileSnapshot(
            interval=self._interval,
            reports=reports,
            profiling_time=faults * self.fault_cost,
            scans_performed=faults,
        )

    def memory_overhead_bytes(self) -> int:
        return 40 * (len(self.regions) if self.regions else 0)
