"""MTM's adaptive memory profiler (Sec. 5).

The design principles, mapped to code:

* **Overhead control via scan counting (Sec. 5.3)** — the per-interval
  budget ``num_ps`` comes from Eq. 1; the region count is forced under the
  budget by *escalating the merge threshold* ``tau_m`` across intervals,
  never by changing ``num_scans`` (the paper found that perturbs migration
  decisions for >20% of regions).
* **Adaptive page sampling (Sec. 5.2)** — quota saved by merges is
  redistributed to the top-five regions by hotness swing across the last
  two intervals; splits divide quota evenly, conserving total scans.
* **Multi-scan (Sec. 5.1)** — every sampled page's PTE is scanned
  ``num_scans`` (default 3) times per interval, so region hotness is a
  count in [0, num_scans], not a binary touched-bit.
* **PEBS-assisted scan (Sec. 5.5)** — on the slowest tier, regions are
  only PTE-scanned if briefly-activated counters saw traffic there, making
  hot-region discovery event-driven instead of interval-driven.
* **Huge-page awareness (Sec. 5.4)** — sampling operates on leaf *entries*
  (a 2 MB mapping is one entry) and splits are nudged to huge boundaries
  by the region machinery.

Ablation flags reproduce the "w/o AMR / APS / OC / PEBS" variants of Fig. 7.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro import kernels, perfflags
from repro.errors import ConfigError, SampleLossError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.pebs import PebsSampler
from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import DEFAULT_REGION_PAGES, MemoryRegion, RegionSet
from repro.sim.costmodel import CostModel


@dataclass
class MtmProfilerConfig:
    """Tunables of the MTM profiler (paper defaults).

    Attributes:
        interval: profiling interval t_mi in seconds.
        overhead_constraint: fraction of app time allowed for profiling.
        num_scans: PTE scans per sampled page per interval.
        alpha: EMA weight for WHI (Eq. 2).
        tau_m: merge threshold; None = num_scans / 3.
        tau_s: split threshold; None = 2 * num_scans / 3.
        tau_m_escalation_step: additive tau_m increase per interval while
            the region count exceeds the budget.
        scan_exposure: fraction of the interval one scan's detection window
            covers.  ``None`` derives it from the profiling pass duration,
            ``overhead_constraint / num_scans`` — MTM's scans run
            back-to-back inside the pass, which is what keeps detection
            rate-sensitive instead of saturating (see repro.mm.mmu).
        top_k_variance: regions receiving redistributed quota.
        region_pages: initial region span (one last-level PDE).
        pebs_duty_cycle: fraction of the interval PEBS is active.
        hint_every_scans: one hint fault per this many scans (Sec. 6.2).
        max_region_pages: size cap for merged regions; ``None`` derives
            one eighth of the smallest component's capacity, so any region
            remains migratable as a unit.
        adaptive_regions: False disables merge/split (ablation "w/o AMR").
        adaptive_sampling: False redistributes quota randomly ("w/o APS").
        overhead_control: False disables budget enforcement ("w/o OC").
        use_pebs: False profiles the slowest tier like any other ("w/o PEBS").
        guided_splits: False splits at the midpoint instead of at the hot
            sample's boundary (formation-model ablation; see DESIGN.md).
        ema_merge_guard: False lets a single blinked observation merge a
            hot region into cold neighbours (formation-model ablation).
        heterogeneity_guard: False lets internally mixed regions merge
            (formation-model ablation).
        vectorized: resolve region entries and resident nodes for all
            regions in bulk array operations instead of per-region loops.
            Bit-identical to the loop path (the differential tests assert
            it); False forces the legacy path regardless of the global
            :mod:`repro.perfflags` switch.
    """

    interval: float = 10.0
    overhead_constraint: float = 0.05
    num_scans: int = 3
    alpha: float = 0.5
    tau_m: float | None = None
    tau_s: float | None = None
    tau_m_escalation_step: float | None = None
    scan_exposure: float | None = None
    max_region_pages: int | None = None
    top_k_variance: int = 5
    region_pages: int = DEFAULT_REGION_PAGES
    pebs_duty_cycle: float = 0.10
    hint_every_scans: int = 12
    adaptive_regions: bool = True
    adaptive_sampling: bool = True
    overhead_control: bool = True
    use_pebs: bool = True
    guided_splits: bool = True
    ema_merge_guard: bool = True
    heterogeneity_guard: bool = True
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.num_scans < 1:
            raise ConfigError(f"num_scans must be >= 1, got {self.num_scans}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0,1], got {self.alpha}")
        if self.tau_m is None:
            self.tau_m = self.num_scans / 3.0
        if self.tau_s is None:
            self.tau_s = 2.0 * self.num_scans / 3.0
        if not 0.0 <= self.tau_m <= self.num_scans:
            raise ConfigError(f"tau_m must be in [0, num_scans], got {self.tau_m}")
        if not 0.0 <= self.tau_s <= self.num_scans:
            raise ConfigError(f"tau_s must be in [0, num_scans], got {self.tau_s}")
        if self.tau_m_escalation_step is None:
            self.tau_m_escalation_step = self.num_scans / 6.0
        if self.scan_exposure is None:
            self.scan_exposure = self.overhead_constraint / self.num_scans
        if not 0.0 < self.scan_exposure <= 1.0:
            raise ConfigError(f"scan_exposure must be in (0,1], got {self.scan_exposure}")


#: Bookkeeping bytes MTM stores per 2 MB of footprint (region id, address
#: range, two hotness floats, hash-map slot) — calibrated to Table 5
#: (240 MB for a 512 GB footprint).
BYTES_PER_FOOTPRINT_REGION = 960


class MtmProfiler(Profiler):
    """The adaptive profiler of Sec. 5.

    Args:
        cost_model: machine cost model (budget Eq. 1, scan pricing).
        config: tunables; paper defaults when omitted.
        rng: random source for page sampling.
        slowest_nodes: component nodes treated as the slowest tier (PEBS
            filter applies there).  Default: the last tier of socket 0's
            view.
    """

    name = "mtm"

    def __init__(
        self,
        cost_model: CostModel,
        config: MtmProfilerConfig | None = None,
        rng: np.random.Generator | None = None,
        slowest_nodes: frozenset[int] | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config if config is not None else MtmProfilerConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        if slowest_nodes is None:
            # The PMM events cover every PM component (Sec. 8), so all slow
            # (non-DRAM) tiers get the event-driven treatment.
            from repro.hw.tier import MemoryKind

            slowest_nodes = frozenset(
                c.node_id
                for c in cost_model.topology.components
                if c.kind != MemoryKind.DRAM
            )
            if not slowest_nodes:
                view = cost_model.topology.view(0)
                slowest_nodes = frozenset({view.node_at_tier(view.num_tiers)})
        self.slowest_nodes = slowest_nodes
        if self.config.max_region_pages is None:
            smallest = min(c.capacity_pages for c in cost_model.topology.components)
            self.config.max_region_pages = max(DEFAULT_REGION_PAGES, smallest // 8)
        self.regions: RegionSet | None = None
        self._page_table: PageTable | None = None
        self._tau_m_current: float = self.config.tau_m
        self._interval = -1
        self._scan_counter = 0  # drives the 1-hint-fault-per-12-scans cadence
        self._footprint_pages = 0
        self._last_pebs_time = 0.0
        # (start, npages) -> unique leaf entries, valid as of the page
        # table's entry_version below.  Lets the incremental path resolve
        # only regions whose span changed (formation) or whose page->entry
        # map was dirtied (huge collapse/split), instead of re-gathering
        # the whole footprint every interval.
        self._entry_cache: dict[tuple[int, int], np.ndarray] = {}
        self._entry_cache_version = -1

    # -- lifecycle --------------------------------------------------------------

    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        self._page_table = page_table
        self.regions = RegionSet.from_spans(spans, region_pages=self.config.region_pages)
        self._footprint_pages = sum(n for _, n in spans)
        self._tau_m_current = self.config.tau_m
        self._interval = -1
        self._entry_cache = {}
        self._entry_cache_version = -1

    @property
    def budget(self) -> int:
        """Eq. 1: total page samples allowed this interval.

        The overhead constraint covers *all* profiling work, so the PTE
        scan budget yields whatever the counters consumed last interval
        (PEBS activation + sample processing).
        """
        pebs_share = self._last_pebs_time / self.config.interval
        effective = max(0.2 * self.config.overhead_constraint,
                        self.config.overhead_constraint - pebs_share)
        return self.cost_model.profiling_budget_pages(
            self.config.interval,
            effective,
            self.config.num_scans,
            with_hint_amortization=True,
        )

    def memory_overhead_bytes(self) -> int:
        footprint_regions = max(1, self._footprint_pages // DEFAULT_REGION_PAGES)
        return footprint_regions * BYTES_PER_FOOTPRINT_REGION

    # -- the interval ------------------------------------------------------------

    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        if self.regions is None or self._page_table is None:
            raise ConfigError("profile() before setup()")
        cfg = self.config
        page_table = self._page_table
        self._interval += 1
        budget = self.budget
        obs = self.obs

        # -- PEBS filter for the slowest tier (Sec. 5.5) ------------------
        pebs_hot_entries: np.ndarray | None = None
        pebs_samples = 0
        if cfg.use_pebs and pebs is not None:
            try:
                sample_set = pebs.sample(
                    mmu.current_batch, page_table, socket=socket, duty_cycle=cfg.pebs_duty_cycle
                )
            except SampleLossError:
                # Ring-buffer overflow lost the window: profile this
                # interval without the counter filter (every slow-tier
                # region looks idle, decays, and is rediscovered once the
                # counters are back) rather than aborting the pass.
                sample_set = None
            if sample_set is not None:
                pebs_samples = sample_set.total_samples
                if sample_set.pages.size:
                    pebs_hot_entries = nputil.unique(page_table.entry_index(sample_set.pages))

        # -- choose which regions to profile -------------------------------
        # Three outcomes per region: scanned (gets fresh hi), observed-idle
        # (PEBS saw nothing in a PM region -> decays toward cold), or
        # deferred for budget (keeps stale hi; the rotation ensures it is
        # scanned in a later interval).
        regions = list(self.regions)
        to_profile: list[tuple[MemoryRegion, np.ndarray]] = []
        idle: list[MemoryRegion] = []
        pebs_active = cfg.use_pebs and pebs is not None
        use_vec = cfg.vectorized and perfflags.vectorized()
        use_inc = use_vec and perfflags.incremental()
        region_entries: list[np.ndarray] | None = None
        with obs.span("scan.resolve", cat="profile") if obs is not None else nullcontext():
            if use_vec:
                # Bulk-resolve every region's entries (and, when the PEBS filter
                # needs them, resident nodes) in one pass over the page table.
                # The per-region loop below then only slices precomputed arrays;
                # all RNG draws keep their exact legacy order and arguments.
                starts_arr, npages_arr, _ = self.regions.as_arrays()
                if use_inc:
                    # O(touched): serve unchanged regions from the entry cache
                    # and gather only spans invalidated by formation or by
                    # huge-page transitions since last interval.
                    region_entries = self._resolve_entries_cached(
                        page_table, starts_arr, npages_arr
                    )
                else:
                    ents_all, ents_offs = page_table.span_entries(starts_arr, npages_arr)
                nodes_all = (
                    page_table.span_majority_nodes(starts_arr, npages_arr)
                    if pebs_active
                    else None
                )
            for idx, region in enumerate(regions):
                if region_entries is not None:
                    entries = region_entries[idx]
                elif use_vec:
                    entries = ents_all[ents_offs[idx] : ents_offs[idx + 1]]
                else:
                    entries = region.entries(page_table)
                if entries.size == 0:
                    continue
                if pebs_active:
                    node = int(nodes_all[idx]) if use_vec else region.node(page_table)
                else:
                    node = -1
                if pebs_active and node in self.slowest_nodes:
                    # Slow tiers are event-driven (Sec. 5.5): regions with no
                    # counter-observed traffic are skipped (and decay); active
                    # regions are scanned starting from the captured pages —
                    # one page initially (Sec. 5.2), more as adaptive sampling
                    # grants them quota, padded with random picks so a large
                    # mixed region exposes its internal hotness spread (the
                    # split signal).
                    if pebs_hot_entries is None:
                        idle.append(region)
                        continue
                    lo = np.searchsorted(pebs_hot_entries, region.start)
                    hi_idx = np.searchsorted(pebs_hot_entries, region.end)
                    if hi_idx <= lo:
                        idle.append(region)
                        continue
                    captured = pebs_hot_entries[lo:hi_idx]
                    k = min(region.n_samples, int(entries.size))
                    take = min(k, int(captured.size))
                    if take >= captured.size:
                        chosen = captured
                    else:
                        chosen = captured[
                            self.rng.choice(captured.size, size=take, replace=False)
                        ]
                    if k > chosen.size:
                        pad = entries[
                            self.rng.choice(entries.size, size=k - int(chosen.size), replace=False)
                        ]
                        chosen = nputil.unique(np.concatenate([chosen, pad]))
                else:
                    k = min(region.n_samples, int(entries.size))
                    if k >= entries.size:
                        chosen = entries
                    else:
                        chosen = entries[self.rng.choice(entries.size, size=k, replace=False)]
                to_profile.append((region, chosen))

        # -- overhead control: fit the scan budget (Sec. 5.3) ----------------
        requested = sum(int(c.size) for _, c in to_profile)
        over_budget = requested > budget
        if cfg.overhead_control and over_budget:
            # Rotate which candidates get cut so coverage is eventually full.
            offset = (self._interval * budget) % max(1, len(to_profile))
            rotated = to_profile[offset:] + to_profile[:offset]
            kept: list[tuple[MemoryRegion, np.ndarray]] = []
            samples = 0
            for region, chosen in rotated:
                if samples >= budget:
                    break
                if samples + chosen.size > budget:
                    chosen = chosen[: budget - samples]
                kept.append((region, chosen))
                samples += int(chosen.size)
            to_profile = kept

        # -- injected scan truncation ----------------------------------------
        # A preempted profiling pass covers only a prefix of the pages it
        # sampled; the region still gets a (noisier) hotness estimate from
        # whatever was visited before the preemption.
        if self.injector is not None:
            truncated: list[tuple[MemoryRegion, np.ndarray]] = []
            for region, chosen in to_profile:
                keep = self.injector.truncated_scan_keep(int(chosen.size))
                if keep < chosen.size:
                    chosen = chosen[:keep]
                if chosen.size:
                    truncated.append((region, chosen))
            to_profile = truncated

        scans_used = sum(int(c.size) for _, c in to_profile) * cfg.num_scans

        # -- scan and score --------------------------------------------------
        with obs.span("scan.classify", cat="profile") if obs is not None else nullcontext():
            for region, chosen in to_profile:
                detected = mmu.scan_detect(
                    chosen, cfg.num_scans, self.rng, exposure=cfg.scan_exposure
                )
                if perfflags.compiled():
                    # Fused sum/min/max/argmax pass.  total/size equals
                    # detected.mean() bit-for-bit: detected counts are
                    # small integers, so numpy's float64 accumulation is
                    # exact and the final division is the same operation.
                    total, dmin, dmax, darg = kernels.score_detected(detected)
                    hi = total / detected.size
                    max_diff = float(dmax - dmin) if detected.size > 1 else 0.0
                    region.record_interval(hi, max_diff, cfg.alpha)
                    region.hottest_entry = (
                        int(chosen[darg]) if cfg.guided_splits and dmax > 0 else -1
                    )
                else:
                    hi = float(detected.mean())
                    max_diff = (
                        float(detected.max() - detected.min()) if detected.size > 1 else 0.0
                    )
                    region.record_interval(hi, max_diff, cfg.alpha)
                    if cfg.guided_splits:
                        region.hottest_entry = (
                            int(chosen[int(np.argmax(detected))]) if detected.max() > 0 else -1
                        )
                    else:
                        region.hottest_entry = -1
                # Hint-fault attribution every hint_every_scans scans (Sec. 6.2).
                self._scan_counter += int(chosen.size) * cfg.num_scans
                if self._scan_counter >= cfg.hint_every_scans:
                    self._scan_counter %= cfg.hint_every_scans
                    accessor = int(mmu.accessor_socket(chosen[:1])[0])
                    if accessor >= 0:
                        region.dominant_socket = accessor
            # PEBS-observed-idle regions decay; budget-deferred ones stay stale.
            profiled = {id(r) for r, _ in to_profile}
            for region in idle:
                if id(region) not in profiled:
                    region.record_interval(0.0, 0.0, cfg.alpha)

        # -- region formation (Sec. 5.1 / 5.3) ------------------------------
        merges_before = self.regions.stats.merges
        splits_before = self.regions.stats.splits
        with obs.span("scan.formation", cat="profile") if obs is not None else nullcontext():
            if cfg.adaptive_regions:
                if cfg.overhead_control and over_budget:
                    self._tau_m_current = min(
                        float(cfg.num_scans), self._tau_m_current + cfg.tau_m_escalation_step
                    )
                else:
                    self._tau_m_current = cfg.tau_m
                self.regions.merge_pass(
                    self._tau_m_current,
                    top_k_variance=cfg.top_k_variance,
                    max_pages=cfg.max_region_pages,
                    heterogeneity_guard=cfg.tau_s if cfg.heterogeneity_guard else None,
                    use_ema_guard=cfg.ema_merge_guard,
                )
                self.regions.split_pass(cfg.tau_s, page_table=page_table)
                if not cfg.adaptive_sampling:
                    self._randomize_quota()
                if cfg.overhead_control and len(self.regions) <= budget:
                    self.regions.rebalance_to_budget(budget)
        self.regions.end_interval()
        if obs is not None:
            self._emit_formation(
                obs,
                merges=self.regions.stats.merges - merges_before,
                splits=self.regions.stats.splits - splits_before,
            )

        # -- charge time -----------------------------------------------------
        time = self.cost_model.scan_time(scans_used, with_hint_amortization=True)
        if cfg.use_pebs and pebs is not None:
            self._last_pebs_time = self.cost_model.pebs_time(pebs_samples)
            time += self._last_pebs_time

        if use_vec:
            # Formation may have changed the region list; resolve resident
            # nodes for the final layout in one bulk pass.
            starts2, npages2, _ = self.regions.as_arrays()
            nodes2 = page_table.span_majority_nodes(starts2, npages2)
            if use_inc:
                # Drop cache entries for spans no longer in the layout so
                # the cache stays bounded by the live region count.
                live = set(zip(starts2.tolist(), npages2.tolist()))
                self._entry_cache = {
                    k: v for k, v in self._entry_cache.items() if k in live
                }
            reports = [
                RegionReport(
                    start=r.start,
                    npages=r.npages,
                    score=r.whi,
                    whi=r.whi,
                    node=int(nodes2[j]),
                    dominant_socket=r.dominant_socket,
                )
                for j, r in enumerate(self.regions)
            ]
        else:
            reports = [
                RegionReport(
                    start=r.start,
                    npages=r.npages,
                    score=r.whi,
                    whi=r.whi,
                    node=r.node(page_table),
                    dominant_socket=r.dominant_socket,
                )
                for r in self.regions
            ]
        if obs is not None:
            self._emit_scan(
                obs,
                interval=self._interval,
                regions=len(self.regions),
                scanned=len(to_profile),
                scans_used=scans_used,
                budget=budget,
                over_budget=over_budget,
                pebs_samples=pebs_samples,
                profiling_time=time,
            )
        return ProfileSnapshot(
            interval=self._interval,
            reports=reports,
            profiling_time=time,
            scans_performed=scans_used,
            pebs_samples=pebs_samples,
        )

    # -- incremental entry resolution ------------------------------------------

    def _resolve_entries_cached(
        self,
        page_table: PageTable,
        starts: np.ndarray,
        npages: np.ndarray,
    ) -> list[np.ndarray]:
        """Per-region unique leaf entries, served from the span cache.

        Invalidates cached spans overlapping the page table's dirty log
        since the cache's version, then bulk-resolves only the missing
        spans.  Each cached array is element-wise identical to what
        :meth:`PageTable.span_entries` returns for the span, so the result
        is bit-identical to the uncached bulk gather.
        """
        cache = self._entry_cache
        version = page_table.entry_version
        if version != self._entry_cache_version:
            for s, e in page_table.entry_dirty_since(self._entry_cache_version):
                stale = [k for k in cache if k[0] < e and k[0] + k[1] > s]
                for k in stale:
                    del cache[k]
            self._entry_cache_version = version
        keys = list(zip(starts.tolist(), npages.tolist()))
        missing = [i for i, k in enumerate(keys) if k not in cache]
        if missing:
            ents, offs = page_table.span_entries(starts[missing], npages[missing])
            for j, i in enumerate(missing):
                cache[keys[i]] = ents[offs[j] : offs[j + 1]]
        return [cache[k] for k in keys]

    # -- ablation helper --------------------------------------------------------

    def _randomize_quota(self) -> None:
        """"w/o APS": spread the sample budget uniformly at random."""
        assert self.regions is not None
        total = self.regions.total_samples()
        regions = list(self.regions)
        for region in regions:
            region.n_samples = 1
        extra = total - len(regions)
        if extra > 0:
            picks = self.rng.integers(0, len(regions), extra)
            for i in picks:
                regions[int(i)].n_samples += 1
