"""Profiler interface and per-interval snapshots.

All profilers — MTM's and every baseline — implement the same contract:
``setup`` once over the VMA spans, then once per interval ``profile`` the
current MMU state, returning a :class:`ProfileSnapshot` with per-region
hotness scores and the profiling time spent.  Downstream code (policies,
quality metrics) only ever sees snapshots, so profilers are interchangeable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.pebs import PebsSampler


@dataclass(frozen=True)
class RegionReport:
    """One region's result for one interval.

    Attributes:
        start: first base page of the region.
        npages: region length in base pages.
        score: hotness score; higher = hotter.  Scales differ between
            profilers (scan counts vs PEBS samples) but are consistent
            within one profiler, which is all ranking needs.
        whi: the profiler's smoothed hotness (EMA), where maintained.
        node: component currently holding the region (-1 unknown).
        dominant_socket: socket issuing most accesses (-1 unknown).
    """

    start: int
    npages: int
    score: float
    whi: float = 0.0
    node: int = -1
    dominant_socket: int = -1

    @property
    def end(self) -> int:
        return self.start + self.npages


@dataclass
class ProfileSnapshot:
    """Everything a profiler learned in one interval.

    Attributes:
        interval: 0-based interval index.
        reports: per-region results, sorted by start page.
        profiling_time: seconds of critical-path profiling work.
        scans_performed: PTE scans executed (for overhead audits).
        pebs_samples: PEBS samples processed.
    """

    interval: int
    reports: list[RegionReport]
    profiling_time: float
    scans_performed: int = 0
    pebs_samples: int = 0

    def page_scores(self, n_pages: int) -> np.ndarray:
        """Dense per-page hotness: each page gets its region's score."""
        scores = np.zeros(n_pages, dtype=np.float64)
        for report in self.reports:
            scores[report.start : report.end] = report.score
        return scores

    def top_hot_pages(self, volume_pages: int) -> np.ndarray:
        """Pages the profiler would call hot, up to ``volume_pages`` pages.

        Regions are taken hottest-first (score, density already per-page);
        a region is included wholly — profilers cannot see within a region,
        which is precisely DAMON's accuracy problem in Fig. 1.
        """
        if volume_pages < 0:
            raise ProfilingError(f"negative volume: {volume_pages}")
        chosen: list[np.ndarray] = []
        taken = 0
        for report in sorted(self.reports, key=lambda r: r.score, reverse=True):
            if report.score <= 0 or taken >= volume_pages:
                break
            pages = np.arange(report.start, report.end, dtype=np.int64)
            if taken + pages.size > volume_pages:
                pages = pages[: volume_pages - taken]
            chosen.append(pages)
            taken += pages.size
        if not chosen:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chosen))

    def hot_volume_pages(self, score_threshold: float = 0.0) -> int:
        """Pages in regions scoring above ``score_threshold``."""
        return sum(r.npages for r in self.reports if r.score > score_threshold)


class Profiler(abc.ABC):
    """Common contract for all profiling mechanisms."""

    #: Short name used in reports ("mtm", "damon", ...).
    name: str = "base"

    #: Optional fault injector (scan truncation); the engine wires it in.
    #: Profilers that model preemptible scan passes consult it.
    injector = None

    #: Optional :class:`~repro.obs.context.ObsContext`; the engine wires
    #: it in.  Profilers emit scan and region-formation events into it.
    obs = None

    @abc.abstractmethod
    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        """Initialize over the workload's VMA spans ``(start, npages)``."""

    @abc.abstractmethod
    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        """Profile the current interval (after ``mmu.begin_interval``)."""

    def memory_overhead_bytes(self) -> int:
        """Bookkeeping memory the profiler consumes (Table 5)."""
        return 0

    # -- telemetry helpers (no-ops unless the engine attached a context) ----

    def _emit_scan(self, obs, **fields) -> None:
        """One ``profile.scan`` event + scan counters per interval."""
        from repro.obs.events import EV_SCAN

        obs.emit(EV_SCAN, profiler=self.name, **fields)
        obs.inc("profile.scans", int(fields.get("scans_used", 0)),
                profiler=self.name)
        obs.inc("profile.intervals", profiler=self.name)
        if fields.get("over_budget"):
            obs.inc("profile.over_budget_intervals", profiler=self.name)
        obs.set_gauge("profile.regions", int(fields.get("regions", 0)),
                      profiler=self.name)

    def _emit_formation(self, obs, merges: int, splits: int) -> None:
        """Region split/merge deltas for the interval just formed."""
        from repro.obs.events import EV_REGION_MERGE, EV_REGION_SPLIT

        if merges:
            obs.emit(EV_REGION_MERGE, profiler=self.name, count=merges)
            obs.inc("profile.merges", merges, profiler=self.name)
        if splits:
            obs.emit(EV_REGION_SPLIT, profiler=self.name, count=splits)
            obs.inc("profile.splits", splits, profiler=self.name)
