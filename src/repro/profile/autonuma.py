"""Random-window profiling: AutoNUMA / AutoTiering style (baseline).

Tiered-AutoNUMA and AutoTiering both profile by picking a random virtual
window each interval (256 MB in the paper, scaled with the machine here),
un-mapping its PTEs (present bit / PROT_NONE) and counting the hint faults
the next accesses take (Sec. 9.3).  Hotness knowledge therefore arrives
slowly and randomly — the "uncontrolled profiling quality" of Fig. 1.

The *patched* tiered-AutoNUMA adds most-frequently-used (MFU) hot-page
selection: per-chunk fault counts are accumulated with decay and an
automatically adjusted hot threshold, which identifies much more hot
memory (Table 3) even though the sampling stays random.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro import perfflags
from repro.errors import ConfigError
from repro.mm.mmu import Mmu
from repro.mm.pagetable import PageTable
from repro.perf.pebs import PebsSampler
from repro.profile.base import Profiler, ProfileSnapshot, RegionReport
from repro.profile.regions import DEFAULT_REGION_PAGES
from repro.sim.costmodel import CostModel
from repro.units import MiB, PAGE_SIZE


@dataclass
class RandomWindowConfig:
    """Random-window profiler tunables.

    Attributes:
        window_bytes: virtual window profiled per interval, at paper
            scale (256 MB); multiplied by the cost model's machine scale.
        interval: profiling interval in seconds.
        decay: multiplicative decay of per-chunk scores per interval
            (MFU accumulation).
        mfu: enable patched-AutoNUMA MFU accumulation; vanilla (False)
            only trusts the current interval's faults.
        hot_fault_exposure: patched kernels grade hotness by *hint-fault
            latency* — only entries that fault quickly after arming count
            as hot.  This is the detection window as a fraction of the
            interval; vanilla ignores it (any fault counts).
        chunk_pages: reporting granularity (2 MB chunks).
    """

    window_bytes: int = 256 * MiB
    interval: float = 10.0
    decay: float = 0.7
    mfu: bool = True
    hot_fault_exposure: float = 0.05
    chunk_pages: int = DEFAULT_REGION_PAGES

    def __post_init__(self) -> None:
        if self.window_bytes < PAGE_SIZE:
            raise ConfigError("window must be at least one page")
        if not 0.0 <= self.decay < 1.0:
            raise ConfigError(f"decay must be in [0,1), got {self.decay}")
        if self.chunk_pages < 1:
            raise ConfigError("chunk_pages must be >= 1")


class RandomWindowProfiler(Profiler):
    """AutoNUMA/AutoTiering hint-fault profiling over random windows."""

    name = "random_window"

    def __init__(
        self,
        cost_model: CostModel,
        config: RandomWindowConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config if config is not None else RandomWindowConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._page_table: PageTable | None = None
        self._spans: list[tuple[int, int]] = []
        self._chunk_starts: np.ndarray | None = None
        self._chunk_sizes: np.ndarray | None = None
        self._scores: np.ndarray | None = None
        self._interval = -1

    @property
    def window_pages(self) -> int:
        """Profiled window in pages, scaled with the machine."""
        scaled = self.config.window_bytes * self.cost_model.params.scale
        return max(1, int(scaled) // PAGE_SIZE)

    def setup(self, page_table: PageTable, spans: list[tuple[int, int]]) -> None:
        self._page_table = page_table
        self._spans = list(spans)
        starts: list[int] = []
        sizes: list[int] = []
        for start, npages in spans:
            offset = start
            remaining = npages
            while remaining > 0:
                size = min(self.config.chunk_pages, remaining)
                starts.append(offset)
                sizes.append(size)
                offset += size
                remaining -= size
        self._chunk_starts = np.array(starts, dtype=np.int64)
        self._chunk_sizes = np.array(sizes, dtype=np.int64)
        self._scores = np.zeros(len(starts), dtype=np.float64)
        self._interval = -1

    def profile(
        self,
        mmu: Mmu,
        pebs: PebsSampler | None = None,
        socket: int = 0,
    ) -> ProfileSnapshot:
        if self._page_table is None or self._scores is None:
            raise ConfigError("profile() before setup()")
        cfg = self.config
        page_table = self._page_table
        self._interval += 1

        if cfg.mfu:
            self._scores *= cfg.decay
        else:
            self._scores.fill(0.0)

        # Pick one random window inside the total span footprint.
        total_pages = sum(n for _, n in self._spans)
        win = min(self.window_pages, total_pages)
        offset = int(self.rng.integers(0, max(1, total_pages - win + 1)))
        window_pages = self._pages_at_offset(offset, win)

        # Fault-based detection over the window's entries.  Vanilla counts
        # any hint fault; patched kernels grade by fault latency, which
        # behaves like a short detection window (only fast-faulting = hot
        # entries score).
        entries = nputil.unique(page_table.entry_index(window_pages))
        if cfg.mfu:
            detected = mmu.scan_detect(entries, 1, self.rng, exposure=cfg.hot_fault_exposure)
            faults = int(mmu.fault_detect(entries).sum())  # all faults cost time
        else:
            detected = mmu.fault_detect(entries)
            faults = int(detected.sum())

        # Attribute detections to chunks.
        touched = entries[detected > 0]
        if touched.size:
            idx = np.searchsorted(self._chunk_starts, touched, side="right") - 1
            np.add.at(self._scores, idx, 1.0)

        # Cost: arming PTEs is a scan-like write per window entry, plus a
        # hint fault per detected access.
        time = self.cost_model.scan_time(int(entries.size)) + self.cost_model.hint_fault_time(faults)

        if perfflags.vectorized():
            chunk_nodes = page_table.span_majority_nodes(
                self._chunk_starts, self._chunk_sizes
            )
        else:
            chunk_nodes = np.fromiter(
                (self._majority_node(i) for i in range(self._chunk_starts.size)),
                dtype=np.int64,
                count=self._chunk_starts.size,
            )
        reports = [
            RegionReport(
                start=int(self._chunk_starts[i]),
                npages=int(self._chunk_sizes[i]),
                score=float(self._scores[i]),
                whi=float(self._scores[i]),
                node=int(chunk_nodes[i]),
            )
            for i in range(self._chunk_starts.size)
        ]
        return ProfileSnapshot(
            interval=self._interval,
            reports=reports,
            profiling_time=time,
            scans_performed=int(entries.size),
        )

    def memory_overhead_bytes(self) -> int:
        return 8 * (self._scores.size if self._scores is not None else 0)

    # -- internals --------------------------------------------------------------

    def _pages_at_offset(self, offset: int, count: int) -> np.ndarray:
        """``count`` consecutive footprint pages starting at logical ``offset``."""
        pages = []
        for start, npages in self._spans:
            if offset >= npages:
                offset -= npages
                continue
            take = min(count, npages - offset)
            pages.append(np.arange(start + offset, start + offset + take, dtype=np.int64))
            count -= take
            offset = 0
            if count == 0:
                break
        if not pages:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pages)

    def _majority_node(self, chunk_idx: int) -> int:
        assert self._page_table is not None
        start = int(self._chunk_starts[chunk_idx])
        size = int(self._chunk_sizes[chunk_idx])
        nodes = self._page_table.node[start : start + size]
        mapped = nodes[nodes >= 0]
        if mapped.size == 0:
            return -1
        values, counts = nputil.unique_counts(mapped)
        return int(values[np.argmax(counts)])
