"""Profiling-quality metrics: recall and accuracy (Fig. 1).

The paper defines, against a ground-truth hot set known a priori:

* **recall** — correctly detected hot pages / true hot pages;
* **accuracy** — correctly detected hot pages / all detected hot pages
  (i.e. precision).

Detected hot pages are the profiler's hottest regions, truncated to the
true hot volume, so every profiler is judged on the same detection budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.profile.base import ProfileSnapshot


@dataclass(frozen=True)
class ProfilingQuality:
    """Recall/accuracy for one interval.

    Attributes:
        recall: fraction of true hot pages detected.
        accuracy: fraction of detected pages that are truly hot (precision).
        detected: number of pages the profiler called hot.
        truth: number of truly hot pages.
    """

    recall: float
    accuracy: float
    detected: int
    truth: int

    def f1(self) -> float:
        """Harmonic mean of recall and accuracy (0 when both are 0)."""
        if self.recall + self.accuracy == 0:
            return 0.0
        return 2 * self.recall * self.accuracy / (self.recall + self.accuracy)


def evaluate_quality(
    snapshot: ProfileSnapshot,
    truth_hot_pages: np.ndarray,
    detect_volume: int | None = None,
    labeled_threshold: float | None = None,
) -> ProfilingQuality:
    """Score a snapshot against the ground-truth hot pages.

    Args:
        snapshot: the profiler's interval result.
        truth_hot_pages: page numbers that are truly hot this interval.
        detect_volume: detection budget in pages (defaults to the truth
            volume).
        labeled_threshold: when given, the detected set is *every* page in
            regions scoring above this — the profiler's own hot labels,
            untruncated.  This is the paper's Fig. 1 accuracy semantics:
            "total detected hot pages including incorrect ones" counts all
            of a profiler's claims, which is how DAMON's over-claiming
            shows as ~50% accuracy.
    """
    truth = np.unique(np.asarray(truth_hot_pages, dtype=np.int64))
    if truth.size == 0:
        raise ProfilingError("ground-truth hot set is empty")
    if labeled_threshold is not None:
        detected = snapshot.top_hot_pages(
            snapshot.hot_volume_pages(labeled_threshold)
        )
    else:
        volume = truth.size if detect_volume is None else detect_volume
        detected = snapshot.top_hot_pages(volume)
    if detected.size == 0:
        return ProfilingQuality(recall=0.0, accuracy=0.0, detected=0, truth=int(truth.size))
    correct = np.intersect1d(detected, truth, assume_unique=True).size
    return ProfilingQuality(
        recall=correct / truth.size,
        accuracy=correct / detected.size,
        detected=int(detected.size),
        truth=int(truth.size),
    )


def quality_over_time(qualities: list[ProfilingQuality]) -> dict[str, np.ndarray]:
    """Stack per-interval qualities into series for plotting (Fig. 1)."""
    return {
        "recall": np.array([q.recall for q in qualities]),
        "accuracy": np.array([q.accuracy for q in qualities]),
    }
