"""Shared machinery for graph-traversal workloads (BFS, SSSP).

Maps per-round vertex sets from a real CSR traversal onto VA segments:
each vertex's edge list occupies a proportional slice of the big edge
VMA, and its metadata (distance/parent) a slice of the metadata VMA.
Touched huge-page-sized chunks are coalesced into contiguous
:class:`~repro.workloads.base.RateSegment` runs.
"""

from __future__ import annotations

import numpy as np

from repro import nputil

from repro.errors import WorkloadError
from repro.mm.vma import Vma
from repro.units import PAGES_PER_HUGE_PAGE
from repro.workloads.base import RateSegment
from repro.workloads.graph import CsrGraph


def edge_chunks_for_vertices(graph: CsrGraph, vertices: np.ndarray, vma: Vma) -> np.ndarray:
    """Huge-chunk indices (within ``vma``) covering the vertices' edge lists."""
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    m = max(1, graph.num_edges)
    starts = graph.offsets[vertices]
    ends = np.maximum(graph.offsets[vertices + 1], starts + 1)
    page_lo = (starts * vma.npages // m).astype(np.int64)
    page_hi = ((ends - 1) * vma.npages // m).astype(np.int64)
    chunk_lo = page_lo // PAGES_PER_HUGE_PAGE
    chunk_hi = page_hi // PAGES_PER_HUGE_PAGE
    chunks = [chunk_lo, chunk_hi]
    # Hubs whose edge list spans several chunks contribute the interior too.
    wide = np.nonzero(chunk_hi > chunk_lo + 1)[0]
    for i in wide:
        chunks.append(np.arange(chunk_lo[i] + 1, chunk_hi[i], dtype=np.int64))
    return nputil.unique(np.concatenate(chunks))


def meta_chunks_for_vertices(graph: CsrGraph, vertices: np.ndarray, vma: Vma) -> np.ndarray:
    """Huge-chunk indices (within ``vma``) covering the vertices' metadata."""
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    n = max(1, graph.num_vertices)
    pages = (vertices * vma.npages // n).astype(np.int64)
    return nputil.unique(pages // PAGES_PER_HUGE_PAGE)


def chunks_to_segments(
    chunks: np.ndarray,
    vma: Vma,
    rate: float,
    write_ratio: float,
    hot: bool,
) -> list[RateSegment]:
    """Coalesce consecutive chunk indices into rate segments."""
    if chunks.size == 0:
        return []
    if chunks.min() < 0:
        raise WorkloadError("negative chunk index")
    breaks = np.nonzero(np.diff(chunks) != 1)[0]
    run_starts = np.concatenate(([0], breaks + 1))
    run_ends = np.concatenate((breaks + 1, [chunks.size]))
    segments = []
    for lo, hi in zip(run_starts, run_ends):
        first_page = vma.start + int(chunks[lo]) * PAGES_PER_HUGE_PAGE
        last_page = vma.start + (int(chunks[hi - 1]) + 1) * PAGES_PER_HUGE_PAGE
        last_page = min(last_page, vma.end)
        npages = last_page - first_page
        if npages <= 0:
            continue
        segments.append(
            RateSegment(
                start=first_page, npages=npages, rate=rate,
                write_ratio=write_ratio, hot=hot,
            )
        )
    return segments
