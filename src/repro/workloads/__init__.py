"""Workload generators for the paper's six applications (Table 2).

Each workload allocates named VMAs in an address space and then emits one
:class:`~repro.sim.trace.AccessBatch` per profiling interval, built from
per-segment access *rates* (expected accesses per page per interval).
Workloads also expose their ground-truth hot pages per interval, which is
what makes the Fig. 1 recall/accuracy measurements possible.
"""

from repro.hw.placement import Placer
from repro.workloads.base import RateSegment, SegmentedWorkload, Workload
from repro.workloads.gups import GupsWorkload, GupsConfig
from repro.workloads.voltdb import VoltDbWorkload, VoltDbConfig
from repro.workloads.cassandra import CassandraWorkload, CassandraConfig
from repro.workloads.graph import CsrGraph, generate_power_law_graph
from repro.workloads.bfs import BfsWorkload, BfsConfig
from repro.workloads.sssp import SsspWorkload, SsspConfig
from repro.workloads.spark import SparkTeraSortWorkload, SparkConfig
from repro.workloads.registry import WORKLOAD_SPECS, build_workload, workload_names

__all__ = [
    "Placer",
    "RateSegment",
    "SegmentedWorkload",
    "Workload",
    "GupsWorkload",
    "GupsConfig",
    "VoltDbWorkload",
    "VoltDbConfig",
    "CassandraWorkload",
    "CassandraConfig",
    "CsrGraph",
    "generate_power_law_graph",
    "BfsWorkload",
    "BfsConfig",
    "SsspWorkload",
    "SsspConfig",
    "SparkTeraSortWorkload",
    "SparkConfig",
    "WORKLOAD_SPECS",
    "build_workload",
    "workload_names",
]
