"""Spark TeraSort (Table 2: 350 GB, 1:1 R/W).

TeraSort's page traffic is phase-structured, and the phases repeat per
job stage (Spark runs stages back to back over RDD partitions):

1. **scan** — a sequential read window streams over the input RDD;
2. **shuffle** — writes scatter nearly uniformly across all output
   partitions (bandwidth-bound, no stable hot set — the phase where page
   migration cannot help, cf. the paper's observation that migration is
   not always beneficial);
3. **sort** — one partition at a time becomes the hot working set and is
   sorted in place;
4. **write** — a sequential output window streams results.

The cycle repeats until the simulation ends.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ConfigError
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.units import GiB, PAGES_PER_HUGE_PAGE
from repro.workloads.base import (
    COLD_RATE,
    HOT_RATE,
    WARM_RATE,
    Placer,
    RateSegment,
    SegmentedWorkload,
    populate,
    scaled_pages,
)


@dataclass
class SparkConfig:
    """Spark TeraSort tunables.

    Attributes:
        footprint_bytes: total at paper scale (350 GB).
        scale: machine capacity scale.
        partitions: RDD partitions per stage.
        phase_intervals: profiling intervals spent in each of the four
            phases before moving on.
        seed: RNG seed.
    """

    footprint_bytes: int = 350 * GiB
    scale: float = 1.0
    partitions: int = 8
    phase_intervals: tuple[int, int, int, int] = (10, 12, 16, 10)
    seed: int = 11

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ConfigError("partitions must be >= 1")
        if len(self.phase_intervals) != 4 or any(p < 1 for p in self.phase_intervals):
            raise ConfigError("phase_intervals needs four positive entries")


class SparkTeraSortWorkload(SegmentedWorkload):
    """Phase-structured sort job."""

    name = "spark"
    rw_mix = "1:1"

    PHASES = ("scan", "shuffle", "sort", "write")

    def __init__(self, config: SparkConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else SparkConfig()
        self._input = None
        self._buffers = None
        self._output = None
        self._exec_state = None

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        cfg = self.config
        total = scaled_pages(cfg.footprint_bytes, cfg.scale)
        exec_state = max(PAGES_PER_HUGE_PAGE, total // 64)
        input_pages = int(total * 0.4)
        buffer_pages = int(total * 0.3)
        output_pages = max(1, total - exec_state - input_pages - buffer_pages)
        # The input RDD is materialized first; shuffle buffers, output and
        # executor state appear as the stages run, landing on slow tiers
        # under first-touch.
        vmas = populate(
            self,
            space,
            thp,
            placer,
            [
                ("spark.input", input_pages),
                ("spark.buffers", buffer_pages),
                ("spark.output", output_pages),
                ("spark.exec", exec_state),
            ],
        )
        self._exec_state = vmas["spark.exec"]
        self._input = vmas["spark.input"]
        self._buffers = vmas["spark.buffers"]
        self._output = vmas["spark.output"]

    # -- phase machinery --------------------------------------------------------

    def phase_of(self, interval: int) -> tuple[str, int, int]:
        """``(phase_name, index_within_phase, phase_length)`` for an interval."""
        lengths = self.config.phase_intervals
        cycle = sum(lengths)
        t = interval % cycle
        for phase, length in zip(self.PHASES, lengths):
            if t < length:
                return (phase, t, length)
            t -= length
        raise AssertionError("unreachable")

    def segments(self, interval: int) -> list[RateSegment]:
        if self._input is None:
            raise ConfigError("segments() before build()")
        phase, idx, length = self.phase_of(interval)
        segs: list[RateSegment] = [
            # Executor state (task queues, block manager): always hot.
            RateSegment(
                start=self._exec_state.start, npages=self._exec_state.npages,
                rate=HOT_RATE, write_ratio=0.5, hot=True,
            )
        ]
        if phase == "scan":
            segs.extend(self._streaming_window(self._input, idx, length, write_ratio=0.1))
        elif phase == "shuffle":
            # Uniform scatter over all buffers: warm everywhere, no hot set.
            segs.append(
                RateSegment(
                    start=self._buffers.start, npages=self._buffers.npages,
                    rate=WARM_RATE, write_ratio=0.7, hot=False,
                )
            )
            segs.append(
                RateSegment(
                    start=self._input.start, npages=self._input.npages,
                    rate=COLD_RATE, write_ratio=0.0, hot=False,
                )
            )
        elif phase == "sort":
            # One partition at a time is sorted in place, each held hot for
            # a couple of intervals; the remaining buffers stay warm (spill
            # lookups, combiners) — the stable structure migration can win on.
            part = (idx // 2) % self.config.partitions
            part_pages = max(PAGES_PER_HUGE_PAGE, self._buffers.npages // self.config.partitions)
            start = self._buffers.start + part * part_pages
            npages = min(part_pages, self._buffers.end - start)
            if npages > 0:
                segs.append(
                    RateSegment(start=start, npages=npages, rate=HOT_RATE, write_ratio=0.5, hot=True)
                )
            segs.append(
                RateSegment(
                    start=self._buffers.start, npages=self._buffers.npages,
                    rate=WARM_RATE, write_ratio=0.1, hot=False,
                )
            )
        else:  # write
            segs.extend(self._streaming_window(self._output, idx, length, write_ratio=0.9))
        return segs

    def _streaming_window(self, vma, idx: int, length: int, write_ratio: float) -> list[RateSegment]:
        """A sequential window sweeping across ``vma`` over the phase."""
        window = max(PAGES_PER_HUGE_PAGE, vma.npages // length)
        start = vma.start + min(idx * window, max(0, vma.npages - window))
        npages = min(window, vma.end - start)
        return [
            RateSegment(start=start, npages=npages, rate=HOT_RATE, write_ratio=write_ratio, hot=True),
            RateSegment(
                start=vma.start, npages=vma.npages,
                rate=COLD_RATE / 4, write_ratio=0.0, hot=False,
            ),
        ]
