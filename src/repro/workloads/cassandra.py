"""Cassandra under YCSB workload A (Table 2: 400 GB, update-heavy 50/50).

A partitioned row store accessed with a zipfian key distribution.  The
page-level shape:

* a memtable/commit-log area absorbing every write — small, always hot;
* sstable data where zipfian key popularity yields *many small scattered
  hot fragments* (hashed partitioning destroys spatial locality), slowly
  reshuffled as popularity shifts — the hardest case for region-based
  profilers and the workload where the paper's Table 3 shows the biggest
  MTM advantage in hot-page volume;
* a long cold tail of old sstables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.units import GiB, PAGES_PER_HUGE_PAGE
from repro.workloads.base import (
    HOT_RATE,
    WARM_RATE,
    Placer,
    RateSegment,
    SegmentedWorkload,
    balance_cold_rate,
    populate,
    scaled_pages,
)


@dataclass
class CassandraConfig:
    """Cassandra/YCSB-A tunables.

    Attributes:
        footprint_bytes: total at paper scale (400 GB).
        scale: machine capacity scale.
        write_ratio: YCSB-A is 50% updates.
        hot_fragments: scattered hot fragments across the sstable area.
        fragment_hugepages: fragment size in huge pages (small fragments =
            low spatial locality).
        reshuffle_every: intervals between popularity shifts (a random
            third of the fragments move).
        flush_every: intervals between memtable flushes.  The *active*
            memtable is a window of the memtable arena that advances on
            every flush — fresh allocations land wherever memory is free,
            so a static first-touch placement loses the memtable's
            locality over time.
        seed: RNG seed.
    """

    footprint_bytes: int = 400 * GiB
    scale: float = 1.0
    write_ratio: float = 0.5
    hot_fragments: int = 24
    fragment_hugepages: int = 1
    reshuffle_every: int = 10
    flush_every: int = 20
    seed: int = 7

    def __post_init__(self) -> None:
        if self.hot_fragments < 1:
            raise ConfigError("hot_fragments must be >= 1")
        if self.flush_every < 1:
            raise ConfigError("flush_every must be >= 1")
        if self.fragment_hugepages < 1:
            raise ConfigError("fragment_hugepages must be >= 1")
        if self.reshuffle_every < 1:
            raise ConfigError("reshuffle_every must be >= 1")


class CassandraWorkload(SegmentedWorkload):
    """YCSB-A zipfian row-store access pattern."""

    name = "cassandra"
    rw_mix = "1:1"

    def __init__(self, config: CassandraConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else CassandraConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._memtable = None
        self._sstables = None
        self._fragments: np.ndarray | None = None

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        cfg = self.config
        total = scaled_pages(cfg.footprint_bytes, cfg.scale)
        memtable = max(PAGES_PER_HUGE_PAGE, total // 64)
        sstables = max(1, total - memtable)
        # Startup order: the sstable bulk is loaded first; the memtable
        # arena is JVM heap that grows once traffic starts — so under
        # first-touch it lands wherever memory is left (the slow tiers).
        vmas = populate(
            self,
            space,
            thp,
            placer,
            [
                ("cassandra.sstables", sstables),
                ("cassandra.memtable", memtable),
            ],
        )
        self._memtable = vmas["cassandra.memtable"]
        self._sstables = vmas["cassandra.sstables"]
        self._fragments = self._pick_fragments(cfg.hot_fragments)

    def segments(self, interval: int) -> list[RateSegment]:
        if self._memtable is None:
            raise ConfigError("segments() before build()")
        cfg = self.config
        if interval > 0 and interval % cfg.reshuffle_every == 0:
            self._reshuffle()
        frag_pages = cfg.fragment_hugepages * PAGES_PER_HUGE_PAGE

        # The active memtable is a quarter of the arena, advancing one
        # window per flush cycle (old memtables become cold garbage until
        # reused).
        window = max(PAGES_PER_HUGE_PAGE, self._memtable.npages // 4)
        slot = (interval // cfg.flush_every) % 4
        active_start = self._memtable.start + min(
            slot * window, max(0, self._memtable.npages - window)
        )
        segs: list[RateSegment] = [
            RateSegment(
                start=active_start, npages=window,
                rate=HOT_RATE * 6, write_ratio=0.8, hot=True,
            ),
        ]
        assert self._fragments is not None
        # Zipfian popularity: fragment i gets rate ~ 1/(i+1)^0.8, the first
        # few fragments much hotter than the tail, which is floored at the
        # popularity below which YCSB-A keys stop being reused.
        for i, start in enumerate(self._fragments):
            rate = max(HOT_RATE / float((i + 1) ** 0.8), 3 * WARM_RATE)
            segs.append(
                RateSegment(
                    start=int(start), npages=frag_pages,
                    rate=rate, write_ratio=cfg.write_ratio,
                    hot=rate >= WARM_RATE,
                )
            )
        # Cold sstable base (unpopular keys), balanced so the zipfian head
        # carries ~80% of the traffic, YCSB-A's skew.
        hot_accesses = sum(s.rate * s.npages for s in segs)
        segs.append(
            RateSegment(
                start=self._sstables.start, npages=self._sstables.npages,
                rate=balance_cold_rate(hot_accesses, self._sstables.npages, hot_share=0.8),
                write_ratio=0.0, hot=False,
            )
        )
        return segs

    # -- internals --------------------------------------------------------------

    def _pick_fragments(self, count: int) -> np.ndarray:
        assert self._sstables is not None
        frag_pages = self.config.fragment_hugepages * PAGES_PER_HUGE_PAGE
        slots = max(1, (self._sstables.npages - frag_pages) // PAGES_PER_HUGE_PAGE)
        picks = self._rng.choice(slots, size=min(count, slots), replace=False)
        return self._sstables.start + np.sort(picks) * PAGES_PER_HUGE_PAGE

    def _reshuffle(self) -> None:
        """A third of the fragments lose popularity; fresh ones appear."""
        assert self._fragments is not None
        keep = self._rng.random(self._fragments.size) > 1.0 / 3.0
        kept = self._fragments[keep]
        fresh = self._pick_fragments(self._fragments.size - int(kept.size))
        self._fragments = np.sort(np.concatenate([kept, fresh]))
