"""BFS over a power-law graph (Table 2: 525 GB, read-only).

A level-synchronous BFS is actually executed over the generated CSR; each
interval replays the edge and metadata traffic of the next level(s).
Power-law level sets give the characteristic burst: tiny frontier, then an
explosion touching most hubs, then a shrinking tail — strong temporal
variance for profilers to chase.  When a traversal finishes, a new one
starts from the next root (the paper runs BFS repeatedly for 120
intervals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro.errors import ConfigError
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.units import GiB, PAGES_PER_HUGE_PAGE
from repro.workloads._traversal import (
    chunks_to_segments,
    edge_chunks_for_vertices,
    meta_chunks_for_vertices,
)
from repro.workloads.base import (
    COLD_RATE,
    HOT_RATE,
    WARM_RATE,
    Placer,
    RateSegment,
    SegmentedWorkload,
    populate,
    scaled_pages,
)
from repro.workloads.graph import CsrGraph, generate_power_law_graph


@dataclass
class BfsConfig:
    """BFS workload tunables.

    Attributes:
        footprint_bytes: total at paper scale (525 GB).
        scale: machine capacity scale.
        num_vertices: simulated graph size (traversal runs for real).
        avg_degree: mean out-degree (paper graph: ~15.5).
        levels_per_interval: BFS levels replayed per profiling interval.
        seed: RNG seed for graph generation and root cycling.
    """

    footprint_bytes: int = 525 * GiB
    scale: float = 1.0
    num_vertices: int = 50_000
    avg_degree: float = 14.0
    levels_per_interval: int = 1
    seed: int = 3

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ConfigError("num_vertices must be >= 2")
        if self.levels_per_interval < 1:
            raise ConfigError("levels_per_interval must be >= 1")


class BfsWorkload(SegmentedWorkload):
    """Replay of a real BFS traversal's page traffic."""

    name = "bfs"
    rw_mix = "read-only"

    #: Edge accesses are pure reads; frontier/visited metadata is updated.
    EDGE_WRITE_RATIO = 0.0
    META_WRITE_RATIO = 0.5

    def __init__(self, config: BfsConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else BfsConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.graph: CsrGraph | None = None
        self._edges = None
        self._meta = None
        self._state = None  # frontier queues / visited bitmap: always hot
        self._levels: list[np.ndarray] = []
        self._cursor = 0
        self._root = 0

    # -- construction --------------------------------------------------------

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        cfg = self.config
        self.graph = self._make_graph()
        total = scaled_pages(cfg.footprint_bytes, cfg.scale)
        # The paper's graph: 14B edges (~112 GB) vs 0.9B vertices of
        # distance/parent/visited metadata (~1/8 of the edge bytes).
        meta = max(PAGES_PER_HUGE_PAGE, total // 8)
        state = max(PAGES_PER_HUGE_PAGE, total // 128)
        edges = max(1, total - meta - state)
        # The CSR edge array is loaded from disk first; per-traversal
        # runtime state (frontier queues, visited bitmap, distances) is
        # allocated afterwards and lands on slow tiers under first-touch.
        vmas = populate(
            self,
            space,
            thp,
            placer,
            [
                (f"{self.name}.edges", edges),
                (f"{self.name}.meta", meta),
                (f"{self.name}.state", state),
            ],
        )
        self._state = vmas[f"{self.name}.state"]
        self._meta = vmas[f"{self.name}.meta"]
        self._edges = vmas[f"{self.name}.edges"]
        self._start_traversal()

    def _make_graph(self) -> CsrGraph:
        cfg = self.config
        return generate_power_law_graph(
            cfg.num_vertices, avg_degree=cfg.avg_degree, seed=cfg.seed
        )

    def _rounds_from(self, root: int) -> list[np.ndarray]:
        assert self.graph is not None
        return self.graph.bfs_levels(root)

    def _start_traversal(self) -> None:
        assert self.graph is not None
        self._levels = []
        attempts = 0
        # Roots with no outgoing reach produce empty traversals; cycle on.
        while len(self._levels) < 2 and attempts < 32:
            self._levels = self._rounds_from(self._root)
            self._root = (self._root + 1 + int(self._rng.integers(0, 97))) % self.graph.num_vertices
            attempts += 1
        self._cursor = 0

    # -- interval plan --------------------------------------------------------

    def segments(self, interval: int) -> list[RateSegment]:
        if self.graph is None or self._edges is None:
            raise ConfigError("segments() before build()")
        cfg = self.config
        if self._cursor >= len(self._levels):
            self._start_traversal()
        take = self._levels[self._cursor : self._cursor + cfg.levels_per_interval]
        self._cursor += cfg.levels_per_interval
        active = nputil.unique(np.concatenate(take)) if take else np.empty(0, dtype=np.int64)

        segs: list[RateSegment] = [
            # Frontier queues and the visited bitmap: small, always hot.
            RateSegment(
                start=self._state.start, npages=self._state.npages,
                rate=HOT_RATE, write_ratio=self.META_WRITE_RATIO, hot=True,
            ),
            # Every neighbour of every frontier vertex probes visited[] /
            # dist[]: the whole metadata array is warm in every active
            # interval — the stable mass a tiering policy can win on.
            RateSegment(
                start=self._meta.start, npages=self._meta.npages,
                rate=WARM_RATE, write_ratio=self.META_WRITE_RATIO, hot=False,
            ),
            # Background stray traffic over the edge array.
            RateSegment(
                start=self._edges.start, npages=self._edges.npages,
                rate=COLD_RATE / 8, write_ratio=0.0, hot=False,
            ),
        ]
        if active.size:
            edge_chunks = edge_chunks_for_vertices(self.graph, active, self._edges)
            segs.extend(
                chunks_to_segments(
                    edge_chunks, self._edges, HOT_RATE, self.EDGE_WRITE_RATIO, hot=True
                )
            )
            meta_chunks = meta_chunks_for_vertices(self.graph, active, self._meta)
            segs.extend(
                chunks_to_segments(
                    meta_chunks, self._meta, HOT_RATE, self.META_WRITE_RATIO, hot=True
                )
            )
        return segs
