"""SSSP over a power-law graph (Table 2: 525 GB, read-only).

Same substrate as :mod:`repro.workloads.bfs` but the traversal is a
Bellman-Ford-style relaxation: vertices are *revisited* across rounds as
shorter paths arrive, so the hot set is stickier and the run is longer
(the paper reports 360 profiling intervals vs BFS's 120).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import GiB
from repro.workloads.bfs import BfsConfig, BfsWorkload
from repro.workloads.graph import CsrGraph, generate_power_law_graph


@dataclass
class SsspConfig(BfsConfig):
    """SSSP tunables (extends the BFS ones).

    Attributes:
        max_rounds: relaxation-round cap per traversal.
    """

    footprint_bytes: int = 525 * GiB
    max_rounds: int = 48

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_rounds < 1:
            raise ConfigError("max_rounds must be >= 1")


class SsspWorkload(BfsWorkload):
    """Replay of a real relaxation traversal's page traffic."""

    name = "sssp"
    rw_mix = "read-only"

    #: SSSP updates distances constantly.
    META_WRITE_RATIO = 0.6

    def __init__(self, config: SsspConfig | None = None) -> None:
        super().__init__(config if config is not None else SsspConfig())

    def _make_graph(self) -> CsrGraph:
        cfg = self.config
        return generate_power_law_graph(
            cfg.num_vertices, avg_degree=cfg.avg_degree, weighted=True, seed=cfg.seed
        )

    def _rounds_from(self, root: int) -> list[np.ndarray]:
        assert self.graph is not None
        cfg: SsspConfig = self.config  # type: ignore[assignment]
        return self.graph.sssp_rounds(root, max_rounds=cfg.max_rounds)
