"""GUPS: random updates with a drifting Gaussian hot set.

The paper's microbenchmark (Table 2: 512 GB footprint, 1:1 R/W): 20% of
the footprint is a hot set receiving 80% of the accesses, page hotness
within the hot set follows a Gaussian, and the hot set periodically moves
(Sec. 9.3: "1M-updates repetitively happens, so that there is variance on
hot pages").  Three hot objects match Fig. 6: the index array ("A"), the
hot-set information ("B"), and the hot set itself ("C").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.units import GiB, MiB, PAGES_PER_HUGE_PAGE
from repro.workloads.base import (
    HOT_RATE,
    Placer,
    RateSegment,
    SegmentedWorkload,
    populate,
    scaled_pages,
)


@dataclass
class GupsConfig:
    """GUPS tunables.

    Attributes:
        footprint_bytes: table size at paper scale (512 GB).
        scale: machine capacity scale.
        hot_fraction: fraction of the table that is hot (paper: 20%).
        hot_access_share: fraction of accesses landing in the hot set (80%).
        write_ratio: update fraction (1:1 R/W -> 0.5).
        drift_every: intervals between hot-set drift steps.
        drift_fraction: fraction of the hot window the hot set slides by
            per drift step.  The paper's GUPS repeats its 1M-update rounds
            "so that there is variance on hot pages" — gradual drift, not
            teleportation; a migration budget of a few regions per
            interval can track it.
        gaussian_bands: sub-segments approximating the Gaussian shape.
        threads: application threads (throughput scaling in Fig. 12).
        remote_thread_fraction: fraction of accesses issued from socket 1.
        seed: RNG seed for drift placement.
    """

    footprint_bytes: int = 512 * GiB
    scale: float = 1.0
    hot_fraction: float = 0.20
    hot_access_share: float = 0.80
    write_ratio: float = 0.5
    drift_every: int = 10
    drift_fraction: float = 0.125
    gaussian_bands: int = 5
    threads: int = 8
    remote_thread_fraction: float = 0.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction < 1.0:
            raise ConfigError("hot_fraction must be in (0,1)")
        if not 0.0 < self.hot_access_share < 1.0:
            raise ConfigError("hot_access_share must be in (0,1)")
        if self.drift_every < 1:
            raise ConfigError("drift_every must be >= 1")
        if not 0.0 <= self.drift_fraction <= 1.0:
            raise ConfigError("drift_fraction must be in [0, 1]")
        if self.gaussian_bands < 1:
            raise ConfigError("gaussian_bands must be >= 1")
        if not 0.0 <= self.remote_thread_fraction <= 1.0:
            raise ConfigError("remote_thread_fraction must be in [0,1]")


class GupsWorkload(SegmentedWorkload):
    """Giga-updates per second with a drifting hot set."""

    name = "gups"
    rw_mix = "1:1"

    def __init__(self, config: GupsConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else GupsConfig()
        self._drift_rng = np.random.default_rng(self.config.seed)
        self._table = None
        self._index = None
        self._hotinfo = None
        self._hot_offset = 0
        self._hot_npages = 0

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        cfg = self.config
        table_pages = scaled_pages(cfg.footprint_bytes, cfg.scale)
        index_pages = max(PAGES_PER_HUGE_PAGE, scaled_pages(4 * GiB, cfg.scale))
        hotinfo_pages = max(1, scaled_pages(256 * MiB, cfg.scale))
        vmas = populate(
            self,
            space,
            thp,
            placer,
            [
                ("gups.index", index_pages),  # "A" in Fig. 6
                ("gups.hotinfo", hotinfo_pages),  # "B"
                ("gups.table", table_pages),  # contains "C"
            ],
        )
        self._index = vmas["gups.index"]
        self._hotinfo = vmas["gups.hotinfo"]
        self._table = vmas["gups.table"]
        self._hot_npages = max(
            PAGES_PER_HUGE_PAGE,
            int(table_pages * cfg.hot_fraction) // PAGES_PER_HUGE_PAGE * PAGES_PER_HUGE_PAGE,
        )
        self._relocate_hot_set()

    def segments(self, interval: int) -> list[RateSegment]:
        if self._table is None:
            raise ConfigError("segments() before build()")
        cfg = self.config
        if interval > 0 and interval % cfg.drift_every == 0:
            self._slide_hot_set()

        table = self._table
        hot_start = table.start + self._hot_offset
        hot_end = hot_start + self._hot_npages
        # Thread count scales total throughput (used by Fig. 12's 16- vs
        # 24-thread comparison); 8 threads is the paper's default.
        thread_factor = cfg.threads / 8.0

        # Cold rate balances the 80/20 split given the hot/cold page ratio.
        cold_pages = table.npages - self._hot_npages
        hot_accesses = HOT_RATE * self._hot_npages * thread_factor
        cold_rate = 0.0
        if cold_pages > 0:
            cold_rate = (
                hot_accesses * (1.0 - cfg.hot_access_share) / cfg.hot_access_share / cold_pages
            )

        segs: list[RateSegment] = []
        # Cold table around the hot window.
        if hot_start > table.start:
            segs.append(self._seg(table.start, hot_start - table.start, cold_rate, hot=False))
        if hot_end < table.end:
            segs.append(self._seg(hot_end, table.end - hot_end, cold_rate, hot=False))
        # Gaussian bands across the hot window ("C").
        segs.extend(self._gaussian_bands(hot_start, self._hot_npages, thread_factor))
        # Index ("A") and hot-set info ("B") are always hot; the index is
        # read-mostly (lookups), the info structure is updated.
        segs.append(
            RateSegment(
                start=self._index.start, npages=self._index.npages,
                rate=HOT_RATE * thread_factor, write_ratio=0.05, hot=True,
            )
        )
        segs.append(
            RateSegment(
                start=self._hotinfo.start, npages=self._hotinfo.npages,
                rate=HOT_RATE * thread_factor, write_ratio=0.5, hot=True,
            )
        )
        return self._attribute_sockets(segs)

    # -- internals --------------------------------------------------------------

    def _seg(self, start: int, npages: int, rate: float, hot: bool) -> RateSegment:
        return RateSegment(
            start=start, npages=npages, rate=rate,
            write_ratio=self.config.write_ratio, hot=hot,
        )

    def _gaussian_bands(self, start: int, npages: int, thread_factor: float) -> list[RateSegment]:
        """Approximate Gaussian page hotness with stepped bands.

        Band weights follow the normal pdf across the window, normalized so
        the window's mean rate equals ``HOT_RATE``.
        """
        bands = self.config.gaussian_bands
        edges = np.linspace(0, npages, bands + 1).astype(np.int64)
        centers = (edges[:-1] + edges[1:]) / 2.0 / max(1, npages)
        weights = np.array([math.exp(-0.5 * ((c - 0.5) / 0.22) ** 2) for c in centers])
        sizes = np.diff(edges).astype(np.float64)
        weights *= npages / float((weights * sizes).sum())
        segs = []
        for i in range(bands):
            size = int(edges[i + 1] - edges[i])
            if size <= 0:
                continue
            segs.append(
                self._seg(
                    start + int(edges[i]), size,
                    HOT_RATE * float(weights[i]) * thread_factor, hot=True,
                )
            )
        return segs

    def _attribute_sockets(self, segs: list[RateSegment]) -> list[RateSegment]:
        """Split segment traffic across sockets per the thread placement."""
        frac = self.config.remote_thread_fraction
        if frac <= 0.0:
            return segs
        out: list[RateSegment] = []
        for s in segs:
            if frac >= 1.0:
                out.append(RateSegment(s.start, s.npages, s.rate, s.write_ratio, 1, s.hot))
                continue
            out.append(RateSegment(s.start, s.npages, s.rate * (1 - frac), s.write_ratio, 0, s.hot))
            out.append(RateSegment(s.start, s.npages, s.rate * frac, s.write_ratio, 1, s.hot))
        return out

    def _relocate_hot_set(self) -> None:
        """Place the hot window at a fresh huge-aligned offset (startup)."""
        assert self._table is not None
        max_offset = self._table.npages - self._hot_npages
        if max_offset <= 0:
            self._hot_offset = 0
            return
        slots = max_offset // PAGES_PER_HUGE_PAGE
        self._hot_offset = int(self._drift_rng.integers(0, slots + 1)) * PAGES_PER_HUGE_PAGE

    def _slide_hot_set(self) -> None:
        """Drift: slide the window by ``drift_fraction`` of its size."""
        assert self._table is not None
        max_offset = self._table.npages - self._hot_npages
        if max_offset <= 0:
            return
        step = int(self._hot_npages * self.config.drift_fraction)
        step = max(PAGES_PER_HUGE_PAGE, step // PAGES_PER_HUGE_PAGE * PAGES_PER_HUGE_PAGE)
        self._hot_offset += step
        if self._hot_offset > max_offset:
            self._hot_offset = 0  # wrap around to the table start

    # -- introspection for Fig. 6 / Table 4 ------------------------------------

    @property
    def hot_window(self) -> tuple[int, int]:
        """(start_page, npages) of the current hot set ("C")."""
        assert self._table is not None
        return (self._table.start + self._hot_offset, self._hot_npages)
