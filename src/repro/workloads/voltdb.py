"""VoltDB running TPC-C (Table 2: 300 GB, 1:1 R/W).

An in-memory OLTP database has a characteristic page-access shape that the
generator reproduces structurally:

* tiny, extremely hot control tables (warehouse/district);
* a customer/stock working set with skewed (zipf-like) warmth — a few hot
  chunks that rotate slowly as key popularity shifts;
* an append-dominated order/order-line area whose hot window *slides
  forward* every interval (new transactions insert at the tail) — the
  steady temporal drift that punishes slow-reacting profilers;
* a cold history tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace
from repro.units import GiB, PAGES_PER_HUGE_PAGE
from repro.workloads.base import (
    HOT_RATE,
    Placer,
    RateSegment,
    SegmentedWorkload,
    balance_cold_rate,
    populate,
    scaled_pages,
)


@dataclass
class VoltDbConfig:
    """VoltDB/TPC-C tunables.

    Attributes:
        footprint_bytes: total at paper scale (300 GB).
        scale: machine capacity scale.
        write_ratio: 1:1 R/W -> 0.5.
        hot_chunks: rotating hot chunks in the customer/stock area.
        rotate_every: intervals between hot-chunk rotation.
        order_window_fraction: sliding hot window size in the order area.
        seed: RNG seed for chunk rotation.
    """

    footprint_bytes: int = 300 * GiB
    scale: float = 1.0
    write_ratio: float = 0.5
    hot_chunks: int = 6
    rotate_every: int = 15
    order_window_fraction: float = 0.15
    seed: int = 42

    def __post_init__(self) -> None:
        if self.hot_chunks < 1:
            raise ConfigError("hot_chunks must be >= 1")
        if self.rotate_every < 1:
            raise ConfigError("rotate_every must be >= 1")
        if not 0.0 < self.order_window_fraction < 1.0:
            raise ConfigError("order_window_fraction must be in (0,1)")


class VoltDbWorkload(SegmentedWorkload):
    """TPC-C-shaped OLTP access pattern."""

    name = "voltdb"
    rw_mix = "1:1"

    def __init__(self, config: VoltDbConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else VoltDbConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._control = None  # warehouse/district
        self._working = None  # customer/stock
        self._orders = None  # orders/order_line (append area)
        self._history = None  # cold tail
        self._hot_chunk_starts: np.ndarray | None = None
        self._order_head = 0

    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        cfg = self.config
        total = scaled_pages(cfg.footprint_bytes, cfg.scale)
        control = max(PAGES_PER_HUGE_PAGE, total // 256)
        working = int(total * 0.45)
        orders = int(total * 0.35)
        history = max(1, total - control - working - orders)
        # Allocation order mirrors how an OLTP database comes up: the bulk
        # load (customer/stock) and historical data first, the order
        # tables last — they only fill once transactions start.  Under
        # first-touch the late, hottest allocations therefore land on the
        # slow tiers, which is exactly why page migration matters for
        # databases.
        vmas = populate(
            self,
            space,
            thp,
            placer,
            [
                ("voltdb.control", control),
                ("voltdb.working", working),
                ("voltdb.history", history),
                ("voltdb.orders", orders),
            ],
        )
        self._control = vmas["voltdb.control"]
        self._working = vmas["voltdb.working"]
        self._orders = vmas["voltdb.orders"]
        self._history = vmas["voltdb.history"]
        self._rotate_hot_chunks()

    def segments(self, interval: int) -> list[RateSegment]:
        if self._control is None:
            raise ConfigError("segments() before build()")
        cfg = self.config
        if interval > 0 and interval % cfg.rotate_every == 0:
            self._rotate_hot_chunks()
        segs: list[RateSegment] = []

        # Control tables: always scorching, updated constantly.
        segs.append(
            RateSegment(
                start=self._control.start, npages=self._control.npages,
                rate=HOT_RATE * 1.5, write_ratio=cfg.write_ratio, hot=True,
            )
        )

        # Customer/stock rotating hot chunks (zipf-warm key ranges).
        chunk_pages = self._chunk_pages()
        assert self._hot_chunk_starts is not None
        for start in self._hot_chunk_starts:
            segs.append(
                RateSegment(
                    start=int(start), npages=chunk_pages,
                    rate=HOT_RATE, write_ratio=cfg.write_ratio, hot=True,
                )
            )

        # Orders: sliding append window at the head; it wraps around as
        # old orders age out.  The head advances at transaction rate —
        # slow enough that a few-regions-per-interval migration budget can
        # track it.
        window = max(
            PAGES_PER_HUGE_PAGE,
            int(self._orders.npages * cfg.order_window_fraction),
        )
        self._order_head = (self._order_head + window // 16) % max(1, self._orders.npages - window)
        head_start = self._orders.start + self._order_head
        segs.append(
            RateSegment(
                start=head_start, npages=window,
                rate=HOT_RATE, write_ratio=0.7, hot=True,
            )
        )

        # Uniform cold background over customer/stock, orders, history —
        # balanced so the hot structures carry ~80% of the traffic, the
        # TPC-C skew the paper's 5K-warehouse setup exhibits.
        hot_accesses = sum(s.rate * s.npages for s in segs)
        cold_pages = self._working.npages + self._orders.npages + self._history.npages
        cold_rate = balance_cold_rate(hot_accesses, cold_pages, hot_share=0.8)
        segs.append(
            RateSegment(
                start=self._working.start, npages=self._working.npages,
                rate=cold_rate, write_ratio=cfg.write_ratio, hot=False,
            )
        )
        segs.append(
            RateSegment(
                start=self._orders.start, npages=self._orders.npages,
                rate=cold_rate, write_ratio=0.1, hot=False,
            )
        )
        segs.append(
            RateSegment(
                start=self._history.start, npages=self._history.npages,
                rate=cold_rate / 2, write_ratio=0.05, hot=False,
            )
        )
        return segs

    # -- internals --------------------------------------------------------------

    def _chunk_pages(self) -> int:
        assert self._working is not None
        return max(
            PAGES_PER_HUGE_PAGE,
            self._working.npages // (self.config.hot_chunks * 8),
        )

    def _rotate_hot_chunks(self) -> None:
        assert self._working is not None
        chunk_pages = self._chunk_pages()
        slots = max(1, (self._working.npages - chunk_pages) // PAGES_PER_HUGE_PAGE)
        picks = self._rng.choice(slots, size=min(self.config.hot_chunks, slots), replace=False)
        self._hot_chunk_starts = self._working.start + np.sort(picks) * PAGES_PER_HUGE_PAGE
