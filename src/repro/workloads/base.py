"""Workload interface and the segment-rate machinery.

A workload describes each interval's activity as a list of
:class:`RateSegment` — contiguous page ranges with an expected per-page
access rate, a write ratio, a dominant socket, and a hotness label.  The
base class turns segments into an :class:`~repro.sim.trace.AccessBatch` by
drawing per-page Poisson counts, which is both fast (vectorized over each
segment) and statistically faithful: a page with rate 4 is touched several
times per interval (a multi-scan profiler can grade it), a page with rate
0.2 is usually untouched (exactly the sparsity that makes large-memory
profiling hard).

Calibration note: rates are per 4 KB page per interval and sit at
paper-realistic densities (hot ~0.2, cold ~0.015): most pages are
untouched in any given interval, which is exactly what makes large-memory
profiling hard.  At 2 MB huge-page granularity these integrate to ~100
accesses per hot entry and ~8 per cold entry per interval — the regime
where MTM's burst-window multi-scan discriminates while evenly-spread
access-bit checks saturate (see :mod:`repro.mm.mmu`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro import perfflags
from repro.errors import WorkloadError
from repro.hw.placement import Placer
from repro.mm.hugepage import ThpManager
from repro.mm.vma import AddressSpace, Vma
from repro.sim.trace import AccessBatch
from repro.units import bytes_to_pages

#: Default calibrated rates (accesses per 4 KB page per interval).
HOT_RATE = 0.2
WARM_RATE = 0.05
COLD_RATE = 0.015


@dataclass(frozen=True)
class RateSegment:
    """One contiguous range of pages with uniform expected activity.

    Attributes:
        start: first page of the segment.
        npages: length in pages.
        rate: expected accesses per page this interval.
        write_ratio: fraction of the segment's accesses that write.
        socket: socket issuing the accesses.
        hot: ground-truth hotness label for quality metrics.
    """

    start: int
    npages: int
    rate: float
    write_ratio: float = 0.0
    socket: int = 0
    hot: bool = False

    def __post_init__(self) -> None:
        if self.npages < 1:
            raise WorkloadError(f"segment needs >= 1 page, got {self.npages}")
        if self.rate < 0:
            raise WorkloadError(f"negative rate: {self.rate}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError(f"write_ratio must be in [0,1], got {self.write_ratio}")

    @property
    def end(self) -> int:
        return self.start + self.npages


class Workload(abc.ABC):
    """Common contract for workload generators."""

    #: Short name used in reports.
    name: str = "workload"
    #: Read/write description from Table 2 ("1:1", "read-only").
    rw_mix: str = "1:1"

    @abc.abstractmethod
    def build(self, space: AddressSpace, thp: ThpManager, placer: Placer) -> None:
        """Allocate this workload's VMAs and map them via ``placer``."""

    @abc.abstractmethod
    def next_batch(self, rng: np.random.Generator) -> AccessBatch:
        """The next interval's access histogram (advances workload state)."""

    @abc.abstractmethod
    def hot_pages(self) -> np.ndarray:
        """Ground-truth hot pages for the interval last generated."""

    @abc.abstractmethod
    def footprint_pages(self) -> int:
        """Total pages across this workload's VMAs."""

    def spans(self) -> list[tuple[int, int]]:
        """VMA spans ``(start, npages)`` for profiler setup."""
        return [(v.start, v.npages) for v in self.vmas()]

    @abc.abstractmethod
    def vmas(self) -> list[Vma]:
        """The VMAs this workload allocated (after :meth:`build`)."""


class SegmentedWorkload(Workload):
    """Workload base driven by per-interval :class:`RateSegment` lists.

    Subclasses allocate VMAs in :meth:`build` and implement
    :meth:`segments` returning the current interval's activity; the base
    class handles batch synthesis, hot-page ground truth, and interval
    advancement.
    """

    def __init__(self) -> None:
        self._vmas: list[Vma] = []
        self._interval = -1
        self._current_segments: list[RateSegment] = []
        self._segments_pending = 0

    # -- subclass API --------------------------------------------------------

    @abc.abstractmethod
    def segments(self, interval: int) -> list[RateSegment]:
        """Activity for ``interval`` (0-based)."""

    def _register_vma(self, vma: Vma) -> None:
        self._vmas.append(vma)

    # -- Workload implementation ------------------------------------------------

    def vmas(self) -> list[Vma]:
        return list(self._vmas)

    def footprint_pages(self) -> int:
        return sum(v.npages for v in self._vmas)

    @property
    def interval(self) -> int:
        """Index of the last generated interval (-1 before the first)."""
        return self._interval

    def next_batch(self, rng: np.random.Generator) -> AccessBatch:
        if not self._vmas:
            raise WorkloadError("next_batch() before build()")
        self._catch_up_segments()
        self._interval += 1
        self._current_segments = self.segments(self._interval)
        if perfflags.vectorized():
            return self._next_batch_fast(rng)
        batches = []
        for segment in self._current_segments:
            if segment.rate <= 0:
                continue
            counts = rng.poisson(segment.rate, segment.npages)
            touched = np.nonzero(counts)[0]
            if touched.size == 0:
                continue
            pages = segment.start + touched.astype(np.int64)
            page_counts = counts[touched].astype(np.int64)
            writes = rng.binomial(page_counts, segment.write_ratio)
            batches.append(
                AccessBatch(
                    pages=pages,
                    counts=page_counts,
                    writes=writes.astype(np.int64),
                    sockets=np.full(pages.shape, segment.socket, dtype=np.int8),
                )
            )
        return AccessBatch.merge(batches)

    def _next_batch_fast(self, rng: np.random.Generator) -> AccessBatch:
        """Batch assembly without intermediate per-segment ``AccessBatch``
        objects.

        RNG draws are identical to the legacy loop (same order, same
        arguments), so the result is bit-identical; segment lists are
        normally disjoint and ascending, letting the concatenated arrays
        skip the unique/scatter-add merge entirely.
        """
        pages_l: list[np.ndarray] = []
        counts_l: list[np.ndarray] = []
        writes_l: list[np.ndarray] = []
        sockets_l: list[np.ndarray] = []
        for segment in self._current_segments:
            if segment.rate <= 0:
                continue
            counts = rng.poisson(segment.rate, segment.npages)
            touched = np.nonzero(counts)[0]
            if touched.size == 0:
                continue
            pages_l.append(segment.start + touched.astype(np.int64))
            counts_l.append(counts[touched].astype(np.int64))
            writes_l.append(
                rng.binomial(counts_l[-1], segment.write_ratio).astype(np.int64)
            )
            sockets_l.append(np.full(pages_l[-1].shape, segment.socket, dtype=np.int8))
        if not pages_l:
            return AccessBatch.empty()
        all_pages = np.concatenate(pages_l)
        if np.all(np.diff(all_pages) > 0):
            # Disjoint ascending segments: every page appears once, so the
            # merged histogram IS the concatenation (each page's dominant
            # socket is its only contributor).
            return AccessBatch(
                pages=all_pages,
                counts=np.concatenate(counts_l),
                writes=np.concatenate(writes_l),
                sockets=np.concatenate(sockets_l),
            )
        return AccessBatch.merge(
            [
                AccessBatch(pages=p, counts=c, writes=w, sockets=s)
                for p, c, w, s in zip(pages_l, counts_l, writes_l, sockets_l)
            ]
        )

    def advance_interval(self) -> None:
        """Advance interval state without synthesizing a batch.

        The engine calls this when a cached trace stream supplies the
        interval's activity, so :meth:`hot_pages` and
        :meth:`expected_accesses` stay in sync with the batch being
        replayed.  Draws no randomness.

        Segment plans are computed lazily: stateful workloads (BFS's
        traversal cursor) still see one ``segments()`` call per interval,
        in order, but only once something actually reads the plan — a run
        that never asks for ground truth skips the whole computation.
        """
        if not self._vmas:
            raise WorkloadError("advance_interval() before build()")
        self._interval += 1
        self._segments_pending += 1

    def _catch_up_segments(self) -> None:
        """Replay deferred ``segments()`` calls, one per skipped interval."""
        while self._segments_pending:
            self._segments_pending -= 1
            self._current_segments = self.segments(
                self._interval - self._segments_pending
            )

    def hot_pages(self) -> np.ndarray:
        if self._interval < 0:
            raise WorkloadError("hot_pages() before the first next_batch()")
        self._catch_up_segments()
        ranges = [
            np.arange(s.start, s.end, dtype=np.int64)
            for s in self._current_segments
            if s.hot
        ]
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return nputil.unique(np.concatenate(ranges))

    def expected_accesses(self) -> float:
        """Expected accesses in the current interval's segment plan."""
        self._catch_up_segments()
        return sum(s.rate * s.npages for s in self._current_segments)


def balance_cold_rate(hot_accesses: float, cold_pages: int, hot_share: float = 0.8) -> float:
    """Cold-segment rate giving hot segments ``hot_share`` of all accesses.

    Skewed workloads (zipfian YCSB, TPC-C) concentrate ~80% of traffic on
    the hot structures; this solves for the uniform background rate that
    realizes a chosen split.
    """
    if not 0.0 < hot_share < 1.0:
        raise WorkloadError(f"hot_share must be in (0,1), got {hot_share}")
    if cold_pages <= 0:
        return 0.0
    return hot_accesses * (1.0 - hot_share) / hot_share / cold_pages


def scaled_pages(paper_bytes: float, scale: float) -> int:
    """Pages for a paper-scale size under ``scale``, at least one page."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return max(1, bytes_to_pages(int(paper_bytes * scale)))


def populate(
    workload: SegmentedWorkload,
    space: AddressSpace,
    thp: ThpManager,
    placer: Placer,
    sizes: list[tuple[str, int]],
) -> dict[str, Vma]:
    """Allocate and map named VMAs for a workload.

    Each VMA may be split across components by the placer (spill-over when
    a tier fills); chunk boundaries stay huge-aligned so THP mappings are
    not torn at placement time.

    Args:
        sizes: list of ``(name, npages)``.

    Returns:
        Mapping of VMA name to the allocated VMA.
    """
    from repro.mm.vma import Vma as _Vma
    from repro.units import PAGES_PER_HUGE_PAGE

    result: dict[str, Vma] = {}
    for name, npages in sizes:
        vma = space.allocate_vma(npages, name)
        offset = vma.start
        chunks = placer.place(npages)
        for i, (chunk_pages, node) in enumerate(chunks):
            if i < len(chunks) - 1 and chunk_pages % PAGES_PER_HUGE_PAGE:
                raise WorkloadError(
                    f"placer chunk of {chunk_pages} pages is not huge-aligned"
                )
            chunk_vma = _Vma(start=offset, npages=chunk_pages, name=f"{name}[{i}]")
            thp.populate(space.page_table, chunk_vma, node)
            offset += chunk_pages
        if offset != vma.end:
            raise WorkloadError(
                f"placer covered {offset - vma.start} of {npages} pages for {name}"
            )
        workload._register_vma(vma)
        result[name] = vma
    return result
