"""Synthetic power-law graphs in CSR form, for the BFS/SSSP workloads.

The paper traverses a 0.9 B-vertex / 14 B-edge graph (Table 2).  We build
a structurally similar graph at simulation scale: power-law out-degrees
(a few hubs, a long tail) and partially localized targets (graph loaders
renumber vertices so neighbours tend to be nearby, which is what gives
graph workloads their exploitable spatial locality).  The traversals run
for real over this CSR — level sets and relaxation rounds are computed,
not faked — and the workloads map edge ranges onto the large VA footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil, perfflags
from repro.errors import ConfigError


@dataclass
class CsrGraph:
    """Compressed-sparse-row directed graph.

    Attributes:
        offsets: length ``n + 1``; vertex v's edges live in
            ``targets[offsets[v]:offsets[v + 1]]``.
        targets: edge target vertices.
        weights: positive edge weights (for SSSP); None for BFS-only use.
    """

    offsets: np.ndarray
    targets: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.targets = np.asarray(self.targets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 2:
            raise ConfigError("offsets must be a 1-D array of length >= 2")
        if self.offsets[0] != 0 or self.offsets[-1] != self.targets.size:
            raise ConfigError("offsets do not index targets")
        if np.any(np.diff(self.offsets) < 0):
            raise ConfigError("offsets must be non-decreasing")
        if self.targets.size and (
            self.targets.min() < 0 or self.targets.max() >= self.num_vertices
        ):
            raise ConfigError("edge target out of range")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.targets.shape:
                raise ConfigError("weights shape must match targets")
            if self.weights.size and self.weights.min() <= 0:
                raise ConfigError("weights must be positive")

    @property
    def num_vertices(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.targets.size)

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    # -- traversals --------------------------------------------------------------

    def bfs_levels(self, root: int = 0) -> list[np.ndarray]:
        """Level-synchronous BFS; returns the frontier of each level.

        Unreachable vertices never appear.  This is the real traversal the
        BFS workload replays interval by interval.  Traversals are pure
        functions of ``(graph, root)``, so repeated roots (every engine on
        the same seeded workload cycles the same root sequence) replay
        from a per-graph memo instead of re-traversing.
        """
        if perfflags.vectorized():
            cache = self.__dict__.setdefault("_bfs_cache", {})
            if root not in cache:
                cache[root] = self._bfs_levels_uncached(root)
            return list(cache[root])
        return self._bfs_levels_uncached(root)

    def _bfs_levels_uncached(self, root: int) -> list[np.ndarray]:
        if not 0 <= root < self.num_vertices:
            raise ConfigError(f"root {root} out of range")
        visited = np.zeros(self.num_vertices, dtype=bool)
        visited[root] = True
        frontier = np.array([root], dtype=np.int64)
        levels = [frontier]
        while frontier.size:
            # Gather all neighbours of the frontier in one vectorized pass.
            starts = self.offsets[frontier]
            ends = self.offsets[frontier + 1]
            counts = ends - starts
            if counts.sum() == 0:
                break
            gather = np.concatenate(
                [self.targets[s:e] for s, e in zip(starts, ends) if e > s]
            )
            gather = nputil.unique(gather)
            fresh = gather[~visited[gather]]
            if fresh.size == 0:
                break
            visited[fresh] = True
            frontier = fresh
            levels.append(frontier)
        return levels

    def sssp_rounds(self, root: int = 0, max_rounds: int = 64) -> list[np.ndarray]:
        """Bellman-Ford-style relaxation; returns active vertices per round.

        Vertices reappear across rounds when shorter paths keep arriving —
        the revisiting that makes SSSP's hot set stickier than BFS's.
        Memoized per ``(root, max_rounds)`` like :meth:`bfs_levels`.
        """
        if perfflags.vectorized():
            cache = self.__dict__.setdefault("_sssp_cache", {})
            key = (root, max_rounds)
            if key not in cache:
                cache[key] = self._sssp_rounds_uncached(root, max_rounds)
            return list(cache[key])
        return self._sssp_rounds_uncached(root, max_rounds)

    def _sssp_rounds_uncached(self, root: int, max_rounds: int) -> list[np.ndarray]:
        if self.weights is None:
            raise ConfigError("graph has no weights; cannot run SSSP")
        if not 0 <= root < self.num_vertices:
            raise ConfigError(f"root {root} out of range")
        dist = np.full(self.num_vertices, np.inf)
        dist[root] = 0.0
        active = np.array([root], dtype=np.int64)
        rounds = [active]
        for _ in range(max_rounds):
            next_active: set[int] = set()
            for v in active:
                s, e = int(self.offsets[v]), int(self.offsets[v + 1])
                if e <= s:
                    continue
                nbrs = self.targets[s:e]
                cand = dist[v] + self.weights[s:e]
                improved = cand < dist[nbrs]
                if np.any(improved):
                    winners = nbrs[improved]
                    dist[winners] = np.minimum(dist[winners], cand[improved])
                    next_active.update(int(w) for w in winners)
            if not next_active:
                break
            active = np.fromiter(sorted(next_active), dtype=np.int64)
            rounds.append(active)
        return rounds


#: Memo for generated graphs: generation is deterministic in its
#: arguments and the CSR is treated as immutable, so every engine built
#: for the same seeded workload can share one instance (and with it the
#: per-graph traversal memos above).
_GRAPH_CACHE: dict[tuple, CsrGraph] = {}
_GRAPH_CACHE_MAX = 8


def generate_power_law_graph(
    num_vertices: int,
    avg_degree: float = 14.0,
    zipf_a: float = 2.0,
    locality: float = 0.7,
    weighted: bool = False,
    seed: int = 0,
) -> CsrGraph:
    """Generate a power-law CSR graph with localized targets.

    Args:
        num_vertices: vertex count.
        avg_degree: mean out-degree (the paper's graph has ~15.5).
        zipf_a: zipf exponent for the degree distribution (smaller = more
            skew; must be > 1).
        locality: fraction of edges whose target is near the source in
            vertex order (the rest are uniform).
        weighted: attach positive edge weights (for SSSP).
        seed: RNG seed.
    """
    if perfflags.vectorized():
        key = (num_vertices, avg_degree, zipf_a, locality, weighted, seed)
        hit = _GRAPH_CACHE.get(key)
        if hit is None:
            if len(_GRAPH_CACHE) >= _GRAPH_CACHE_MAX:
                _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
            hit = _generate_power_law_graph(
                num_vertices, avg_degree, zipf_a, locality, weighted, seed
            )
            _GRAPH_CACHE[key] = hit
        return hit
    return _generate_power_law_graph(
        num_vertices, avg_degree, zipf_a, locality, weighted, seed
    )


def _generate_power_law_graph(
    num_vertices: int,
    avg_degree: float,
    zipf_a: float,
    locality: float,
    weighted: bool,
    seed: int,
) -> CsrGraph:
    if num_vertices < 2:
        raise ConfigError("need at least 2 vertices")
    if avg_degree <= 0:
        raise ConfigError("avg_degree must be positive")
    if zipf_a <= 1.0:
        raise ConfigError("zipf_a must be > 1")
    if not 0.0 <= locality <= 1.0:
        raise ConfigError("locality must be in [0, 1]")
    rng = np.random.default_rng(seed)

    raw = rng.zipf(zipf_a, num_vertices).astype(np.float64)
    raw = np.minimum(raw, num_vertices // 2)
    degrees = np.maximum(1, np.round(raw * avg_degree / raw.mean())).astype(np.int64)

    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    m = int(offsets[-1])

    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    local = rng.random(m) < locality
    # Local edges: short signed hops (two-sided geometric-ish).
    hops = rng.geometric(0.05, size=m) * rng.choice(np.array([-1, 1]), size=m)
    targets = np.where(
        local,
        (sources + hops) % num_vertices,
        rng.integers(0, num_vertices, m),
    ).astype(np.int64)
    # No self-loops.
    loops = targets == sources
    targets[loops] = (targets[loops] + 1) % num_vertices

    weights = None
    if weighted:
        weights = rng.uniform(1.0, 8.0, m)
    return CsrGraph(offsets=offsets, targets=targets, weights=weights)
