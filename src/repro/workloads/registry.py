"""Workload registry: Table 2 as code.

Builds any of the paper's six workloads at a given machine scale, with the
paper's footprints, R/W mixes, and recommended run lengths (Table 7's
profiling-interval counts, scaled down for simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.units import GiB
from repro.workloads.base import Workload
from repro.workloads.bfs import BfsConfig, BfsWorkload
from repro.workloads.cassandra import CassandraConfig, CassandraWorkload
from repro.workloads.gups import GupsConfig, GupsWorkload
from repro.workloads.spark import SparkConfig, SparkTeraSortWorkload
from repro.workloads.sssp import SsspConfig, SsspWorkload
from repro.workloads.voltdb import VoltDbConfig, VoltDbWorkload


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one Table 2 workload.

    Attributes:
        name: registry key.
        description: Table 2's one-liner.
        footprint_bytes: working set at paper scale.
        rw_mix: read/write mix.
        paper_intervals: profiling intervals in the paper's runs (Table 7).
    """

    name: str
    description: str
    footprint_bytes: int
    rw_mix: str
    paper_intervals: int


WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    "gups": WorkloadSpec(
        "gups", "random updates to memory (HPCC RandomAccess)", 512 * GiB, "1:1", 1000
    ),
    "voltdb": WorkloadSpec(
        "voltdb", "in-memory database running TPC-C", 300 * GiB, "1:1", 800
    ),
    "cassandra": WorkloadSpec(
        "cassandra", "partitioned row store under YCSB-A", 400 * GiB, "1:1", 1600
    ),
    "bfs": WorkloadSpec(
        "bfs", "parallel graph breadth-first search", 525 * GiB, "read-only", 120
    ),
    "sssp": WorkloadSpec(
        "sssp", "parallel single-source shortest path", 525 * GiB, "read-only", 360
    ),
    "spark": WorkloadSpec(
        "spark", "Spark TeraSort", 350 * GiB, "1:1", 800
    ),
}


def workload_names() -> list[str]:
    """All registered workload names, Table 2 order."""
    return list(WORKLOAD_SPECS)


def build_workload(name: str, scale: float, seed: int = 0, **overrides) -> Workload:
    """Instantiate a workload by name at the given machine scale.

    Args:
        name: one of :func:`workload_names`.
        scale: machine capacity scale (footprints shrink accordingly).
        seed: RNG seed forwarded to the workload config.
        **overrides: extra config fields for the chosen workload.
    """
    if name not in WORKLOAD_SPECS:
        raise WorkloadError(f"unknown workload {name!r}; choose from {workload_names()}")
    if name == "gups":
        return GupsWorkload(GupsConfig(scale=scale, seed=seed, **overrides))
    if name == "voltdb":
        return VoltDbWorkload(VoltDbConfig(scale=scale, seed=seed, **overrides))
    if name == "cassandra":
        return CassandraWorkload(CassandraConfig(scale=scale, seed=seed, **overrides))
    if name == "bfs":
        return BfsWorkload(BfsConfig(scale=scale, seed=seed, **overrides))
    if name == "sssp":
        return SsspWorkload(SsspConfig(scale=scale, seed=seed, **overrides))
    return SparkTeraSortWorkload(SparkConfig(scale=scale, seed=seed, **overrides))
