"""Metrics registry: labeled counters, gauges, and histograms.

One registry instance absorbs every numeric signal a run produces — the
engine's host-side :class:`~repro.metrics.perfstats.PerfStats`, cache
counters, the planner's migration log, robustness counters — behind a
single interface with uniform merge semantics:

* **counters** sum across runs/processes;
* **gauges** keep the maximum (they are point-in-time readings, e.g.
  ``cached_bytes``, where the peak is the meaningful aggregate);
* **histograms** merge count/sum/min/max.

The same arithmetic is exposed as free functions
(:func:`combine_fields`, :func:`delta_fields`,
:func:`merge_sample_maps`) operating on plain dataclasses, so counter
containers elsewhere in the tree (``CacheStats``, ``PerfStats``) share
one implementation of their delta/merge logic instead of hand-rolling
it per class.

A registry never feeds back into the simulation; it only observes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: Canonical label-key form: sorted ``(key, value)`` pairs.
LabelKey = tuple


def label_key(labels: dict) -> LabelKey:
    """Order-independent hashable key for a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_key(name: str, labels: LabelKey) -> str:
    """Prometheus-style rendering: ``name{k=v,...}`` (bare name if none)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramStat:
    """Streaming summary of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "HistogramStat") -> None:
        """Fold another summary into this one."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


def quantile(sorted_samples: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    pos = q * (len(sorted_samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac


class LatencyReservoir:
    """Bounded sample ring for percentile estimation.

    :class:`HistogramStat` keeps only count/sum/min/max, which cannot
    answer "p95 lease latency".  This reservoir keeps the last
    ``capacity`` raw samples (a ring, so long-running daemons converge
    to a sliding window of recent behaviour) and computes interpolated
    percentiles on demand.  O(1) observe; sort cost only at read time.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        #: total samples ever observed (>= len(ring))
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one sample in, evicting the oldest once full."""
        self.count += 1
        if len(self._ring) < self.capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self.capacity

    def samples(self) -> list[float]:
        return list(self._ring)

    def percentiles(self, qs: tuple = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """``{"p50": ..., "p95": ...}`` over the retained window."""
        ordered = sorted(self._ring)
        return {f"p{int(q * 100)}": quantile(ordered, q) for q in qs}


class MetricsRegistry:
    """Counters, gauges, and histograms with labels.

    All mutation paths are O(1) dict operations so instrumented hot
    paths stay cheap; reading/rendering happens only at report time.
    """

    def __init__(self) -> None:
        self.counters: dict[tuple[str, LabelKey], float] = {}
        self.gauges: dict[tuple[str, LabelKey], float] = {}
        self.histograms: dict[tuple[str, LabelKey], HistogramStat] = {}

    # -- instrumentation (hot paths) ----------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to the counter ``name`` under ``labels``."""
        key = (name, label_key(labels))
        self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Record a point-in-time reading (merge keeps the maximum)."""
        self.gauges[(name, label_key(labels))] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Feed one sample into the histogram ``name`` under ``labels``."""
        key = (name, label_key(labels))
        stat = self.histograms.get(key)
        if stat is None:
            stat = self.histograms[key] = HistogramStat()
        stat.observe(value)

    def counter_handle(self, name: str, **labels):
        """Bound incrementer for one fixed counter series.

        Resolves the label key once; the returned ``add(value=1)``
        callable is a plain dict update.  For emission sites hot enough
        that per-call :func:`label_key` construction shows up (e.g. the
        migration mechanisms, whose ``timing()`` the policy also calls
        for planning estimates).
        """
        key = (name, label_key(labels))
        counters = self.counters

        def add(value: float = 1) -> None:
            counters[key] = counters.get(key, 0) + value

        return add

    def histogram_handle(self, name: str, **labels):
        """Bound ``observe(value)`` for one fixed histogram series."""
        key = (name, label_key(labels))
        stat = self.histograms.get(key)
        if stat is None:
            stat = self.histograms[key] = HistogramStat()
        return stat.observe

    # -- reading -------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get((name, label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_data(other.counters, other.gauges, other.histograms)

    def merge_data(
        self,
        counters: dict,
        gauges: dict,
        histograms: dict,
    ) -> None:
        """Merge raw metric dicts (another registry's or an ObsData's)."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in gauges.items():
            prev = self.gauges.get(key)
            self.gauges[key] = value if prev is None else max(prev, value)
        for key, stat in histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = replace(stat)
            else:
                mine.merge(stat)

    def data(self) -> tuple[dict, dict, dict]:
        """Picklable copies of the raw metric dicts."""
        return (
            dict(self.counters),
            dict(self.gauges),
            {key: replace(stat) for key, stat in self.histograms.items()},
        )

    # -- sinks ---------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot with rendered metric names."""
        return {
            "counters": {
                render_key(n, lk): v for (n, lk), v in sorted(self.counters.items())
            },
            "gauges": {
                render_key(n, lk): v for (n, lk), v in sorted(self.gauges.items())
            },
            "histograms": {
                render_key(n, lk): s.as_dict()
                for (n, lk), s in sorted(self.histograms.items())
            },
        }

    def table(self, title: str = "Metrics"):
        """Human-readable table of every series (lazy report import)."""
        from repro.metrics.report import Table

        table = Table(title, ["metric", "kind", "value"])
        for (name, lk), value in sorted(self.counters.items()):
            table.add_row(render_key(name, lk), "counter", f"{value:g}")
        for (name, lk), value in sorted(self.gauges.items()):
            table.add_row(render_key(name, lk), "gauge", f"{value:g}")
        for (name, lk), stat in sorted(self.histograms.items()):
            table.add_row(
                render_key(name, lk),
                "histogram",
                f"n={stat.count} mean={stat.mean:.3g} "
                f"min={stat.as_dict()['min']:.3g} max={stat.as_dict()['max']:.3g}",
            )
        return table

    def write_jsonl(self, path) -> None:
        """One JSON line per series (streaming-friendly sink)."""
        import json

        with open(path, "w") as fh:
            for (name, lk), value in sorted(self.counters.items()):
                fh.write(json.dumps(
                    {"metric": render_key(name, lk), "kind": "counter", "value": value}
                ) + "\n")
            for (name, lk), value in sorted(self.gauges.items()):
                fh.write(json.dumps(
                    {"metric": render_key(name, lk), "kind": "gauge", "value": value}
                ) + "\n")
            for (name, lk), stat in sorted(self.histograms.items()):
                fh.write(json.dumps(
                    {"metric": render_key(name, lk), "kind": "histogram",
                     **stat.as_dict()}
                ) + "\n")


# -- shared counter-container arithmetic --------------------------------------
#
# CacheStats, PerfStats, and any future counter dataclass express their
# merge/delta semantics as field lists and delegate the arithmetic here.

def combine_fields(a, b, sum_fields: tuple, max_fields: tuple = ()):
    """Field-wise combination of two same-type dataclasses.

    ``sum_fields`` add (counters); ``max_fields`` take the maximum
    (point-in-time gauges).  Fields named in neither keep ``a``'s value.
    """
    if type(a) is not type(b):
        raise ConfigError(
            f"cannot combine {type(a).__name__} with {type(b).__name__}"
        )
    kwargs = {f: getattr(a, f) + getattr(b, f) for f in sum_fields}
    kwargs.update({f: max(getattr(a, f), getattr(b, f)) for f in max_fields})
    return replace(a, **kwargs)


def delta_fields(now, before, counter_fields: tuple, gauge_fields: tuple = ()):
    """Counters accumulated since ``before``; gauges keep the current value.

    ``before is None`` means "since zero": the result equals ``now``.
    """
    if before is None:
        return replace(now)
    if type(now) is not type(before):
        raise ConfigError(
            f"cannot delta {type(now).__name__} against {type(before).__name__}"
        )
    kwargs = {f: getattr(now, f) - getattr(before, f) for f in counter_fields}
    kwargs.update({f: getattr(now, f) for f in gauge_fields})
    return replace(now, **kwargs)


def merge_sample_maps(a: dict[str, list], b: dict[str, list]) -> dict[str, list]:
    """Concatenate per-key sample lists (e.g. per-phase duration samples)."""
    merged: dict[str, list] = {}
    for src in (a, b):
        for key, values in src.items():
            merged.setdefault(key, []).extend(values)
    return merged


__all__ = [
    "HistogramStat",
    "LatencyReservoir",
    "MetricsRegistry",
    "combine_fields",
    "delta_fields",
    "label_key",
    "merge_sample_maps",
    "quantile",
    "render_key",
]
