"""Structured event bus.

Every interesting state transition in the stack — interval boundaries,
scans, PEBS batches, region formation, migration lifecycle, injected
faults, snapshot forks, cache hits — is emitted as a typed
:class:`Event` on an :class:`EventBus`.  Events carry *simulated* time
and interval alongside a *host* timestamp (relative to the bus origin),
so a timeline can be reconstructed in either domain.

The bus is deliberately dumb: an append-only bounded buffer plus
optional subscriber callbacks.  Emission is a single list append on the
hot path; everything expensive (rendering, export, aggregation) happens
at report time.  When observability is disabled no bus exists at all —
call sites guard with ``if obs is not None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

# -- typed event names ---------------------------------------------------------
#
# One constant per event kind; emitters use these, never ad-hoc strings,
# so consumers can rely on the vocabulary.

EV_INTERVAL_START = "interval.start"
EV_INTERVAL_END = "interval.end"
EV_SCAN = "profile.scan"
EV_PEBS_BATCH = "profile.pebs_batch"
EV_REGION_SPLIT = "profile.region_split"
EV_REGION_MERGE = "profile.region_merge"
EV_MIG_PLANNED = "migrate.planned"
EV_MIG_ISSUED = "migrate.issued"
EV_MIG_RETRIED = "migrate.retried"
EV_MIG_FAILED = "migrate.failed"
EV_MECH_SYNC_SWITCH = "migrate.sync_switch"
EV_FAULT_INJECTED = "fault.injected"
EV_SNAPSHOT_CAPTURE = "snapshot.capture"
EV_SNAPSHOT_FORK = "snapshot.fork"
EV_CACHE_HIT = "cache.hit"
EV_CACHE_MISS = "cache.miss"

# Sweep-service lifecycle (the scheduler daemon emits these; they stream
# through the same NDJSON plumbing as engine telemetry, so `repro watch`
# and the chaos CI's schema gate see service state transitions for free).
EV_SERVICE_JOB_SUBMITTED = "service.job_submitted"
EV_SERVICE_JOB_DONE = "service.job_done"
EV_SERVICE_JOB_FAILED = "service.job_failed"
EV_SERVICE_LEASE_GRANTED = "service.lease_granted"
EV_SERVICE_LEASE_EXPIRED = "service.lease_expired"
EV_SERVICE_CELL_DONE = "service.cell_done"
EV_SERVICE_CELL_REQUEUED = "service.cell_requeued"
EV_SERVICE_CELL_DEAD_LETTER = "service.cell_dead_letter"
EV_SERVICE_WORKER_JOINED = "service.worker_joined"
EV_SERVICE_WORKER_LOST = "service.worker_lost"
EV_SERVICE_CACHE_HIT = "service.cache_hit"
EV_SERVICE_CACHE_QUARANTINED = "service.cache_quarantined"
EV_SERVICE_DRAIN = "service.drain"

# SLO alert lifecycle (the alert rules engine flips these; firing/resolved
# pairs share the rule name in ``fields["rule"]``).
EV_SERVICE_ALERT_FIRING = "service.alert.firing"
EV_SERVICE_ALERT_RESOLVED = "service.alert.resolved"

#: Every event name the stack emits (tests validate emissions against this).
ALL_EVENTS = frozenset({
    EV_INTERVAL_START, EV_INTERVAL_END, EV_SCAN, EV_PEBS_BATCH,
    EV_REGION_SPLIT, EV_REGION_MERGE, EV_MIG_PLANNED, EV_MIG_ISSUED,
    EV_MIG_RETRIED, EV_MIG_FAILED, EV_MECH_SYNC_SWITCH, EV_FAULT_INJECTED,
    EV_SNAPSHOT_CAPTURE, EV_SNAPSHOT_FORK, EV_CACHE_HIT, EV_CACHE_MISS,
    EV_SERVICE_JOB_SUBMITTED, EV_SERVICE_JOB_DONE, EV_SERVICE_JOB_FAILED,
    EV_SERVICE_LEASE_GRANTED, EV_SERVICE_LEASE_EXPIRED,
    EV_SERVICE_CELL_DONE, EV_SERVICE_CELL_REQUEUED,
    EV_SERVICE_CELL_DEAD_LETTER, EV_SERVICE_WORKER_JOINED,
    EV_SERVICE_WORKER_LOST, EV_SERVICE_CACHE_HIT,
    EV_SERVICE_CACHE_QUARANTINED, EV_SERVICE_DRAIN,
    EV_SERVICE_ALERT_FIRING, EV_SERVICE_ALERT_RESOLVED,
})

#: Default bounded-buffer size; beyond it events are counted but dropped.
DEFAULT_MAX_EVENTS = 200_000


@dataclass
class Event:
    """One structured occurrence.

    Attributes:
        name: one of the ``EV_*`` constants.
        ts: host seconds since the owning bus was created.
        sim_time: simulated clock at emission (0.0 when not applicable).
        interval: simulation interval index (-1 when not applicable).
        fields: event-specific payload (small, JSON-serialisable values).
    """

    name: str
    ts: float
    sim_time: float
    interval: int
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "sim_time": self.sim_time,
            "interval": self.interval,
            **self.fields,
        }


class EventBus:
    """Append-only bounded event buffer with optional subscribers."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = max_events
        self.events: list[Event] = []
        self.dropped = 0
        self._origin = perf_counter()
        self._subscribers: list = []

    def emit(self, name: str, sim_time: float = 0.0, interval: int = -1,
             **fields) -> None:
        """Record one event (drops, counting, once the buffer is full).

        Subscribers (e.g. a streaming publisher) are still notified of
        events the bounded *buffer* drops — the stream has its own
        bound — but the no-subscriber overflow path stays a bare
        counter increment.
        """
        if len(self.events) >= self.max_events:
            self.dropped += 1
            if not self._subscribers:
                return
            event = Event(name, perf_counter() - self._origin, sim_time,
                          interval, fields)
            for callback in self._subscribers:
                callback(event)
            return
        event = Event(name, perf_counter() - self._origin, sim_time,
                      interval, fields)
        self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    def subscribe(self, callback) -> None:
        """Invoke ``callback(event)`` on every subsequent emission."""
        self._subscribers.append(callback)

    def counts(self) -> dict[str, int]:
        """Number of buffered events per event name."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)


__all__ = [
    "ALL_EVENTS", "DEFAULT_MAX_EVENTS", "Event", "EventBus",
    "EV_CACHE_HIT", "EV_CACHE_MISS", "EV_FAULT_INJECTED",
    "EV_INTERVAL_END", "EV_INTERVAL_START", "EV_MECH_SYNC_SWITCH",
    "EV_MIG_FAILED", "EV_MIG_ISSUED", "EV_MIG_PLANNED", "EV_MIG_RETRIED",
    "EV_PEBS_BATCH", "EV_REGION_MERGE", "EV_REGION_SPLIT", "EV_SCAN",
    "EV_SERVICE_ALERT_FIRING", "EV_SERVICE_ALERT_RESOLVED",
    "EV_SERVICE_CACHE_HIT", "EV_SERVICE_CACHE_QUARANTINED",
    "EV_SERVICE_CELL_DEAD_LETTER", "EV_SERVICE_CELL_DONE",
    "EV_SERVICE_CELL_REQUEUED", "EV_SERVICE_DRAIN",
    "EV_SERVICE_JOB_DONE", "EV_SERVICE_JOB_FAILED",
    "EV_SERVICE_JOB_SUBMITTED", "EV_SERVICE_LEASE_EXPIRED",
    "EV_SERVICE_LEASE_GRANTED", "EV_SERVICE_WORKER_JOINED",
    "EV_SERVICE_WORKER_LOST",
    "EV_SNAPSHOT_CAPTURE", "EV_SNAPSHOT_FORK",
]
