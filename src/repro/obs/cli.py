"""Query CLIs over an exported observability directory.

``python -m repro trace --run DIR --page N`` prints the migration
provenance history of the region(s) covering a page — every lifecycle
transition with interval, tiers, policy reason, score, attempt — plus
the plan→commit queue latency.  ``python -m repro report --obs --run
DIR`` prints the merged metrics table and event counts of a run.

Both commands work purely from the files ``--obs-out`` wrote
(``provenance.jsonl``, ``metrics.json``, ``events.jsonl``); no live
simulation state is needed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.metrics.report import Table
from repro.obs.provenance import STAGE_COMMITTED, ProvenanceLog


def _load_provenance(run_dir: Path) -> ProvenanceLog:
    path = run_dir / "provenance.jsonl"
    if not path.exists():
        raise ConfigError(
            f"no provenance log at {path} — was the run made with --obs?"
        )
    return ProvenanceLog.read_jsonl(path)


def trace_report(run_dir, page: int | None = None, limit: int = 50) -> str:
    """Human-readable provenance answer for one run directory."""
    run_dir = Path(run_dir)
    log = _load_provenance(run_dir)
    lines: list[str] = []
    if page is None:
        table = Table(f"Migration provenance summary ({run_dir})",
                      ["stage", "records"])
        for stage, count in sorted(log.stage_counts().items()):
            table.add_row(stage, count)
        lines.append(table.render())
        starts = log.region_starts()
        lines.append(f"{len(log)} records across {len(starts)} regions; "
                     f"query one with --page <page> "
                     f"(e.g. --page {starts[0]})" if starts
                     else f"{len(log)} records, no regions")
        return "\n".join(lines)

    history = log.for_page(page)
    table = Table(f"Migration history for page {page} ({run_dir})",
                  ["interval", "stage", "region", "pages", "src->dst",
                   "reason", "score", "attempt"])
    for r in history[:limit]:
        table.add_row(r.interval, r.stage, r.page_start, r.npages,
                      f"{r.src_node}->{r.dst_node}", r.reason or "-",
                      f"{r.score:.3g}", r.attempt)
    lines.append(table.render())
    if len(history) > limit:
        lines.append(f"... {len(history) - limit} more records (raise --limit)")
    if not history:
        lines.append("no migration provenance covers this page")
    else:
        latency = log.queue_latency(page)
        commits = sum(1 for r in history if r.stage == STAGE_COMMITTED)
        if latency is not None:
            lines.append(f"{commits} commit(s); first plan->commit queue "
                         f"latency: {latency} interval(s)")
        else:
            lines.append("planned but never committed")
    return "\n".join(lines)


def obs_report(run_dir) -> str:
    """Metrics + event-count report for one run directory."""
    run_dir = Path(run_dir)
    path = run_dir / "metrics.json"
    if not path.exists():
        raise ConfigError(
            f"no metrics at {path} — was the run made with --obs?"
        )
    with open(path) as fh:
        data = json.load(fh)
    lines: list[str] = []

    counts = data.get("event_counts", {})
    table = Table(f"Events ({data.get('label') or run_dir})",
                  ["event", "count"])
    for name, count in sorted(counts.items()):
        table.add_row(name, count)
    lines.append(table.render())
    if data.get("dropped_events"):
        lines.append(f"dropped events: {data['dropped_events']}")

    table = Table("Metrics", ["metric", "kind", "value"])
    for name, value in sorted(data.get("counters", {}).items()):
        table.add_row(name, "counter", f"{value:g}")
    for name, value in sorted(data.get("gauges", {}).items()):
        table.add_row(name, "gauge", f"{value:g}")
    for name, stat in sorted(data.get("histograms", {}).items()):
        table.add_row(
            name, "histogram",
            f"n={stat['count']} mean={stat['mean']:.3g} "
            f"min={stat['min']:.3g} max={stat['max']:.3g}",
        )
    lines.append(table.render())
    return "\n".join(lines)


__all__ = ["obs_report", "trace_report"]
