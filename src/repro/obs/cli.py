"""Query CLIs over an exported observability directory.

``python -m repro trace --run DIR --page N`` prints the migration
provenance history of the region(s) covering a page — every lifecycle
transition with interval, tiers, policy reason, score, attempt — plus
the plan→commit queue latency.  ``python -m repro report --obs --run
DIR`` prints the merged metrics table and event counts of a run.

Both commands work purely from the files ``--obs-out`` wrote
(``provenance.jsonl``, ``metrics.json``, ``events.jsonl``); no live
simulation state is needed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.metrics.report import Table
from repro.obs.provenance import STAGE_COMMITTED, ProvenanceLog


def _load_provenance(run_dir: Path) -> ProvenanceLog:
    from repro.obs.analytics import find_artifact

    path = find_artifact(run_dir, "provenance.jsonl")
    if path is None:
        raise ConfigError(
            f"no provenance log under {run_dir} — was the run made "
            f"with --obs?"
        )
    return ProvenanceLog.read_jsonl(path)


def trace_report(run_dir, page: int | None = None, limit: int = 50) -> str:
    """Human-readable provenance answer for one run directory."""
    run_dir = Path(run_dir)
    log = _load_provenance(run_dir)
    lines: list[str] = []
    if page is None:
        table = Table(f"Migration provenance summary ({run_dir})",
                      ["stage", "records"])
        for stage, count in sorted(log.stage_counts().items()):
            table.add_row(stage, count)
        lines.append(table.render())
        starts = log.region_starts()
        lines.append(f"{len(log)} records across {len(starts)} regions; "
                     f"query one with --page <page> "
                     f"(e.g. --page {starts[0]})" if starts
                     else f"{len(log)} records, no regions")
        return "\n".join(lines)

    history = log.for_page(page)
    table = Table(f"Migration history for page {page} ({run_dir})",
                  ["interval", "stage", "region", "pages", "src->dst",
                   "reason", "score", "attempt"])
    for r in history[:limit]:
        table.add_row(r.interval, r.stage, r.page_start, r.npages,
                      f"{r.src_node}->{r.dst_node}", r.reason or "-",
                      f"{r.score:.3g}", r.attempt)
    lines.append(table.render())
    if len(history) > limit:
        lines.append(f"... {len(history) - limit} more records (raise --limit)")
    if not history:
        lines.append("no migration provenance covers this page")
    else:
        latencies = log.queue_latencies(page)
        commits = sum(1 for r in history if r.stage == STAGE_COMMITTED)
        if latencies:
            rendered = ", ".join(str(v) for v in latencies[:8])
            if len(latencies) > 8:
                rendered += f", ... ({len(latencies)} total)"
            mean = sum(latencies) / len(latencies)
            lines.append(f"{commits} commit(s); plan->commit queue "
                         f"latencies: {rendered} interval(s) "
                         f"(mean {mean:.2f})")
        else:
            lines.append("planned but never committed")
    return "\n".join(lines)


def trace_follow(run_dir, page: int | None = None, timeout: float | None = None,
                 poll: float = 0.2, limit: int | None = None,
                 out=print) -> int:
    """Tail the provenance stream of a still-running ``--obs-stream`` run.

    Reads the NDJSON stream sink (``stream.ndjson``) rather than the
    final export, so it works while the simulation is live and tolerates
    a truncated final line.  Stops at the stream's ``end`` record, after
    ``timeout`` seconds without new data, or after ``limit`` printed
    records.  Returns the number of provenance records printed.
    """
    from repro.obs.stream import iter_ndjson

    run_dir = Path(run_dir)
    path = run_dir / "stream.ndjson" if run_dir.is_dir() else run_dir
    printed = 0
    for record in iter_ndjson(path, follow=True, poll_interval=poll,
                              timeout=timeout):
        if not isinstance(record, dict) or record.get("type") != "provenance":
            continue
        if page is not None:
            start = record.get("page_start", 0)
            if not (start <= page < start + record.get("npages", 0)):
                continue
        out(f"[{record.get('interval', -1):>5}] {record.get('stage', '?'):<16} "
            f"region {record.get('page_start')}+{record.get('npages')} "
            f"{record.get('src_node')}->{record.get('dst_node')} "
            f"reason={record.get('reason') or '-'} "
            f"score={record.get('score', 0.0):.3g} "
            f"attempt={record.get('attempt', 0)}")
        printed += 1
        if limit is not None and printed >= limit:
            break
    return printed


def trace_job_report(path) -> str:
    """Summarize a stitched per-job fleet trace (``repro trace --job``).

    ``path`` may be the ``trace.json`` itself, a job directory holding
    one, or a ``traces/`` root (in which case the finished jobs are
    listed).  The trace is re-validated on every read: a stitched trace
    that stops loading in Perfetto should fail *here* first.
    """
    from repro.obs.export import validate_chrome_trace

    path = Path(path)
    if path.is_dir() and not (path / "trace.json").exists():
        jobs = sorted(p.parent.name for p in path.glob("*/trace.json"))
        if not jobs:
            raise ConfigError(
                f"no trace.json under {path} — was the scheduler run "
                f"with --trace?"
            )
        lines = [f"{len(jobs)} stitched job trace(s) under {path}:"]
        lines += [f"  {job}" for job in jobs]
        lines.append("query one with --job " + str(path / jobs[0]))
        return "\n".join(lines)
    if path.is_dir():
        path = path / "trace.json"
    if not path.exists():
        raise ConfigError(
            f"no stitched trace at {path} — was the scheduler run "
            f"with --trace?"
        )
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    events = trace.get("traceEvents", [])
    meta = trace.get("otherData", {})
    problems = validate_chrome_trace(trace)

    tracks: dict[int, str] = {}
    spans: dict[int, int] = {}
    instants: dict[int, int] = {}
    end_us = 0.0
    for ev in events:
        pid = ev.get("pid", 0)
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            tracks[pid] = ev.get("args", {}).get("name", f"pid {pid}")
        elif ph == "X":
            spans[pid] = spans.get(pid, 0) + 1
            end_us = max(end_us, ev.get("ts", 0) + ev.get("dur", 0))
        elif ph == "i":
            instants[pid] = instants.get(pid, 0) + 1

    lines = [
        f"job {meta.get('job_id', '?')} — trace {meta.get('trace_id', '?')} "
        f"({meta.get('state', '?')}, {end_us / 1e6:.3f}s, "
        f"{len(events)} events)"
    ]
    table = Table(f"Tracks ({path})", ["pid", "track", "spans", "instants"])
    for pid in sorted(set(tracks) | set(spans) | set(instants)):
        table.add_row(pid, tracks.get(pid, "?"), spans.get(pid, 0),
                      instants.get(pid, 0))
    lines.append(table.render())
    if problems:
        lines.append(f"INVALID: {len(problems)} validator problem(s), "
                     f"first: {problems[0]}")
    else:
        lines.append("trace validates clean (Chrome/Perfetto loadable); "
                     "open in ui.perfetto.dev")
    return "\n".join(lines)


def service_report(state_dir) -> str:
    """Fleet report for a scheduler state directory.

    Folds the ``service.*`` stream (when the daemon ran with
    ``--obs-stream``) through the fleet aggregate and appends the
    journal's alert history — the post-hoc twin of ``repro fleet``.
    """
    from repro.obs.stream import iter_ndjson
    from repro.obs.watch import FleetAggregate, render_fleet_text
    from repro.service.journal import JOURNAL_NAME, Journal

    state_dir = Path(state_dir)
    lines: list[str] = []
    stream = state_dir / "stream.ndjson"
    if stream.exists():
        agg = FleetAggregate()
        for record in iter_ndjson(stream):
            agg.feed(record)
        lines.append(render_fleet_text(agg))
    if (state_dir / JOURNAL_NAME).exists():
        journal = Journal(state_dir)
        alerts = journal.alerts()
        table = Table(f"Alert history ({state_dir})",
                      ["#", "state", "rule", "metric", "value", "threshold"])
        for i, entry in enumerate(alerts):
            table.add_row(i, entry.get("state", "?"), entry.get("rule", "?"),
                          entry.get("metric", "?"),
                          f"{entry.get('value', 0):g}",
                          f"{entry.get('threshold', 0):g}")
        lines.append(table.render())
        if not alerts:
            lines.append("no alert transitions journaled")
    if not lines:
        raise ConfigError(
            f"{state_dir} has neither a stream.ndjson nor a journal — "
            f"not a scheduler state directory?"
        )
    return "\n".join(lines)


def _pingpong_summary(run_dir: Path) -> dict | None:
    """Ping-pong report from an already-ingested analytics store.

    Only folds when ``analytics.npz`` exists — ``repro report`` must
    stay read-only; building the store is ``repro query``'s job.
    """
    from repro.obs.analytics import ping_pong
    from repro.obs.store import STORE_NAME, Store

    store_path = run_dir / STORE_NAME
    if not store_path.exists():
        return None
    try:
        with Store(store_path) as store:
            return ping_pong(store)
    except ConfigError:
        return None


def obs_report(run_dir, as_json: bool = False):
    """Metrics + event-count report for one run directory.

    Service state directories (a journal but no ``metrics.json``) route
    to :func:`service_report` so ``repro report --run STATE_DIR`` folds
    the fleet counters and alert history instead of erroring.  With
    ``as_json`` the same content returns as a machine-readable dict
    (scriptable ``repro report --json``); when the directory holds an
    analytics store, the ping-pong summary is folded into both forms.
    """
    from repro.service.journal import JOURNAL_NAME

    run_dir = Path(run_dir)
    path = run_dir / "metrics.json"
    if not path.exists() and (run_dir / JOURNAL_NAME).exists():
        if as_json:
            from repro.service.journal import Journal

            journal = Journal(run_dir)
            return {"kind": "service", "run": str(run_dir),
                    "records": journal.lines(),
                    "alerts": journal.alerts()}
        return service_report(run_dir)
    if not path.exists():
        raise ConfigError(
            f"no metrics at {path} — was the run made with --obs?"
        )
    with open(path) as fh:
        data = json.load(fh)
    pingpong = _pingpong_summary(run_dir)
    if as_json:
        out = {"kind": "run", "run": str(run_dir), **data}
        if pingpong is not None:
            out["pingpong"] = pingpong
        return out
    lines: list[str] = []

    counts = data.get("event_counts", {})
    table = Table(f"Events ({data.get('label') or run_dir})",
                  ["event", "count"])
    for name, count in sorted(counts.items()):
        table.add_row(name, count)
    lines.append(table.render())
    if data.get("dropped_events"):
        lines.append(f"dropped events: {data['dropped_events']}")

    table = Table("Metrics", ["metric", "kind", "value"])
    for name, value in sorted(data.get("counters", {}).items()):
        table.add_row(name, "counter", f"{value:g}")
    for name, value in sorted(data.get("gauges", {}).items()):
        table.add_row(name, "gauge", f"{value:g}")
    for name, stat in sorted(data.get("histograms", {}).items()):
        table.add_row(
            name, "histogram",
            f"n={stat['count']} mean={stat['mean']:.3g} "
            f"min={stat['min']:.3g} max={stat['max']:.3g}",
        )
    lines.append(table.render())
    if pingpong is not None:
        params = pingpong["params"]
        lines.append(
            f"ping-pong: {pingpong['page_count']} page(s) with >= "
            f"{params['min_round_trips']} round trips within "
            f"{params['window']} intervals, "
            f"{len(pingpong['deny_ranges'])} deny range(s) "
            f"(full report: `repro query --run {run_dir} "
            f"--analysis ping-pong`)"
        )
    return "\n".join(lines)


__all__ = ["obs_report", "service_report", "trace_follow",
           "trace_job_report", "trace_report"]
