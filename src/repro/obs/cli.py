"""Query CLIs over an exported observability directory.

``python -m repro trace --run DIR --page N`` prints the migration
provenance history of the region(s) covering a page — every lifecycle
transition with interval, tiers, policy reason, score, attempt — plus
the plan→commit queue latency.  ``python -m repro report --obs --run
DIR`` prints the merged metrics table and event counts of a run.

Both commands work purely from the files ``--obs-out`` wrote
(``provenance.jsonl``, ``metrics.json``, ``events.jsonl``); no live
simulation state is needed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.metrics.report import Table
from repro.obs.provenance import STAGE_COMMITTED, ProvenanceLog


def _load_provenance(run_dir: Path) -> ProvenanceLog:
    path = run_dir / "provenance.jsonl"
    if not path.exists():
        raise ConfigError(
            f"no provenance log at {path} — was the run made with --obs?"
        )
    return ProvenanceLog.read_jsonl(path)


def trace_report(run_dir, page: int | None = None, limit: int = 50) -> str:
    """Human-readable provenance answer for one run directory."""
    run_dir = Path(run_dir)
    log = _load_provenance(run_dir)
    lines: list[str] = []
    if page is None:
        table = Table(f"Migration provenance summary ({run_dir})",
                      ["stage", "records"])
        for stage, count in sorted(log.stage_counts().items()):
            table.add_row(stage, count)
        lines.append(table.render())
        starts = log.region_starts()
        lines.append(f"{len(log)} records across {len(starts)} regions; "
                     f"query one with --page <page> "
                     f"(e.g. --page {starts[0]})" if starts
                     else f"{len(log)} records, no regions")
        return "\n".join(lines)

    history = log.for_page(page)
    table = Table(f"Migration history for page {page} ({run_dir})",
                  ["interval", "stage", "region", "pages", "src->dst",
                   "reason", "score", "attempt"])
    for r in history[:limit]:
        table.add_row(r.interval, r.stage, r.page_start, r.npages,
                      f"{r.src_node}->{r.dst_node}", r.reason or "-",
                      f"{r.score:.3g}", r.attempt)
    lines.append(table.render())
    if len(history) > limit:
        lines.append(f"... {len(history) - limit} more records (raise --limit)")
    if not history:
        lines.append("no migration provenance covers this page")
    else:
        latency = log.queue_latency(page)
        commits = sum(1 for r in history if r.stage == STAGE_COMMITTED)
        if latency is not None:
            lines.append(f"{commits} commit(s); first plan->commit queue "
                         f"latency: {latency} interval(s)")
        else:
            lines.append("planned but never committed")
    return "\n".join(lines)


def trace_follow(run_dir, page: int | None = None, timeout: float | None = None,
                 poll: float = 0.2, limit: int | None = None,
                 out=print) -> int:
    """Tail the provenance stream of a still-running ``--obs-stream`` run.

    Reads the NDJSON stream sink (``stream.ndjson``) rather than the
    final export, so it works while the simulation is live and tolerates
    a truncated final line.  Stops at the stream's ``end`` record, after
    ``timeout`` seconds without new data, or after ``limit`` printed
    records.  Returns the number of provenance records printed.
    """
    from repro.obs.stream import iter_ndjson

    run_dir = Path(run_dir)
    path = run_dir / "stream.ndjson" if run_dir.is_dir() else run_dir
    printed = 0
    for record in iter_ndjson(path, follow=True, poll_interval=poll,
                              timeout=timeout):
        if not isinstance(record, dict) or record.get("type") != "provenance":
            continue
        if page is not None:
            start = record.get("page_start", 0)
            if not (start <= page < start + record.get("npages", 0)):
                continue
        out(f"[{record.get('interval', -1):>5}] {record.get('stage', '?'):<16} "
            f"region {record.get('page_start')}+{record.get('npages')} "
            f"{record.get('src_node')}->{record.get('dst_node')} "
            f"reason={record.get('reason') or '-'} "
            f"score={record.get('score', 0.0):.3g} "
            f"attempt={record.get('attempt', 0)}")
        printed += 1
        if limit is not None and printed >= limit:
            break
    return printed


def obs_report(run_dir) -> str:
    """Metrics + event-count report for one run directory."""
    run_dir = Path(run_dir)
    path = run_dir / "metrics.json"
    if not path.exists():
        raise ConfigError(
            f"no metrics at {path} — was the run made with --obs?"
        )
    with open(path) as fh:
        data = json.load(fh)
    lines: list[str] = []

    counts = data.get("event_counts", {})
    table = Table(f"Events ({data.get('label') or run_dir})",
                  ["event", "count"])
    for name, count in sorted(counts.items()):
        table.add_row(name, count)
    lines.append(table.render())
    if data.get("dropped_events"):
        lines.append(f"dropped events: {data['dropped_events']}")

    table = Table("Metrics", ["metric", "kind", "value"])
    for name, value in sorted(data.get("counters", {}).items()):
        table.add_row(name, "counter", f"{value:g}")
    for name, value in sorted(data.get("gauges", {}).items()):
        table.add_row(name, "gauge", f"{value:g}")
    for name, stat in sorted(data.get("histograms", {}).items()):
        table.add_row(
            name, "histogram",
            f"n={stat['count']} mean={stat['mean']:.3g} "
            f"min={stat['min']:.3g} max={stat['max']:.3g}",
        )
    lines.append(table.render())
    return "\n".join(lines)


__all__ = ["obs_report", "trace_follow", "trace_report"]
