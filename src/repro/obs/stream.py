"""Incremental telemetry stream: NDJSON record schema + publisher.

The obs plane of PR 4 buffers everything and exports once at the end.
This module makes the same telemetry *streamable while the run is live*:
a :class:`StreamPublisher` rides on an :class:`~repro.obs.context.ObsContext`
and, on every ``stream_flush()`` (the engine calls it at interval
boundaries), encodes what is *new since the last flush* — events, span
completions, metric deltas, provenance records — as one NDJSON record
per line and hands the batch to the attached sinks
(:mod:`repro.obs.sinks`).

Record schema (``v`` = :data:`STREAM_SCHEMA_VERSION`), one JSON object
per line, discriminated by ``type``:

=============  =============================================================
``meta``       ``{type, v, track, pid}`` — first record of every track.
``event``      ``{type, track, name, ts, sim_time, interval, **fields}``
               (``name`` is one of the closed ``EV_*`` vocabulary).
``span``       ``{type, track, name, cat, ts, dur, depth, args}``
``metric``     ``{type, track, kind, name, labels}`` plus ``delta`` for
               counters (increment since last flush), ``value`` for
               gauges (current reading), and cumulative
               ``count/total/min/max`` for histograms.
``provenance`` ``{type, track, interval, stage, page_start, npages,
               src_node, dst_node, reason, score, attempt, detail}``
``end``        ``{type, track}`` — written exactly once, by the
               *top-level* publisher's close; per-cell publishers in a
               matrix close without it, so tail readers stop at the real
               end of the stream.
=============  =============================================================

Counters stream as deltas so a reader can sum them without knowing flush
boundaries; gauges stream as the current value; histograms stream their
cumulative summary (idempotent for a late-joining reader).

:func:`iter_ndjson` is the matching reader: it tolerates a truncated
final line (a crash mid-``writelines`` loses at most that line — the
partial tail is buffered until the newline arrives, or forever if it
never does), skips unparseable complete lines, and in ``follow`` mode
tails a still-growing file until an ``end`` record, a quiet-period
timeout, or — since the writer may have been SIGKILLed before writing
its ``end`` record — until every pid announced in a ``meta`` record has
exited and a grace period passes (the *dead-writer escape*).
"""

from __future__ import annotations

import json
import os

from repro.obs.events import ALL_EVENTS, Event

#: Bump when a record shape changes; readers check ``meta.v``.
STREAM_SCHEMA_VERSION = 1

#: Closed set of record discriminators.
RECORD_TYPES = frozenset({
    "meta", "event", "span", "metric", "provenance", "end",
})

#: Metric record kinds.
METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})

#: Cap on events held between flushes; beyond it events are counted and
#: dropped from the *stream* (the bus buffer is bounded separately).
DEFAULT_MAX_PENDING = 50_000

#: Default dead-writer escape window of :func:`iter_ndjson` (seconds).
DEFAULT_DEAD_WRITER_GRACE = 2.0

#: Environment override for the dead-writer grace: a float, or one of
#: ``none``/``off``/``disabled`` to turn the liveness probe off.
DEAD_WRITER_GRACE_ENV = "REPRO_STREAM_DEAD_GRACE"

#: Sentinel distinguishing "caller passed nothing" from an explicit None.
_GRACE_UNSET = object()


def resolve_dead_writer_grace(value=_GRACE_UNSET) -> float | None:
    """The dead-writer grace to use: explicit kwarg > env > default.

    An explicit ``None`` (or env ``none``/``off``/``disabled``) disables
    the liveness probe entirely; a malformed env value falls back to the
    default rather than killing a tail that was working yesterday.
    """
    if value is not _GRACE_UNSET:
        return value
    raw = os.environ.get(DEAD_WRITER_GRACE_ENV)
    if raw is None:
        return DEFAULT_DEAD_WRITER_GRACE
    lowered = raw.strip().lower()
    if lowered in ("none", "off", "disabled", "disable"):
        return None
    try:
        return float(lowered)
    except ValueError:
        return DEFAULT_DEAD_WRITER_GRACE

_PROVENANCE_FIELDS = (
    "interval", "stage", "page_start", "npages", "src_node", "dst_node",
    "reason", "score", "attempt", "detail",
)


def open_text(path, mode: str = "r"):
    """Open a text file, transparently gzipped when the name ends ``.gz``.

    The single chokepoint for JSONL artifact IO: readers and writers
    (``iter_ndjson``, :class:`~repro.obs.provenance.ProvenanceLog`, the
    analytics ingest) route through it, so large artifact directories
    can compress at rest without any caller knowing the difference.
    """
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


#: Shared compact encoder: skipping the per-call circular-reference memo
#: measurably cheapens the per-interval hot path (records are flat).
_ENCODE = json.JSONEncoder(
    ensure_ascii=False, check_circular=False, separators=(",", ":")
).encode


def encode_record(record: dict) -> str:
    """One compact NDJSON line (including the trailing newline)."""
    return _ENCODE(record) + "\n"


def validate_stream_record(record) -> list[str]:
    """Schema check for one decoded record; returns a list of problems."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    rtype = record.get("type")
    if rtype not in RECORD_TYPES:
        return [f"unknown record type {rtype!r}"]
    if "track" not in record or not isinstance(record["track"], str):
        errors.append(f"{rtype}: missing/non-string track")
    if rtype == "meta":
        if record.get("v") != STREAM_SCHEMA_VERSION:
            errors.append(f"meta: schema version {record.get('v')!r} "
                          f"!= {STREAM_SCHEMA_VERSION}")
        if not isinstance(record.get("pid"), int):
            errors.append("meta: missing/non-int pid")
        pids = record.get("pids")
        if pids is not None and (
            not isinstance(pids, list)
            or any(not isinstance(p, int) for p in pids)
        ):
            errors.append("meta: pids must be a list of ints")
    elif rtype == "event":
        if record.get("name") not in ALL_EVENTS:
            errors.append(f"event: name {record.get('name')!r} not in "
                          "the EV_* vocabulary")
        for key in ("ts", "sim_time"):
            if not isinstance(record.get(key), (int, float)):
                errors.append(f"event: missing/non-numeric {key}")
        if not isinstance(record.get("interval"), int):
            errors.append("event: missing/non-int interval")
    elif rtype == "span":
        if not isinstance(record.get("name"), str):
            errors.append("span: missing/non-string name")
        for key in ("ts", "dur"):
            if not isinstance(record.get(key), (int, float)):
                errors.append(f"span: missing/non-numeric {key}")
        if not isinstance(record.get("depth"), int):
            errors.append("span: missing/non-int depth")
    elif rtype == "metric":
        kind = record.get("kind")
        if kind not in METRIC_KINDS:
            errors.append(f"metric: unknown kind {kind!r}")
        if not isinstance(record.get("name"), str):
            errors.append("metric: missing/non-string name")
        labels = record.get("labels")
        if not isinstance(labels, list) or any(
            not (isinstance(p, list) and len(p) == 2) for p in labels or ()
        ):
            errors.append("metric: labels must be a list of [key, value] pairs")
        if kind == "counter" and not isinstance(
            record.get("delta"), (int, float)
        ):
            errors.append("metric: counter needs numeric delta")
        elif kind == "gauge" and not isinstance(
            record.get("value"), (int, float)
        ):
            errors.append("metric: gauge needs numeric value")
        elif kind == "histogram":
            for key in ("count", "total", "min", "max"):
                if not isinstance(record.get(key), (int, float)):
                    errors.append(f"metric: histogram needs numeric {key}")
    elif rtype == "provenance":
        for key in ("interval", "stage", "page_start", "npages",
                    "src_node", "dst_node"):
            if key not in record:
                errors.append(f"provenance: missing {key}")
    return errors


class StreamPublisher:
    """Incremental encoder from one ObsContext onto its sinks.

    Keeps cursors into the context's span/provenance lists and baseline
    snapshots of its metric series; each :meth:`flush` encodes only what
    changed since the previous flush.  Events are captured via a bus
    subscription into a bounded pending list, so the stream sees events
    even after the bus buffer itself fills up.
    """

    def __init__(self, ctx, max_pending: int = DEFAULT_MAX_PENDING) -> None:
        self.ctx = ctx
        self.max_pending = max_pending
        #: ``(sink, owned)`` pairs; only owned sinks are closed/counted here.
        self.sinks: list[tuple[object, bool]] = []
        #: events dropped from the stream because pending was full
        self.dropped = 0
        self._pending_events: list[Event] = []
        self._span_cursor = 0
        self._prov_cursor = 0
        self._counter_base: dict = {}
        self._gauge_last: dict = {}
        self._hist_count: dict = {}
        self._meta_sent = False
        self._flush_calls = 0
        self._closed = False
        if ctx.config.events:
            ctx.bus.subscribe(self._on_event)

    # -- wiring ---------------------------------------------------------------

    def add_sink(self, sink, owned: bool = True) -> None:
        self.sinks.append((sink, owned))

    def owned_sink_dropped(self) -> int:
        """Lines dropped by sinks this publisher owns (relay backpressure)."""
        return sum(s.dropped for s, owned in self.sinks if owned)

    def rebase(self) -> None:
        """Advance baselines over the context's current state.

        Called by a collector after ``absorb()``: the absorbed child data
        already streamed from the child's own publisher (shared sinks or
        relay), so the collector must not re-encode it as its own deltas.
        """
        registry = self.ctx.registry
        self._counter_base = dict(registry.counters)
        for key, stat in registry.histograms.items():
            self._hist_count[key] = stat.count
        for key, value in registry.gauges.items():
            self._gauge_last[key] = value
        self._prov_cursor = len(self.ctx.provenance.records)

    def _on_event(self, event: Event) -> None:
        if len(self._pending_events) >= self.max_pending:
            self.dropped += 1
            return
        self._pending_events.append(event)

    # -- encoding -------------------------------------------------------------

    def _encode_new(self) -> list[str]:
        track = self.ctx.label
        lines: list[str] = []
        if not self._meta_sent:
            lines.append(encode_record({
                "type": "meta", "v": STREAM_SCHEMA_VERSION,
                "track": track, "pid": os.getpid(),
            }))
            self._meta_sent = True
        if self._pending_events:
            for event in self._pending_events:
                lines.append(encode_record({
                    "type": "event", "track": track, **event.as_dict(),
                }))
            self._pending_events.clear()
        spans = self.ctx.tracer.spans
        if self._span_cursor < len(spans):
            for span in spans[self._span_cursor:]:
                lines.append(encode_record({
                    "type": "span", "track": track, "name": span.name,
                    "cat": span.cat, "ts": span.ts, "dur": span.dur,
                    "depth": span.depth, "args": span.args,
                }))
            self._span_cursor = len(spans)
        records = self.ctx.provenance.records
        if self._prov_cursor < len(records):
            for rec in records[self._prov_cursor:]:
                lines.append(encode_record({
                    "type": "provenance", "track": track,
                    **{f: getattr(rec, f) for f in _PROVENANCE_FIELDS},
                }))
            self._prov_cursor = len(records)
        registry = self.ctx.registry
        for key, value in registry.counters.items():
            delta = value - self._counter_base.get(key, 0)
            if delta:
                name, labels = key
                lines.append(encode_record({
                    "type": "metric", "track": track, "kind": "counter",
                    "name": name, "labels": [list(p) for p in labels],
                    "delta": delta,
                }))
                self._counter_base[key] = value
        for key, value in registry.gauges.items():
            if self._gauge_last.get(key) != value:
                name, labels = key
                lines.append(encode_record({
                    "type": "metric", "track": track, "kind": "gauge",
                    "name": name, "labels": [list(p) for p in labels],
                    "value": value,
                }))
                self._gauge_last[key] = value
        for key, stat in registry.histograms.items():
            if self._hist_count.get(key) != stat.count:
                name, labels = key
                lines.append(encode_record({
                    "type": "metric", "track": track, "kind": "histogram",
                    "name": name, "labels": [list(p) for p in labels],
                    "count": stat.count, "total": stat.total,
                    "min": stat.minimum if stat.count else 0.0,
                    "max": stat.maximum if stat.count else 0.0,
                }))
                self._hist_count[key] = stat.count
        return lines

    # -- flushing -------------------------------------------------------------

    def flush(self, force: bool = False) -> int:
        """Encode-and-write everything new; returns lines written.

        Honors ``config.stream_flush_every``: only every Nth non-forced
        call actually writes, so high-frequency intervals can batch.
        """
        if self._closed or not self.sinks:
            return 0
        self._flush_calls += 1
        every = getattr(self.ctx.config, "stream_flush_every", 1)
        if not force and every > 1 and self._flush_calls % every:
            return 0
        lines = self._encode_new()
        if lines:
            self.write_raw(lines)
        return len(lines)

    def write_raw(self, lines: list[str]) -> None:
        """Forward already-encoded lines (own flush, or a worker relay)."""
        for sink, _ in self.sinks:
            sink.write_lines(lines)
        for sink, _ in self.sinks:
            sink.flush()

    def close(self, end_record: bool = True) -> None:
        """Final flush, optional ``end`` marker, close owned sinks."""
        if self._closed:
            return
        lines = self._encode_new()
        if end_record:
            lines.append(encode_record({
                "type": "end", "track": self.ctx.label,
            }))
        if lines:
            self.write_raw(lines)
        for sink, owned in self.sinks:
            if owned:
                sink.close()
        self._closed = True

    def abort(self) -> None:
        """Failure-path close: no ``end`` record, and no first write.

        If the stream already carried data, the pending tail is still
        flushed (crash diagnostics); if nothing was ever written, the
        sinks close untouched so a lazily-created ``--obs-out`` dir is
        never materialised by the failure itself.
        """
        if self._closed:
            return
        if self._meta_sent:
            lines = self._encode_new()
            if lines:
                self.write_raw(lines)
        for sink, owned in self.sinks:
            if owned:
                sink.close()
        self._closed = True


def _pid_alive(pid: int) -> bool:
    """True if ``pid`` exists (signal-0 probe; EPERM still means alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def iter_ndjson(path, follow: bool = False, poll_interval: float = 0.1,
                timeout: float | None = None,
                dead_writer_grace=_GRACE_UNSET):
    """Yield decoded records from an NDJSON stream file.

    Tolerant of a truncated final line: only complete (newline-terminated)
    lines are decoded; a partial tail is buffered until it completes.
    Complete-but-unparseable lines are skipped.  In ``follow`` mode the
    file may not exist yet; the generator waits for it, keeps reading as
    the file grows, and returns after yielding an ``end`` record, after
    ``timeout`` seconds without new data, or — the dead-writer escape —
    once every writer pid announced by a ``meta`` record has exited and
    the file has stayed quiet for the dead-writer grace.  A SIGKILLed
    producer never writes its ``end`` record; without the escape a
    ``repro watch`` (or CI tail) with no ``timeout`` would hang forever
    on its stream.

    Writer pids accumulate across *all* meta records: a multi-process
    stream (the socket collector's merged file, a relay) announces one
    ``meta`` per track, each carrying the writer's ``pid`` and
    optionally a ``pids`` list for processes writing through it; the
    escape only triggers once every announced pid is gone.

    The grace defaults to :data:`DEFAULT_DEAD_WRITER_GRACE`, may be
    overridden by the :data:`DEAD_WRITER_GRACE_ENV` environment variable
    (a float, or ``none``/``off``/``disabled``), and an explicit kwarg —
    including ``dead_writer_grace=None`` to disable the probe — beats
    both (:func:`resolve_dead_writer_grace`).
    """
    import time as _time

    dead_writer_grace = resolve_dead_writer_grace(dead_writer_grace)

    deadline_clock = _time.monotonic
    last_data = deadline_clock()
    fh = None
    buffer = ""
    writer_pids: set[int] = set()
    writers_dead_since: float | None = None

    def _idle_escape() -> bool:
        """True once an idle generator should give up following."""
        nonlocal writers_dead_since
        now = deadline_clock()
        if timeout is not None and now - last_data > timeout:
            return True
        if dead_writer_grace is None or not writer_pids:
            return False
        if any(_pid_alive(pid) for pid in writer_pids):
            writers_dead_since = None
            return False
        if writers_dead_since is None:
            writers_dead_since = now
        # One last grace window: a writer may die *after* its final
        # writelines reached the page cache but before we read it.
        return now - max(writers_dead_since, last_data) > dead_writer_grace

    try:
        while True:
            if fh is None:
                try:
                    fh = open_text(path)
                except OSError:
                    if not follow or _idle_escape():
                        return
                    _time.sleep(poll_interval)
                    continue
            try:
                chunk = fh.read()
            except EOFError:
                # A gzipped stream still being written ends mid-member;
                # treat the truncated tail as "no new data yet".
                chunk = ""
            if chunk:
                last_data = deadline_clock()
                buffer += chunk
                while True:
                    newline = buffer.find("\n")
                    if newline < 0:
                        break
                    line, buffer = buffer[:newline], buffer[newline + 1:]
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if (isinstance(record, dict)
                            and record.get("type") == "meta"):
                        if isinstance(record.get("pid"), int):
                            writer_pids.add(record["pid"])
                        pids = record.get("pids")
                        if isinstance(pids, list):
                            writer_pids.update(
                                p for p in pids if isinstance(p, int))
                    yield record
                    if isinstance(record, dict) and record.get("type") == "end":
                        return
            else:
                if not follow or _idle_escape():
                    return
                _time.sleep(poll_interval)
    finally:
        if fh is not None:
            fh.close()


__all__ = [
    "DEAD_WRITER_GRACE_ENV",
    "DEFAULT_DEAD_WRITER_GRACE",
    "DEFAULT_MAX_PENDING",
    "METRIC_KINDS",
    "RECORD_TYPES",
    "STREAM_SCHEMA_VERSION",
    "StreamPublisher",
    "encode_record",
    "iter_ndjson",
    "open_text",
    "resolve_dead_writer_grace",
    "validate_stream_record",
]
