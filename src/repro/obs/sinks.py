"""Streaming sinks: where incremental telemetry lines go.

A sink accepts batches of already-encoded NDJSON lines (see
:mod:`repro.obs.stream` for the record schema) and must never raise into
the simulation hot path: a sink that cannot deliver *drops and counts*.
Three implementations:

* :class:`NdjsonFileSink` — append-only file, opened lazily on the first
  flush (so ``--obs-out`` is never created for a run that dies before
  producing telemetry) and flushed every publisher flush, which makes the
  file crash-tolerant: at worst the final line is truncated, and the tail
  readers (:func:`repro.obs.stream.iter_ndjson`) hold a partial line back
  until it completes.
* :class:`SocketSink` — line protocol over a TCP or Unix stream socket
  (``repro watch --connect`` is the matching listener).  Connects lazily,
  reconnects with exponential backoff, and counts every line dropped
  while disconnected.
* :class:`RelaySink` — bounded ``multiprocessing`` queue bridge used by
  pool workers to relay their stream to the parent collector during a
  ``run_matrix``/``run_sweep``; a full queue is backpressure, so the
  batch is dropped and counted (surfaced as ``obs.relay_backpressure``).

Every sink exposes ``dropped`` so silent loss is always visible in the
exported metrics.
"""

from __future__ import annotations

import os
import random
import socket
import time
from pathlib import Path

from repro.errors import ConfigError


class Sink:
    """Protocol for streaming sinks (duck-typed; this base documents it).

    Sinks receive *encoded* NDJSON lines (each ending in ``"\\n"``) in
    batches.  They must be non-throwing: delivery failures increment
    :attr:`dropped` instead of propagating into the simulation.
    """

    #: Lines this sink failed to deliver.
    dropped: int = 0

    def write_lines(self, lines: list[str]) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered lines to the backing store (default: no-op)."""

    def close(self) -> None:
        """Release resources (default: no-op)."""


def parse_address(address: str) -> tuple[str, object]:
    """Parse a stream address into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: ``unix:/path/to.sock``, a bare path containing ``/``,
    ``host:port``, or ``:port`` (binds/connects on 127.0.0.1).
    """
    if not address:
        raise ConfigError("empty stream address")
    if address.startswith("unix:"):
        return ("unix", address[len("unix:"):])
    if "/" in address or os.sep in address:
        return ("unix", address)
    host, _, port = address.rpartition(":")
    if not port.isdigit():
        raise ConfigError(
            f"stream address must be unix:PATH, PATH, or HOST:PORT, got {address!r}"
        )
    return ("tcp", (host or "127.0.0.1", int(port)))


class NdjsonFileSink(Sink):
    """Append-only NDJSON file, lazily created at the first flush.

    Laziness is load-bearing: attaching the sink must not touch the
    filesystem, so a run that fails before its first interval leaves no
    half-made ``--obs-out`` directory behind (and
    :meth:`cleanup_if_empty` removes one this sink *did* create but never
    wrote into).  A path ending in ``.gz`` appends through gzip, so a
    long-running stream can compress at rest; ``iter_ndjson`` reads both
    transparently.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.dropped = 0
        self.lines_written = 0
        self._fh = None
        self._created_dir: Path | None = None

    def write_lines(self, lines: list[str]) -> None:
        """Append a batch, creating the file (and parent dir) on demand.

        Gzip paths append each batch as a *complete* gzip member
        (open/write/close per batch): multi-member files decompress as
        one stream, so a live tail — or a crash — never leaves an
        unterminated member behind, and readers see every flushed batch
        without waiting for the final close.
        """
        if not lines:
            return
        if not self._ensure_dir():
            self.dropped += len(lines)
            return
        if str(self.path).endswith(".gz"):
            import gzip

            try:
                with gzip.open(self.path, "at", encoding="utf-8") as fh:
                    fh.writelines(lines)
                self.lines_written += len(lines)
            except OSError:
                self.dropped += len(lines)
            return
        if self._fh is None:
            try:
                self._fh = open(self.path, "a", encoding="utf-8")
            except OSError:
                self.dropped += len(lines)
                return
        try:
            self._fh.writelines(lines)
            self.lines_written += len(lines)
        except OSError:
            self.dropped += len(lines)

    def _ensure_dir(self) -> bool:
        try:
            parent = self.path.parent
            if not parent.exists():
                parent.mkdir(parents=True, exist_ok=True)
                self._created_dir = parent
        except OSError:
            return False
        return True

    def flush(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            except OSError:
                pass

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def cleanup_if_empty(self) -> bool:
        """Remove the directory this sink created if nothing was written."""
        if self.lines_written or self._created_dir is None:
            return False
        try:
            os.rmdir(self._created_dir)
        except OSError:
            return False
        self._created_dir = None
        return True


class SocketSink(Sink):
    """Line-protocol client over a TCP or Unix stream socket.

    Connects lazily on the first batch and reconnects with *jittered*
    capped exponential backoff after any send failure: the retry window
    doubles up to ``max_backoff``, and each wait draws uniformly from
    the upper half of the window, so a fleet of publishers cut off by
    one collector restart does not reconnect in lockstep (thundering
    herd).  Lines offered while disconnected (or while the backoff
    window is open) are dropped and counted — live telemetry must never
    stall the simulation behind a dead collector.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 0.5,
        retry_backoff: float = 0.25,
        max_backoff: float = 2.0,
        jitter: bool = True,
    ) -> None:
        self.family, self.target = parse_address(address)
        self.address = address
        self.connect_timeout = connect_timeout
        self.retry_backoff = retry_backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.dropped = 0
        self.lines_sent = 0
        self.reconnects = 0
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        self._backoff = retry_backoff
        self._next_attempt = 0.0

    def _retry_delay(self) -> float:
        """Next wait: the current window, half-jittered, then doubled.

        Half jitter (``U(w/2, w)``) rather than full keeps a floor under
        the retry spacing — a sink must never busy-spin a dead address —
        while still decorrelating peers.
        """
        window = self._backoff
        self._backoff = min(self._backoff * 2.0, self.max_backoff)
        if not self.jitter:
            return window
        return window * (0.5 + 0.5 * self._rng.random())

    def _connect(self) -> bool:
        if self._sock is not None:
            return True
        now = time.monotonic()
        if now < self._next_attempt:
            return False
        try:
            if self.family == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            else:
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.target)
            self._sock = sock
            self._backoff = self.retry_backoff
            self.reconnects += 1
            return True
        except OSError:
            self._next_attempt = now + self._retry_delay()
            return False

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._next_attempt = time.monotonic() + self._retry_delay()

    def write_lines(self, lines: list[str]) -> None:
        """Send a batch, dropping (counted) while disconnected."""
        if not lines:
            return
        if not self._connect():
            self.dropped += len(lines)
            return
        try:
            self._sock.sendall("".join(lines).encode("utf-8"))
            self.lines_sent += len(lines)
        except OSError:
            self.dropped += len(lines)
            self._disconnect()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class RelaySink(Sink):
    """Bridges a worker's stream onto a bounded multiprocessing queue.

    The parent collector drains the queue while the pool runs, so a
    pooled matrix is watchable live.  ``put_nowait`` keeps the worker's
    hot path wait-free: a full queue means the parent is not keeping up,
    and the batch is dropped and counted rather than blocking simulation.
    """

    def __init__(self, queue) -> None:
        self.queue = queue
        self.dropped = 0
        self.batches_sent = 0

    def write_lines(self, lines: list[str]) -> None:
        if not lines:
            return
        try:
            self.queue.put_nowait(list(lines))
            self.batches_sent += 1
        except Exception:  # queue.Full, or a closed queue at teardown
            self.dropped += len(lines)


__all__ = [
    "NdjsonFileSink",
    "RelaySink",
    "Sink",
    "SocketSink",
    "parse_address",
]
