"""Migration provenance: per-region lifecycle records.

Answers "why did this region move in interval 37?".  The planner records
one :class:`ProvenanceRecord` per lifecycle transition of every
migration order it touches — planned, committed, transient failures
(busy/pressure), retry scheduling and outcomes, fallback-mechanism
switches, demote-for-room evictions — each carrying the region span,
tiers, policy reason, hotness score, and attempt number.

The log is queryable by page (:meth:`ProvenanceLog.for_page`) and
round-trips through JSONL so ``python -m repro trace`` can interrogate a
finished run from its ``--obs-out`` directory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Lifecycle stages in causal order.
STAGE_PLANNED = "planned"
STAGE_COMMITTED = "committed"
STAGE_BUSY = "busy"
STAGE_PRESSURE = "pressure"
STAGE_RETRY = "retry-scheduled"
STAGE_EXHAUSTED = "exhausted"
STAGE_FALLBACK = "fallback"
STAGE_DEMOTE_FOR_ROOM = "demote-for-room"

ALL_STAGES = frozenset({
    STAGE_PLANNED, STAGE_COMMITTED, STAGE_BUSY, STAGE_PRESSURE,
    STAGE_RETRY, STAGE_EXHAUSTED, STAGE_FALLBACK, STAGE_DEMOTE_FOR_ROOM,
})


@dataclass(frozen=True)
class ProvenanceRecord:
    """One lifecycle transition of one migration order."""

    interval: int
    stage: str
    page_start: int
    npages: int
    src_node: int
    dst_node: int
    reason: str = ""
    score: float = 0.0
    attempt: int = 0
    detail: str = ""

    def covers(self, page: int) -> bool:
        return self.page_start <= page < self.page_start + self.npages

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class ProvenanceLog:
    """Append-only record list with page-level queries."""

    records: list[ProvenanceRecord] = field(default_factory=list)

    def record(self, interval: int, stage: str, page_start: int, npages: int,
               src_node: int, dst_node: int, reason: str = "",
               score: float = 0.0, attempt: int = 0,
               detail: str = "") -> None:
        self.records.append(ProvenanceRecord(
            interval, stage, page_start, npages, src_node, dst_node,
            reason, score, attempt, detail,
        ))

    def __len__(self) -> int:
        return len(self.records)

    def extend(self, records) -> None:
        self.records.extend(records)

    # -- queries -------------------------------------------------------------

    def for_page(self, page: int) -> list[ProvenanceRecord]:
        """Lifecycle history of every order covering ``page``, in order."""
        return [r for r in self.records if r.covers(page)]

    def region_starts(self) -> list[int]:
        """Distinct region start pages that appear in the log."""
        return sorted({r.page_start for r in self.records})

    def stage_counts(self) -> dict[str, int]:
        """Record counts by lifecycle stage."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.stage] = out.get(r.stage, 0) + 1
        return out

    def for_interval(self, start: int, end: int) -> list[ProvenanceRecord]:
        """Records with ``start <= interval < end``, in log order.

        The range query behind windowed analyses (per-tier dwell time,
        ping-pong detection over an interval window).
        """
        return [r for r in self.records if start <= r.interval < end]

    def queue_latencies(self, page: int) -> list[int]:
        """Plan→commit queue latency of *every* migration of ``page``.

        A page that migrates repeatedly has one latency per occurrence:
        each ``planned`` record joins a FIFO of pending plans for its
        ``(src, dst)`` direction, and the next ``committed`` record in
        the same direction resolves the oldest one.  Pending plans that
        never commit contribute nothing.
        """
        pending: dict[tuple[int, int], list[int]] = {}
        latencies: list[int] = []
        for r in self.for_page(page):
            key = (r.src_node, r.dst_node)
            if r.stage == STAGE_PLANNED:
                pending.setdefault(key, []).append(r.interval)
            elif r.stage == STAGE_COMMITTED and pending.get(key):
                latencies.append(r.interval - pending[key].pop(0))
        return latencies

    def queue_latency(self, page: int) -> int | None:
        """First migration's plan→commit latency (``None`` if never
        committed); see :meth:`queue_latencies` for all occurrences."""
        latencies = self.queue_latencies(page)
        return latencies[0] if latencies else None

    # -- JSONL round trip ----------------------------------------------------

    def write_jsonl(self, path) -> None:
        """Write the log as JSONL (gzipped when ``path`` ends ``.gz``)."""
        import json

        from repro.obs.stream import open_text

        with open_text(path, "w") as fh:
            for r in self.records:
                fh.write(json.dumps(r.as_dict()) + "\n")

    @classmethod
    def read_jsonl(cls, path) -> "ProvenanceLog":
        """Load a log written by :meth:`write_jsonl` (plain or ``.gz``)."""
        import json

        from repro.obs.stream import open_text

        log = cls()
        with open_text(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                log.records.append(ProvenanceRecord(**json.loads(line)))
        return log


__all__ = [
    "ALL_STAGES", "ProvenanceLog", "ProvenanceRecord",
    "STAGE_BUSY", "STAGE_COMMITTED", "STAGE_DEMOTE_FOR_ROOM",
    "STAGE_EXHAUSTED", "STAGE_FALLBACK", "STAGE_PLANNED",
    "STAGE_PRESSURE", "STAGE_RETRY",
]
