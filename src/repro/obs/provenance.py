"""Migration provenance: per-region lifecycle records.

Answers "why did this region move in interval 37?".  The planner records
one :class:`ProvenanceRecord` per lifecycle transition of every
migration order it touches — planned, committed, transient failures
(busy/pressure), retry scheduling and outcomes, fallback-mechanism
switches, demote-for-room evictions — each carrying the region span,
tiers, policy reason, hotness score, and attempt number.

The log is queryable by page (:meth:`ProvenanceLog.for_page`) and
round-trips through JSONL so ``python -m repro trace`` can interrogate a
finished run from its ``--obs-out`` directory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Lifecycle stages in causal order.
STAGE_PLANNED = "planned"
STAGE_COMMITTED = "committed"
STAGE_BUSY = "busy"
STAGE_PRESSURE = "pressure"
STAGE_RETRY = "retry-scheduled"
STAGE_EXHAUSTED = "exhausted"
STAGE_FALLBACK = "fallback"
STAGE_DEMOTE_FOR_ROOM = "demote-for-room"

ALL_STAGES = frozenset({
    STAGE_PLANNED, STAGE_COMMITTED, STAGE_BUSY, STAGE_PRESSURE,
    STAGE_RETRY, STAGE_EXHAUSTED, STAGE_FALLBACK, STAGE_DEMOTE_FOR_ROOM,
})


@dataclass(frozen=True)
class ProvenanceRecord:
    """One lifecycle transition of one migration order."""

    interval: int
    stage: str
    page_start: int
    npages: int
    src_node: int
    dst_node: int
    reason: str = ""
    score: float = 0.0
    attempt: int = 0
    detail: str = ""

    def covers(self, page: int) -> bool:
        return self.page_start <= page < self.page_start + self.npages

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class ProvenanceLog:
    """Append-only record list with page-level queries."""

    records: list[ProvenanceRecord] = field(default_factory=list)

    def record(self, interval: int, stage: str, page_start: int, npages: int,
               src_node: int, dst_node: int, reason: str = "",
               score: float = 0.0, attempt: int = 0,
               detail: str = "") -> None:
        self.records.append(ProvenanceRecord(
            interval, stage, page_start, npages, src_node, dst_node,
            reason, score, attempt, detail,
        ))

    def __len__(self) -> int:
        return len(self.records)

    def extend(self, records) -> None:
        self.records.extend(records)

    # -- queries -------------------------------------------------------------

    def for_page(self, page: int) -> list[ProvenanceRecord]:
        """Lifecycle history of every order covering ``page``, in order."""
        return [r for r in self.records if r.covers(page)]

    def region_starts(self) -> list[int]:
        """Distinct region start pages that appear in the log."""
        return sorted({r.page_start for r in self.records})

    def stage_counts(self) -> dict[str, int]:
        """Record counts by lifecycle stage."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.stage] = out.get(r.stage, 0) + 1
        return out

    def queue_latency(self, page: int) -> int | None:
        """Intervals between first plan and first commit covering ``page``.

        ``None`` when the page never committed (or never appeared).
        """
        planned = None
        for r in self.for_page(page):
            if r.stage == STAGE_PLANNED and planned is None:
                planned = r.interval
            if r.stage == STAGE_COMMITTED and planned is not None:
                return r.interval - planned
        return None

    # -- JSONL round trip ----------------------------------------------------

    def write_jsonl(self, path) -> None:
        import json

        with open(path, "w") as fh:
            for r in self.records:
                fh.write(json.dumps(r.as_dict()) + "\n")

    @classmethod
    def read_jsonl(cls, path) -> "ProvenanceLog":
        """Load a log written by :meth:`write_jsonl`."""
        import json

        log = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                log.records.append(ProvenanceRecord(**json.loads(line)))
        return log


__all__ = [
    "ALL_STAGES", "ProvenanceLog", "ProvenanceRecord",
    "STAGE_BUSY", "STAGE_COMMITTED", "STAGE_DEMOTE_FOR_ROOM",
    "STAGE_EXHAUSTED", "STAGE_FALLBACK", "STAGE_PLANNED",
    "STAGE_PRESSURE", "STAGE_RETRY",
]
