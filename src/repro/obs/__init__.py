"""``repro.obs``: low-overhead, off-by-default observability plane.

Four cooperating pieces (see DESIGN.md "Observability architecture"):

* :mod:`repro.obs.events` — typed structured event bus;
* :mod:`repro.obs.spans` — nested span tracer, Perfetto-exportable;
* :mod:`repro.obs.registry` — labeled counters/gauges/histograms and the
  shared counter-arithmetic primitives ``PerfStats``/``CacheStats`` use;
* :mod:`repro.obs.provenance` — per-region migration lifecycle records.

Plus the streaming plane (DESIGN.md "Streaming observability"):

* :mod:`repro.obs.stream` — NDJSON record schema + incremental publisher;
* :mod:`repro.obs.sinks` — append-only file, socket, and mp-queue sinks;
* :mod:`repro.obs.watch` — live aggregator and the ``repro watch``
  dashboard.

:class:`~repro.obs.context.ObsContext` bundles them; the stack is
instrumented against ``obs: ObsContext | None`` and emits nothing when
disabled.  Enabling observability never changes simulated results
(bit-identity, enforced by ``tests/test_obs_identity.py``).
"""

from repro.obs.context import (
    ObsConfig,
    ObsContext,
    ObsData,
    default_context,
    set_default_context,
)
from repro.obs.events import (
    ALL_EVENTS,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_FAULT_INJECTED,
    EV_INTERVAL_END,
    EV_INTERVAL_START,
    EV_MECH_SYNC_SWITCH,
    EV_MIG_FAILED,
    EV_MIG_ISSUED,
    EV_MIG_PLANNED,
    EV_MIG_RETRIED,
    EV_PEBS_BATCH,
    EV_REGION_MERGE,
    EV_REGION_SPLIT,
    EV_SCAN,
    EV_SNAPSHOT_CAPTURE,
    EV_SNAPSHOT_FORK,
    Event,
    EventBus,
)
from repro.obs.export import build_chrome_trace, validate_chrome_trace
from repro.obs.provenance import ProvenanceLog, ProvenanceRecord
from repro.obs.sinks import NdjsonFileSink, RelaySink, Sink, SocketSink
from repro.obs.stream import (
    STREAM_SCHEMA_VERSION,
    StreamPublisher,
    iter_ndjson,
    validate_stream_record,
)
from repro.obs.registry import (
    HistogramStat,
    MetricsRegistry,
    combine_fields,
    delta_fields,
    merge_sample_maps,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "ALL_EVENTS",
    "EV_CACHE_HIT",
    "EV_CACHE_MISS",
    "EV_FAULT_INJECTED",
    "EV_INTERVAL_END",
    "EV_INTERVAL_START",
    "EV_MECH_SYNC_SWITCH",
    "EV_MIG_FAILED",
    "EV_MIG_ISSUED",
    "EV_MIG_PLANNED",
    "EV_MIG_RETRIED",
    "EV_PEBS_BATCH",
    "EV_REGION_MERGE",
    "EV_REGION_SPLIT",
    "EV_SCAN",
    "EV_SNAPSHOT_CAPTURE",
    "EV_SNAPSHOT_FORK",
    "Event",
    "EventBus",
    "HistogramStat",
    "MetricsRegistry",
    "NdjsonFileSink",
    "ObsConfig",
    "ObsContext",
    "ObsData",
    "ProvenanceLog",
    "ProvenanceRecord",
    "RelaySink",
    "STREAM_SCHEMA_VERSION",
    "Sink",
    "SocketSink",
    "Span",
    "SpanTracer",
    "StreamPublisher",
    "build_chrome_trace",
    "combine_fields",
    "default_context",
    "delta_fields",
    "iter_ndjson",
    "merge_sample_maps",
    "set_default_context",
    "validate_chrome_trace",
]
