"""Export sinks for a collected :class:`~repro.obs.context.ObsContext`.

Writes four artifacts under ``--obs-out``:

* ``trace.json`` — Chrome trace-event format; open in ``ui.perfetto.dev``
  or ``chrome://tracing``.  The collector's own spans are the ``main``
  track; every absorbed child run gets its own named track.
* ``events.jsonl`` — one JSON line per structured event (track-tagged).
* ``metrics.json`` — the merged metrics registry.
* ``provenance.jsonl`` — the merged migration provenance log.

Also hosts :func:`validate_chrome_trace`, a dependency-free structural
validator for the Chrome trace-event schema, used by tests and by the
CI observability job.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import events_to_trace_events, spans_to_trace_events

#: Trace-event phases this exporter produces (subset of the full spec).
_EMITTED_PHASES = {"X", "i", "M"}
#: Phases the validator accepts (the common Chrome trace-event vocabulary).
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n", "s", "t",
                 "f", "P", "O", "N", "D"}


def _thread_name_event(pid: int, tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def build_chrome_trace(ctx) -> dict:
    """Chrome trace dict: collector spans on tid 0, one tid per track."""
    pid = 1
    trace_events = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": f"repro.obs:{ctx.label or 'run'}"}},
        _thread_name_event(pid, 0, ctx.label or "main"),
    ]
    trace_events.extend(spans_to_trace_events(ctx.tracer.spans, pid, 0))
    trace_events.extend(events_to_trace_events(ctx.bus.events, pid, 0))
    for index, track in enumerate(ctx.tracks, start=1):
        trace_events.append(
            _thread_name_event(pid, index, track.label or f"track-{index}")
        )
        trace_events.extend(spans_to_trace_events(track.spans, pid, index))
        trace_events.extend(events_to_trace_events(track.events, pid, index))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace) -> list[str]:
    """Structural problems with a Chrome trace object ([] when valid)."""
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                problems.append(f"{where}: non-int {key}")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: non-dict args")
    return problems


def write_events_jsonl(ctx, path) -> int:
    """Track-tagged event lines; returns the number written.

    Gzip-compressed when ``path`` ends in ``.gz`` (the analytics ingest
    and ``iter_ndjson`` read either form transparently).
    """
    from repro.obs.stream import open_text

    written = 0
    with open_text(path, "w") as fh:
        for event in ctx.bus.events:
            fh.write(json.dumps(
                {"track": ctx.label or "main", **event.as_dict()}) + "\n")
            written += 1
        for track in ctx.tracks:
            for event in track.events:
                fh.write(json.dumps(
                    {"track": track.label, **event.as_dict()}) + "\n")
                written += 1
    return written


def export_context(ctx, out_dir, compress: bool = False) -> dict:
    """Write trace.json / events.jsonl / metrics.json / provenance.jsonl.

    With ``compress`` the two JSONL artifacts (the bulky ones) are
    written gzipped as ``*.jsonl.gz``; every reader in the repo resolves
    either suffix.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    suffix = ".gz" if compress else ""
    paths = {
        "trace": out / "trace.json",
        "events": out / f"events.jsonl{suffix}",
        "metrics": out / "metrics.json",
        "provenance": out / f"provenance.jsonl{suffix}",
    }
    trace = build_chrome_trace(ctx)
    with open(paths["trace"], "w") as fh:
        json.dump(trace, fh)
    write_events_jsonl(ctx, paths["events"])
    rendered = ctx.registry.as_dict()
    # Child runs injected their stream-loss counters at snapshot time and
    # absorb() merged them; the collector's *own* bus/publisher/sink drops
    # are added here, into the rendered copy only (repeated exports must
    # not compound them in the live registry).  Both counters are always
    # materialized — a zero in metrics.json means "measured, no loss",
    # which an absent key cannot say.
    own_dropped = ctx.bus.dropped
    backpressure = 0
    publisher = getattr(ctx, "_publisher", None)
    if publisher is not None:
        own_dropped += publisher.dropped
        backpressure = publisher.owned_sink_dropped()
    counters = rendered["counters"]
    counters["obs.dropped_events"] = (
        counters.get("obs.dropped_events", 0) + own_dropped
    )
    counters["obs.relay_backpressure"] = (
        counters.get("obs.relay_backpressure", 0) + backpressure
    )
    with open(paths["metrics"], "w") as fh:
        json.dump({
            "label": ctx.label,
            "dropped_events": ctx.dropped_events(),
            "event_counts": ctx.event_counts(),
            **rendered,
        }, fh, indent=2, sort_keys=True)
    ctx.provenance.write_jsonl(paths["provenance"])
    return {key: str(path) for key, path in paths.items()}


__all__ = [
    "build_chrome_trace", "export_context", "validate_chrome_trace",
    "write_events_jsonl",
]
