"""Observability context: the one handle the rest of the stack sees.

An :class:`ObsContext` bundles the event bus, span tracer, metrics
registry, and provenance log behind a small facade (``emit`` / ``span``
/ ``inc`` / ``observe`` / ``provenance``).  The stack is instrumented
against *optional* contexts: every call site guards with
``if obs is not None``, so a disabled run allocates none of the sinks
and executes no emission code (the ~0%-disabled guarantee, enforced by
``tests/test_obs.py``).

Ownership model (mirrors the per-cell cache-delta discipline from the
bench runner):

* each **engine** gets its own private context — possibly in a forked
  worker process;
* :meth:`ObsContext.snapshot` freezes a context into a picklable
  :class:`ObsData` that travels back on the ``SimulationResult``;
* a parent **collector** context absorbs each ObsData exactly once
  (:meth:`ObsContext.absorb`): metrics and provenance merge, while
  events/spans are kept as per-run *tracks* so the Perfetto export can
  show one timeline lane per engine run.

A process-wide default collector (:func:`set_default_context`) lets
``--obs`` on any bench driver enable collection without threading a
parameter through every call chain, mirroring
``bench.runner.set_default_workers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import DEFAULT_MAX_EVENTS, EventBus
from repro.obs.provenance import ProvenanceLog
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer


@dataclass(frozen=True)
class ObsConfig:
    """Which planes are collected; picklable, travels to pool workers.

    ``stream`` arms the incremental publisher (:mod:`repro.obs.stream`):
    contexts with sinks attached encode new telemetry every
    ``stream_flush_every``-th interval flush.  The flag is picklable
    config only — sinks themselves never travel to workers (forked
    workers attach a relay instead; see ``bench.runner``).
    """

    events: bool = True
    spans: bool = True
    metrics: bool = True
    provenance: bool = True
    max_events: int = DEFAULT_MAX_EVENTS
    stream: bool = False
    stream_flush_every: int = 1


@dataclass
class ObsData:
    """Frozen, picklable snapshot of one context (one run's telemetry)."""

    label: str = ""
    events: list = field(default_factory=list)
    dropped_events: int = 0
    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    provenance: list = field(default_factory=list)


class ObsContext:
    """Live telemetry sinks for one run (or one collecting parent)."""

    def __init__(self, config: ObsConfig | None = None, label: str = "") -> None:
        self.config = config if config is not None else ObsConfig()
        self.label = label
        self.bus = EventBus(self.config.max_events)
        self.tracer = SpanTracer()
        self.registry = MetricsRegistry()
        self.provenance = ProvenanceLog()
        #: absorbed child-run snapshots, one Perfetto track each
        self.tracks: list[ObsData] = []
        #: lazy streaming publisher; exists only once a sink is attached
        self._publisher = None

    # -- instrumentation facade ---------------------------------------------

    def emit(self, name: str, sim_time: float = 0.0, interval: int = -1,
             **fields) -> None:
        if self.config.events:
            self.bus.emit(name, sim_time, interval, **fields)

    def span(self, name: str, cat: str = "engine", **args):
        """Context manager timing one phase (no-op when spans are off)."""
        if self.config.spans:
            return self.tracer.span(name, cat, **args)
        from contextlib import nullcontext
        return nullcontext()

    def inc(self, name: str, value: float = 1, **labels) -> None:
        if self.config.metrics:
            self.registry.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if self.config.metrics:
            self.registry.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.config.metrics:
            self.registry.observe(name, value, **labels)

    def record_provenance(self, *args, **kwargs) -> None:
        if self.config.provenance:
            self.provenance.record(*args, **kwargs)

    # -- streaming ------------------------------------------------------------

    def add_sink(self, sink, owned: bool = True) -> None:
        """Attach a streaming sink (creates the publisher on first use).

        ``owned`` sinks are closed by :meth:`stream_close` and their
        drop counters surface as ``obs.relay_backpressure``; shared
        sinks (a collector's, borrowed by serial cells) are left alone.
        """
        if self._publisher is None:
            from repro.obs.stream import StreamPublisher
            self._publisher = StreamPublisher(self)
        self._publisher.add_sink(sink, owned=owned)

    @property
    def stream_sinks(self) -> list:
        """The attached sink objects (empty when not streaming)."""
        if self._publisher is None:
            return []
        return [sink for sink, _ in self._publisher.sinks]

    def stream_flush(self, force: bool = False) -> int:
        """Push new telemetry to the sinks (no-op without a publisher)."""
        if self._publisher is None:
            return 0
        return self._publisher.flush(force=force)

    def stream_close(self, end_record: bool = True) -> None:
        """Final flush + optional ``end`` marker; closes owned sinks."""
        if self._publisher is not None:
            self._publisher.close(end_record=end_record)

    def stream_abort(self) -> None:
        """Failure-path close: no end record, no dir-creating first write."""
        if self._publisher is not None:
            self._publisher.abort()

    def relay_lines(self, lines: list) -> None:
        """Forward already-encoded stream lines from a worker relay."""
        if self._publisher is not None and lines:
            self._publisher.write_raw(lines)

    # -- absorbing run-level summaries into the registry ---------------------

    def record_perfstats(self, perf, label: str = "") -> None:
        """Unified view of a run's host-side :class:`PerfStats`."""
        if not self.config.metrics or perf is None:
            return
        labels = {"run": label} if label else {}
        for phase in ("workload", "profile", "migrate", "total"):
            self.inc(f"perf.{phase}_seconds",
                     getattr(perf, f"{phase}_seconds"), **labels)
        self.inc("perf.intervals", perf.intervals, **labels)
        for phase, samples in perf.phase_samples.items():
            for value in samples:
                self.observe(f"perf.phase.{phase}", value, **labels)
        if perf.cache is not None:
            self.record_cache_stats(perf.cache, cache="trace", **labels)
        if getattr(perf, "snapshots", None) is not None:
            self.record_cache_stats(perf.snapshots, cache="snapshot", **labels)

    def record_cache_stats(self, stats, **labels) -> None:
        """Unified view of a :class:`CacheStats` counter block."""
        if not self.config.metrics or stats is None:
            return
        self.inc("cache.hits", stats.hits, **labels)
        self.inc("cache.misses", stats.misses, **labels)
        self.inc("cache.evictions", stats.evictions, **labels)
        self.set_gauge("cache.cached_bytes", stats.cached_bytes, **labels)

    def record_migration_log(self, log, label: str = "") -> None:
        """Unified view of the planner's migration/robustness counters."""
        if not self.config.metrics or log is None:
            return
        labels = {"run": label} if label else {}
        for name in ("promoted_pages", "demoted_pages", "promoted_bytes",
                     "demoted_bytes", "busy_pages", "partial_orders",
                     "enomem_events", "demoted_for_room_pages",
                     "retries_scheduled", "retries_succeeded",
                     "retries_exhausted", "fallback_moves"):
            value = getattr(log, name, 0)
            if value:
                self.inc(f"migrate.{name}", value, **labels)

    # -- snapshot / absorb ----------------------------------------------------

    def snapshot(self, label: str | None = None) -> ObsData:
        """Picklable copy of everything this context collected.

        Streaming loss counters are injected into the snapshot's
        *copy* of the counter dict (never the live registry, so repeated
        snapshots don't double-count): ``obs.dropped_events`` is
        buffer+stream drops, ``obs.relay_backpressure`` is lines this
        context's own relay/sinks failed to deliver.
        """
        counters, gauges, histograms = self.registry.data()
        if self.config.metrics:
            dropped = self.bus.dropped
            if self._publisher is not None:
                dropped += self._publisher.dropped
                backpressure = self._publisher.owned_sink_dropped()
                if backpressure:
                    key = ("obs.relay_backpressure", ())
                    counters[key] = counters.get(key, 0) + backpressure
            if dropped:
                key = ("obs.dropped_events", ())
                counters[key] = counters.get(key, 0) + dropped
        return ObsData(
            label=label if label is not None else self.label,
            events=list(self.bus.events),
            dropped_events=self.bus.dropped,
            spans=list(self.tracer.spans),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            provenance=list(self.provenance.records),
        )

    def absorb(self, data: ObsData | None) -> None:
        """Merge one child run's snapshot (call exactly once per child)."""
        if data is None:
            return
        self.registry.merge_data(data.counters, data.gauges, data.histograms)
        self.provenance.extend(data.provenance)
        self.tracks.append(data)
        if self._publisher is not None:
            # The child's telemetry already streamed through its own
            # publisher (shared sinks or relay); skip it in our deltas.
            self._publisher.rebase()

    # -- aggregate views ------------------------------------------------------

    def event_count(self, name: str | None = None) -> int:
        """Buffered events across own bus and absorbed tracks."""
        own = self.bus.events
        if name is None:
            return (len(own) + sum(len(t.events) for t in self.tracks))
        return (sum(1 for e in own if e.name == name)
                + sum(1 for t in self.tracks
                      for e in t.events if e.name == name))

    def event_counts(self) -> dict[str, int]:
        """Event counts by name across this context and absorbed tracks."""
        out = self.bus.counts()
        for track in self.tracks:
            for event in track.events:
                out[event.name] = out.get(event.name, 0) + 1
        return out

    def dropped_events(self) -> int:
        return self.bus.dropped + sum(t.dropped_events for t in self.tracks)

    # -- export ---------------------------------------------------------------

    def export(self, out_dir, compress: bool = False) -> dict:
        """Write every sink under ``out_dir``; returns written paths.

        ``compress`` gzips the JSONL artifacts (``*.jsonl.gz``).
        """
        from repro.obs.export import export_context

        return export_context(self, out_dir, compress=compress)


# -- process-wide default collector -------------------------------------------
#
# Set once by bench drivers' --obs flag; forked pool workers inherit the
# *config* (they build private per-cell contexts and ship ObsData back).

_DEFAULT_CONTEXT: ObsContext | None = None


def set_default_context(ctx: ObsContext | None) -> None:
    global _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = ctx


def default_context() -> ObsContext | None:
    return _DEFAULT_CONTEXT


__all__ = [
    "ObsConfig", "ObsContext", "ObsData",
    "default_context", "set_default_context",
]
