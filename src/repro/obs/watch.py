"""Live telemetry aggregation + the ``repro watch`` dashboard.

Consumes the NDJSON stream records of :mod:`repro.obs.stream` — from a
growing ``stream.ndjson`` file (``--run DIR``) or a listening socket fed
by :class:`~repro.obs.sinks.SocketSink` publishers (``--connect ADDR``;
the watcher is the *server*, simulations push to it, so one dashboard
can aggregate many runs) — and folds them into a :class:`LiveAggregate`
rendered as a refresh-loop terminal dashboard or a static HTML page.

The dashboard answers MTM's online questions: is the run making
intervals, where do pages sit per tier, how much bandwidth is migration
moving, and is profiling overhead holding under the paper's 5% budget
(§4's constraint) — plus the reliability counters (faults, retries,
cache hit ratio, stream drops).
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.events import (
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_FAULT_INJECTED,
    EV_INTERVAL_END,
)
from repro.obs.stream import STREAM_SCHEMA_VERSION, iter_ndjson
from repro.units import PAGE_SIZE

#: The paper's profiling-overhead constraint (§4): profiling may consume
#: at most this fraction of application time.
DEFAULT_BUDGET = 0.05


class TrackState:
    """Rolling state of one stream track (one engine run)."""

    __slots__ = (
        "intervals", "last_interval", "sim_time", "app_time", "prof_time",
        "mig_time", "promoted_pages", "demoted_pages", "degraded",
        "fault_events", "first_end_ts", "last_end_ts", "done",
    )

    def __init__(self) -> None:
        self.intervals = 0
        self.last_interval = -1
        self.sim_time = 0.0
        self.app_time = 0.0
        self.prof_time = 0.0
        self.mig_time = 0.0
        self.promoted_pages = 0
        self.demoted_pages = 0
        self.degraded = 0
        self.fault_events = 0
        self.first_end_ts = None
        self.last_end_ts = None
        self.done = False


class LiveAggregate:
    """Folds stream records into the state the dashboard renders."""

    def __init__(self) -> None:
        self.tracks: dict[str, TrackState] = {}
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.event_counts: dict[str, int] = {}
        self.records = 0
        self.invalid_records = 0
        self.schema_mismatch = 0
        self.done = False

    def _track(self, name) -> TrackState:
        track = self.tracks.get(name)
        if track is None:
            track = self.tracks[name] = TrackState()
        return track

    def feed(self, record) -> None:
        """Fold one decoded record in (unknown shapes are counted, kept)."""
        if not isinstance(record, dict):
            self.invalid_records += 1
            return
        self.records += 1
        rtype = record.get("type")
        track_name = record.get("track", "")
        if rtype == "meta":
            self._track(track_name)
            if record.get("v") != STREAM_SCHEMA_VERSION:
                self.schema_mismatch += 1
        elif rtype == "event":
            name = record.get("name", "")
            self.event_counts[name] = self.event_counts.get(name, 0) + 1
            track = self._track(track_name)
            if name == EV_INTERVAL_END:
                track.intervals += 1
                track.last_interval = record.get("interval", -1)
                track.sim_time = record.get("sim_time", track.sim_time)
                track.app_time += record.get("app_time", 0.0)
                track.prof_time += record.get("profiling_time", 0.0)
                track.mig_time += record.get("migration_time", 0.0)
                track.promoted_pages += record.get("promoted_pages", 0)
                track.demoted_pages += record.get("demoted_pages", 0)
                if record.get("degraded"):
                    track.degraded += 1
                ts = record.get("ts")
                if isinstance(ts, (int, float)):
                    if track.first_end_ts is None:
                        track.first_end_ts = ts
                    track.last_end_ts = ts
            elif name == EV_FAULT_INJECTED:
                track.fault_events += 1
        elif rtype == "metric":
            name = record.get("name", "")
            labels = tuple(tuple(p) for p in record.get("labels") or ())
            key = (name, labels)
            kind = record.get("kind")
            if kind == "counter":
                self.counters[key] = (
                    self.counters.get(key, 0) + record.get("delta", 0)
                )
            elif kind == "gauge":
                self.gauges[key] = record.get("value", 0)
        elif rtype == "end":
            self._track(track_name).done = True
            self.done = True
        elif rtype not in ("span", "provenance"):
            self.invalid_records += 1

    def feed_lines(self, records) -> None:
        for record in records:
            self.feed(record)

    # -- derived views --------------------------------------------------------

    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def interval_rate(self) -> float:
        """Aggregate host-side intervals/second across tracks."""
        rate = 0.0
        for track in self.tracks.values():
            if (track.intervals >= 2 and track.first_end_ts is not None
                    and track.last_end_ts is not None
                    and track.last_end_ts > track.first_end_ts):
                rate += (track.intervals - 1) / (
                    track.last_end_ts - track.first_end_ts
                )
        return rate

    def tier_occupancy(self) -> list[tuple[int, float, float]]:
        """``(node, used_pages, capacity_pages)`` per tier, latest values."""
        used: dict[int, float] = {}
        cap: dict[int, float] = {}
        for (name, labels), value in self.gauges.items():
            node = next(
                (int(v) for k, v in labels if k == "node"), None
            )
            if node is None:
                continue
            if name == "tier.occupancy_pages":
                used[node] = value
            elif name == "tier.capacity_pages":
                cap[node] = value
        return [
            (node, used[node], cap.get(node, 0.0)) for node in sorted(used)
        ]

    def service_gauges(self) -> dict[str, float]:
        """Latest ``service.*`` gauges (scheduler-side telemetry).

        A ``repro serve --obs-stream`` daemon publishes its result-cache
        counters (``service.cache.*``) and warm-fleet state
        (``service.warm.*``: snapshot hits/misses, cached bytes,
        affinity grants) as gauges; plain simulation streams carry none,
        so an empty dict hides the service panel entirely.
        """
        return {name: value for (name, _labels), value in self.gauges.items()
                if name.startswith("service.")}

    def summary(self) -> dict:
        """Everything the renderers need, as plain values."""
        intervals = sum(t.intervals for t in self.tracks.values())
        app = sum(t.app_time for t in self.tracks.values())
        prof = sum(t.prof_time for t in self.tracks.values())
        mig = sum(t.mig_time for t in self.tracks.values())
        sim_time = sum(t.sim_time for t in self.tracks.values())
        promoted = sum(t.promoted_pages for t in self.tracks.values())
        demoted = sum(t.demoted_pages for t in self.tracks.values())
        moved_bytes = (promoted + demoted) * PAGE_SIZE
        hits = self.counter_total("cache.hits") or self.event_counts.get(
            EV_CACHE_HIT, 0
        )
        misses = self.counter_total("cache.misses") or self.event_counts.get(
            EV_CACHE_MISS, 0
        )
        return {
            "tracks": len(self.tracks),
            "tracks_done": sum(1 for t in self.tracks.values() if t.done),
            "records": self.records,
            "intervals": intervals,
            "interval_rate": self.interval_rate(),
            "sim_time": sim_time,
            "app_time": app,
            "profile_time": prof,
            "migrate_time": mig,
            "profile_overhead": (prof / app) if app > 0 else 0.0,
            "promoted_pages": promoted,
            "demoted_pages": demoted,
            "migration_bandwidth": (moved_bytes / sim_time) if sim_time > 0 else 0.0,
            "degraded_intervals": sum(t.degraded for t in self.tracks.values()),
            "faults": sum(t.fault_events for t in self.tracks.values()),
            "retries_scheduled": self.counter_total("migrate.retries_scheduled"),
            "retries_succeeded": self.counter_total("migrate.retries_succeeded"),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_ratio": (hits / (hits + misses)) if (hits + misses) else 0.0,
            "dropped_events": self.counter_total("obs.dropped_events"),
            "relay_backpressure": self.counter_total("obs.relay_backpressure"),
            "tiers": self.tier_occupancy(),
            "service": self.service_gauges(),
            "done": self.done,
        }


# -- terminal rendering -------------------------------------------------------


def _bar(frac: float, width: int = 24, marker: float | None = None) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = round(frac * width)
    cells = ["#"] * filled + ["."] * (width - filled)
    if marker is not None and 0.0 <= marker <= 1.0:
        pos = min(int(marker * width), width - 1)
        cells[pos] = "|"
    return "".join(cells)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"


def render_text(agg: LiveAggregate, budget: float = DEFAULT_BUDGET) -> str:
    """One dashboard frame as plain text."""
    s = agg.summary()
    lines = []
    status = "done" if s["done"] else "running"
    lines.append(
        f"repro watch · {status} · tracks {s['tracks']} "
        f"({s['tracks_done']} done) · records {s['records']}"
    )
    lines.append(
        f"intervals {s['intervals']} @ {s['interval_rate']:.1f}/s host · "
        f"sim time {s['sim_time']:.3f} s"
    )
    if s["tiers"]:
        lines.append("tier occupancy:")
        for node, used, cap in s["tiers"]:
            frac = used / cap if cap else 0.0
            lines.append(
                f"  node {node}  [{_bar(frac)}] "
                f"{int(used)}/{int(cap)} pages ({frac * 100:.1f}%)"
            )
    total_time = s["app_time"] + s["profile_time"] + s["migrate_time"]
    if total_time > 0:
        lines.append(
            f"sim time split: app {s['app_time'] / total_time * 100:.1f}% · "
            f"profile {s['profile_time'] / total_time * 100:.1f}% · "
            f"migrate {s['migrate_time'] / total_time * 100:.1f}%"
        )
    overhead = s["profile_overhead"]
    verdict = "OK" if overhead <= budget else "OVER BUDGET"
    lines.append(
        f"profiling overhead {overhead * 100:.2f}% of app time "
        f"[{_bar(overhead / (2 * budget) if budget else 0.0, marker=0.5)}] "
        f"budget {budget * 100:.0f}% {verdict}"
    )
    lines.append(
        f"migration: {s['promoted_pages']} pages promoted, "
        f"{s['demoted_pages']} demoted · "
        f"{_fmt_bytes(s['migration_bandwidth'])}/s sim bandwidth"
    )
    lines.append(
        f"faults {s['faults']} · degraded intervals {s['degraded_intervals']} · "
        f"retries {s['retries_scheduled']:.0f} scheduled / "
        f"{s['retries_succeeded']:.0f} succeeded"
    )
    lines.append(
        f"trace cache: {s['cache_hit_ratio'] * 100:.1f}% hit "
        f"({s['cache_hits']:.0f} hits / {s['cache_misses']:.0f} misses)"
    )
    svc = s["service"]
    if svc:
        lines.append(
            f"service result cache: "
            f"{svc.get('service.cache.hits', 0):.0f} hits / "
            f"{svc.get('service.cache.misses', 0):.0f} misses · "
            f"{svc.get('service.cache.stores', 0):.0f} stores · "
            f"{svc.get('service.cache.corrupt', 0):.0f} corrupt"
        )
        lines.append(
            f"warm fleet: {svc.get('service.warm.hits', 0):.0f} warm hits / "
            f"{svc.get('service.warm.misses', 0):.0f} misses · "
            f"{_fmt_bytes(svc.get('service.warm.cached_bytes', 0))} cached · "
            f"affinity {svc.get('service.warm.affinity_hits', 0):.0f} hits / "
            f"{svc.get('service.warm.affinity_skips', 0):.0f} redirects"
        )
    lines.append(
        f"stream drops: events {s['dropped_events']:.0f} · "
        f"relay backpressure {s['relay_backpressure']:.0f}"
    )
    if agg.invalid_records or agg.schema_mismatch:
        lines.append(
            f"stream problems: {agg.invalid_records} invalid records, "
            f"{agg.schema_mismatch} schema mismatches"
        )
    return "\n".join(lines)


# -- HTML rendering -----------------------------------------------------------

_HTML_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; margin-top: 2px; }
.tile .detail { color: var(--muted); font-size: 12px; margin-top: 2px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin-bottom: 12px;
}
.panel h2 { font-size: 13px; color: var(--text-secondary); margin: 0 0 8px; font-weight: 600; }
.meter-row { display: flex; align-items: center; gap: 10px; margin: 6px 0; font-size: 13px; }
.meter-row .name { width: 90px; color: var(--text-secondary); }
.meter { position: relative; flex: 1; height: 10px; background: var(--grid); border-radius: 4px; }
.meter .fill { position: absolute; inset: 0 auto 0 0; border-radius: 4px; background: var(--series-1); }
.meter .budget { position: absolute; top: -3px; bottom: -3px; width: 2px; background: var(--text-secondary); }
.meter-row .num { width: 200px; text-align: right; font-variant-numeric: tabular-nums; }
.status-ok { color: var(--status-good); font-weight: 600; }
.status-over { color: var(--status-critical); font-weight: 600; }
"""


def _esc(text) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_html(agg: LiveAggregate, budget: float = DEFAULT_BUDGET,
                title: str = "repro watch") -> str:
    """Self-contained static dashboard page (no external assets)."""
    s = agg.summary()
    overhead = s["profile_overhead"]
    over = overhead > budget
    tiles = [
        ("Intervals", f"{s['intervals']}",
         f"{s['interval_rate']:.1f}/s host rate"),
        ("Sim time", f"{s['sim_time']:.3f} s",
         f"{s['tracks']} tracks, {s['tracks_done']} done"),
        ("Migration", f"{_esc(_fmt_bytes(s['migration_bandwidth']))}/s",
         f"{s['promoted_pages']} promoted / {s['demoted_pages']} demoted pages"),
        ("Cache hit", f"{s['cache_hit_ratio'] * 100:.1f}%",
         f"{s['cache_hits']:.0f} hits / {s['cache_misses']:.0f} misses"),
        ("Faults", f"{s['faults']}",
         f"{s['degraded_intervals']} degraded intervals, "
         f"{s['retries_succeeded']:.0f}/{s['retries_scheduled']:.0f} retries ok"),
        ("Stream drops", f"{s['dropped_events'] + s['relay_backpressure']:.0f}",
         f"events {s['dropped_events']:.0f} · relay "
         f"{s['relay_backpressure']:.0f}"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value}</div>'
        f'<div class="detail">{detail}</div></div>'
        for label, value, detail in tiles
    )
    tier_rows = ""
    for node, used, cap in s["tiers"]:
        frac = used / cap if cap else 0.0
        tier_rows += (
            f'<div class="meter-row"><span class="name">node {node}</span>'
            f'<span class="meter"><span class="fill" '
            f'style="width:{min(frac, 1.0) * 100:.1f}%"></span></span>'
            f'<span class="num">{int(used)}/{int(cap)} pages '
            f"({frac * 100:.1f}%)</span></div>"
        )
    overhead_frac = min(overhead / (2 * budget), 1.0) if budget else 0.0
    verdict_cls = "status-over" if over else "status-ok"
    verdict = "✗ over budget" if over else "✓ within budget"
    status = "done" if s["done"] else "running"
    svc = s["service"]
    service_panel = ""
    if svc:
        svc_tiles = [
            ("Result cache",
             f"{svc.get('service.cache.hits', 0):.0f} hits",
             f"{svc.get('service.cache.misses', 0):.0f} misses · "
             f"{svc.get('service.cache.stores', 0):.0f} stores · "
             f"{svc.get('service.cache.corrupt', 0):.0f} corrupt"),
            ("Warm snapshots",
             f"{svc.get('service.warm.hits', 0):.0f} hits",
             f"{svc.get('service.warm.misses', 0):.0f} misses · "
             f"{_esc(_fmt_bytes(svc.get('service.warm.cached_bytes', 0)))}"
             " cached"),
            ("Affinity",
             f"{svc.get('service.warm.affinity_hits', 0):.0f} warm grants",
             f"{svc.get('service.warm.affinity_skips', 0):.0f} redirects "
             "past the FIFO head"),
        ]
        svc_html = "".join(
            f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{value}</div>'
            f'<div class="detail">{detail}</div></div>'
            for label, value, detail in svc_tiles
        )
        service_panel = (
            f'<div class="panel"><h2>Sweep service</h2>'
            f'<div class="tiles">{svc_html}</div></div>'
        )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_HTML_STYLE}</style></head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{status} · {s['records']} stream records · schema v{STREAM_SCHEMA_VERSION}</p>
<div class="tiles">{tile_html}</div>
<div class="panel"><h2>Tier occupancy</h2>{tier_rows or '<p class="sub">no occupancy gauges yet</p>'}</div>
{service_panel}
<div class="panel"><h2>Profiling overhead vs budget</h2>
<div class="meter-row"><span class="name">profiling</span>
<span class="meter"><span class="fill" style="width:{overhead_frac * 100:.1f}%"></span>
<span class="budget" style="left:50%"></span></span>
<span class="num">{overhead * 100:.2f}% of app time ·
<span class="{verdict_cls}">{verdict}</span> ({budget * 100:.0f}%)</span></div>
</div>
</body></html>
"""


# -- sources ------------------------------------------------------------------


def resolve_stream_path(run):
    """``--run`` accepts the obs dir or the stream file itself."""
    import os

    if os.path.isdir(run):
        return os.path.join(run, "stream.ndjson")
    return run


class SocketCollector:
    """Listening endpoint for SocketSink publishers (``--connect``).

    The watcher binds/listens; each connected simulation pushes its
    NDJSON lines, decoded and fed to the aggregate under ``lock``.
    """

    def __init__(self, address: str, agg: LiveAggregate,
                 lock: threading.Lock) -> None:
        import json as _json
        import socket as _socket

        from repro.obs.sinks import parse_address

        self._json = _json
        self.agg = agg
        self.lock = lock
        family, target = parse_address(address)
        if family == "unix":
            import os as _os

            try:
                _os.unlink(target)
            except OSError:
                pass
            self.sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        else:
            self.sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
            self.sock.setsockopt(
                _socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1
            )
        self.sock.bind(target)
        self.sock.listen(8)
        self.sock.settimeout(0.2)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        """Begin accepting publisher connections on a background thread."""
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except OSError:
                continue
            thread = threading.Thread(
                target=self._reader, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _reader(self, conn) -> None:
        conn.settimeout(0.2)
        buffer = b""
        while not self._stop.is_set():
            try:
                chunk = conn.recv(65536)
            except TimeoutError:
                continue
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line, buffer = buffer[:newline], buffer[newline + 1:]
                try:
                    record = self._json.loads(line)
                except ValueError:
                    continue
                with self.lock:
                    self.agg.feed(record)
        try:
            conn.close()
        except OSError:
            pass

    def close(self) -> None:
        self._stop.set()
        try:
            self.sock.close()
        except OSError:
            pass


# -- the watch loop -----------------------------------------------------------


def run_watch(
    run: str | None = None,
    connect: str | None = None,
    refresh: float = 1.0,
    once: bool = False,
    duration: float | None = None,
    wait: float | None = None,
    html: str | None = None,
    budget: float = DEFAULT_BUDGET,
    out=None,
) -> int:
    """Drive the dashboard until the stream ends (or forever).

    Exactly one of ``run``/``connect``.  ``once`` drains what is
    available and prints a single frame (CI's tail-while-running mode);
    ``wait`` bounds how long ``--once`` waits for the stream to appear.
    """
    if out is None:
        out = print
    agg = LiveAggregate()
    lock = threading.Lock()
    stop = threading.Event()
    collector = None

    def write_html() -> None:
        if html:
            with lock:
                page = render_html(agg, budget=budget)
            with open(html, "w", encoding="utf-8") as fh:
                fh.write(page)

    if run is not None:
        path = resolve_stream_path(run)
        if once:
            deadline = time.monotonic() + (wait or 0.0)
            while True:
                # Fresh aggregate per attempt: the file is re-read from
                # the start, so feeding into the old one would double.
                attempt = LiveAggregate()
                for record in iter_ndjson(path):
                    attempt.feed(record)
                agg = attempt
                if agg.records or time.monotonic() >= deadline:
                    break
                time.sleep(0.2)
            write_html()
            out(render_text(agg, budget=budget))
            return 0 if agg.records else 1

        def pump() -> None:
            for record in iter_ndjson(
                path, follow=True, timeout=duration
            ):
                with lock:
                    agg.feed(record)
                if stop.is_set():
                    return

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
    else:
        collector = SocketCollector(connect, agg, lock)
        collector.start()
        if once:
            time.sleep(wait if wait is not None else refresh)
            write_html()
            out(render_text(agg, budget=budget))
            collector.close()
            return 0 if agg.records else 1

    started = time.monotonic()
    is_tty = hasattr(sys.stdout, "isatty") and sys.stdout.isatty()
    try:
        while True:
            time.sleep(refresh)
            with lock:
                frame = render_text(agg, budget=budget)
                done = agg.done
            if is_tty:
                out("\x1b[2J\x1b[H" + frame)
            else:
                out(frame)
            write_html()
            if done:
                break
            if duration is not None and time.monotonic() - started >= duration:
                break
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        if collector is not None:
            collector.close()
        write_html()
    return 0


__all__ = [
    "DEFAULT_BUDGET",
    "LiveAggregate",
    "SocketCollector",
    "TrackState",
    "render_html",
    "render_text",
    "resolve_stream_path",
    "run_watch",
]
