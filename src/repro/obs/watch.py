"""Live telemetry aggregation + the ``repro watch`` dashboard.

Consumes the NDJSON stream records of :mod:`repro.obs.stream` — from a
growing ``stream.ndjson`` file (``--run DIR``) or a listening socket fed
by :class:`~repro.obs.sinks.SocketSink` publishers (``--connect ADDR``;
the watcher is the *server*, simulations push to it, so one dashboard
can aggregate many runs) — and folds them into a :class:`LiveAggregate`
rendered as a refresh-loop terminal dashboard or a static HTML page.

The dashboard answers MTM's online questions: is the run making
intervals, where do pages sit per tier, how much bandwidth is migration
moving, and is profiling overhead holding under the paper's 5% budget
(§4's constraint) — plus the reliability counters (faults, retries,
cache hit ratio, stream drops).
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.events import (
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_FAULT_INJECTED,
    EV_INTERVAL_END,
)
from repro.obs.stream import STREAM_SCHEMA_VERSION, iter_ndjson
from repro.units import PAGE_SIZE

#: The paper's profiling-overhead constraint (§4): profiling may consume
#: at most this fraction of application time.
DEFAULT_BUDGET = 0.05


class TrackState:
    """Rolling state of one stream track (one engine run)."""

    __slots__ = (
        "intervals", "last_interval", "sim_time", "app_time", "prof_time",
        "mig_time", "promoted_pages", "demoted_pages", "degraded",
        "fault_events", "first_end_ts", "last_end_ts", "done",
    )

    def __init__(self) -> None:
        self.intervals = 0
        self.last_interval = -1
        self.sim_time = 0.0
        self.app_time = 0.0
        self.prof_time = 0.0
        self.mig_time = 0.0
        self.promoted_pages = 0
        self.demoted_pages = 0
        self.degraded = 0
        self.fault_events = 0
        self.first_end_ts = None
        self.last_end_ts = None
        self.done = False


class LiveAggregate:
    """Folds stream records into the state the dashboard renders."""

    def __init__(self) -> None:
        self.tracks: dict[str, TrackState] = {}
        self.counters: dict[tuple, float] = {}
        self.gauges: dict[tuple, float] = {}
        self.event_counts: dict[str, int] = {}
        self.records = 0
        self.invalid_records = 0
        self.schema_mismatch = 0
        self.done = False

    def _track(self, name) -> TrackState:
        track = self.tracks.get(name)
        if track is None:
            track = self.tracks[name] = TrackState()
        return track

    def feed(self, record) -> None:
        """Fold one decoded record in (unknown shapes are counted, kept)."""
        if not isinstance(record, dict):
            self.invalid_records += 1
            return
        self.records += 1
        rtype = record.get("type")
        track_name = record.get("track", "")
        if rtype == "meta":
            self._track(track_name)
            if record.get("v") != STREAM_SCHEMA_VERSION:
                self.schema_mismatch += 1
        elif rtype == "event":
            name = record.get("name", "")
            self.event_counts[name] = self.event_counts.get(name, 0) + 1
            track = self._track(track_name)
            if name == EV_INTERVAL_END:
                track.intervals += 1
                track.last_interval = record.get("interval", -1)
                track.sim_time = record.get("sim_time", track.sim_time)
                track.app_time += record.get("app_time", 0.0)
                track.prof_time += record.get("profiling_time", 0.0)
                track.mig_time += record.get("migration_time", 0.0)
                track.promoted_pages += record.get("promoted_pages", 0)
                track.demoted_pages += record.get("demoted_pages", 0)
                if record.get("degraded"):
                    track.degraded += 1
                ts = record.get("ts")
                if isinstance(ts, (int, float)):
                    if track.first_end_ts is None:
                        track.first_end_ts = ts
                    track.last_end_ts = ts
            elif name == EV_FAULT_INJECTED:
                track.fault_events += 1
        elif rtype == "metric":
            name = record.get("name", "")
            labels = tuple(tuple(p) for p in record.get("labels") or ())
            key = (name, labels)
            kind = record.get("kind")
            if kind == "counter":
                self.counters[key] = (
                    self.counters.get(key, 0) + record.get("delta", 0)
                )
            elif kind == "gauge":
                self.gauges[key] = record.get("value", 0)
        elif rtype == "end":
            self._track(track_name).done = True
            self.done = True
        elif rtype not in ("span", "provenance"):
            self.invalid_records += 1

    def feed_lines(self, records) -> None:
        for record in records:
            self.feed(record)

    # -- derived views --------------------------------------------------------

    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def interval_rate(self) -> float:
        """Aggregate host-side intervals/second across tracks."""
        rate = 0.0
        for track in self.tracks.values():
            if (track.intervals >= 2 and track.first_end_ts is not None
                    and track.last_end_ts is not None
                    and track.last_end_ts > track.first_end_ts):
                rate += (track.intervals - 1) / (
                    track.last_end_ts - track.first_end_ts
                )
        return rate

    def tier_occupancy(self) -> list[tuple[int, float, float]]:
        """``(node, used_pages, capacity_pages)`` per tier, latest values."""
        used: dict[int, float] = {}
        cap: dict[int, float] = {}
        for (name, labels), value in self.gauges.items():
            node = next(
                (int(v) for k, v in labels if k == "node"), None
            )
            if node is None:
                continue
            if name == "tier.occupancy_pages":
                used[node] = value
            elif name == "tier.capacity_pages":
                cap[node] = value
        return [
            (node, used[node], cap.get(node, 0.0)) for node in sorted(used)
        ]

    def service_gauges(self) -> dict[str, float]:
        """Latest ``service.*`` gauges (scheduler-side telemetry).

        A ``repro serve --obs-stream`` daemon publishes its result-cache
        counters (``service.cache.*``) and warm-fleet state
        (``service.warm.*``: snapshot hits/misses, cached bytes,
        affinity grants) as gauges; plain simulation streams carry none,
        so an empty dict hides the service panel entirely.
        """
        return {name: value for (name, _labels), value in self.gauges.items()
                if name.startswith("service.")}

    def summary(self) -> dict:
        """Everything the renderers need, as plain values."""
        intervals = sum(t.intervals for t in self.tracks.values())
        app = sum(t.app_time for t in self.tracks.values())
        prof = sum(t.prof_time for t in self.tracks.values())
        mig = sum(t.mig_time for t in self.tracks.values())
        sim_time = sum(t.sim_time for t in self.tracks.values())
        promoted = sum(t.promoted_pages for t in self.tracks.values())
        demoted = sum(t.demoted_pages for t in self.tracks.values())
        moved_bytes = (promoted + demoted) * PAGE_SIZE
        hits = self.counter_total("cache.hits") or self.event_counts.get(
            EV_CACHE_HIT, 0
        )
        misses = self.counter_total("cache.misses") or self.event_counts.get(
            EV_CACHE_MISS, 0
        )
        return {
            "tracks": len(self.tracks),
            "tracks_done": sum(1 for t in self.tracks.values() if t.done),
            "records": self.records,
            "intervals": intervals,
            "interval_rate": self.interval_rate(),
            "sim_time": sim_time,
            "app_time": app,
            "profile_time": prof,
            "migrate_time": mig,
            "profile_overhead": (prof / app) if app > 0 else 0.0,
            "promoted_pages": promoted,
            "demoted_pages": demoted,
            "migration_bandwidth": (moved_bytes / sim_time) if sim_time > 0 else 0.0,
            "degraded_intervals": sum(t.degraded for t in self.tracks.values()),
            "faults": sum(t.fault_events for t in self.tracks.values()),
            "retries_scheduled": self.counter_total("migrate.retries_scheduled"),
            "retries_succeeded": self.counter_total("migrate.retries_succeeded"),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_ratio": (hits / (hits + misses)) if (hits + misses) else 0.0,
            "dropped_events": self.counter_total("obs.dropped_events"),
            "relay_backpressure": self.counter_total("obs.relay_backpressure"),
            "tiers": self.tier_occupancy(),
            "service": self.service_gauges(),
            "done": self.done,
        }


# -- terminal rendering -------------------------------------------------------


def _bar(frac: float, width: int = 24, marker: float | None = None) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = round(frac * width)
    cells = ["#"] * filled + ["."] * (width - filled)
    if marker is not None and 0.0 <= marker <= 1.0:
        pos = min(int(marker * width), width - 1)
        cells[pos] = "|"
    return "".join(cells)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"


def render_text(agg: LiveAggregate, budget: float = DEFAULT_BUDGET) -> str:
    """One dashboard frame as plain text."""
    s = agg.summary()
    lines = []
    status = "done" if s["done"] else "running"
    lines.append(
        f"repro watch · {status} · tracks {s['tracks']} "
        f"({s['tracks_done']} done) · records {s['records']}"
    )
    lines.append(
        f"intervals {s['intervals']} @ {s['interval_rate']:.1f}/s host · "
        f"sim time {s['sim_time']:.3f} s"
    )
    if s["tiers"]:
        lines.append("tier occupancy:")
        for node, used, cap in s["tiers"]:
            frac = used / cap if cap else 0.0
            lines.append(
                f"  node {node}  [{_bar(frac)}] "
                f"{int(used)}/{int(cap)} pages ({frac * 100:.1f}%)"
            )
    total_time = s["app_time"] + s["profile_time"] + s["migrate_time"]
    if total_time > 0:
        lines.append(
            f"sim time split: app {s['app_time'] / total_time * 100:.1f}% · "
            f"profile {s['profile_time'] / total_time * 100:.1f}% · "
            f"migrate {s['migrate_time'] / total_time * 100:.1f}%"
        )
    overhead = s["profile_overhead"]
    verdict = "OK" if overhead <= budget else "OVER BUDGET"
    lines.append(
        f"profiling overhead {overhead * 100:.2f}% of app time "
        f"[{_bar(overhead / (2 * budget) if budget else 0.0, marker=0.5)}] "
        f"budget {budget * 100:.0f}% {verdict}"
    )
    lines.append(
        f"migration: {s['promoted_pages']} pages promoted, "
        f"{s['demoted_pages']} demoted · "
        f"{_fmt_bytes(s['migration_bandwidth'])}/s sim bandwidth"
    )
    lines.append(
        f"faults {s['faults']} · degraded intervals {s['degraded_intervals']} · "
        f"retries {s['retries_scheduled']:.0f} scheduled / "
        f"{s['retries_succeeded']:.0f} succeeded"
    )
    lines.append(
        f"trace cache: {s['cache_hit_ratio'] * 100:.1f}% hit "
        f"({s['cache_hits']:.0f} hits / {s['cache_misses']:.0f} misses)"
    )
    svc = s["service"]
    if svc:
        lines.append(
            f"service result cache: "
            f"{svc.get('service.cache.hits', 0):.0f} hits / "
            f"{svc.get('service.cache.misses', 0):.0f} misses · "
            f"{svc.get('service.cache.stores', 0):.0f} stores · "
            f"{svc.get('service.cache.corrupt', 0):.0f} corrupt"
        )
        lines.append(
            f"warm fleet: {svc.get('service.warm.hits', 0):.0f} warm hits / "
            f"{svc.get('service.warm.misses', 0):.0f} misses · "
            f"{_fmt_bytes(svc.get('service.warm.cached_bytes', 0))} cached · "
            f"affinity {svc.get('service.warm.affinity_hits', 0):.0f} hits / "
            f"{svc.get('service.warm.affinity_skips', 0):.0f} redirects"
        )
    lines.append(
        f"stream drops: events {s['dropped_events']:.0f} · "
        f"relay backpressure {s['relay_backpressure']:.0f}"
    )
    if agg.invalid_records or agg.schema_mismatch:
        lines.append(
            f"stream problems: {agg.invalid_records} invalid records, "
            f"{agg.schema_mismatch} schema mismatches"
        )
    return "\n".join(lines)


# -- HTML rendering -----------------------------------------------------------

_HTML_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
  }
}
.viz-root h1 { font-size: 18px; margin: 0 0 4px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; margin-top: 2px; }
.tile .detail { color: var(--muted); font-size: 12px; margin-top: 2px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin-bottom: 12px;
}
.panel h2 { font-size: 13px; color: var(--text-secondary); margin: 0 0 8px; font-weight: 600; }
.meter-row { display: flex; align-items: center; gap: 10px; margin: 6px 0; font-size: 13px; }
.meter-row .name { width: 90px; color: var(--text-secondary); }
.meter { position: relative; flex: 1; height: 10px; background: var(--grid); border-radius: 4px; }
.meter .fill { position: absolute; inset: 0 auto 0 0; border-radius: 4px; background: var(--series-1); }
.meter .budget { position: absolute; top: -3px; bottom: -3px; width: 2px; background: var(--text-secondary); }
.meter-row .num { width: 200px; text-align: right; font-variant-numeric: tabular-nums; }
.status-ok { color: var(--status-good); font-weight: 600; }
.status-over { color: var(--status-critical); font-weight: 600; }
"""


#: Public aliases: the dataviz tokens are shared with the analytics
#: diff report (``repro diff --html``), which must match the dashboards.
HTML_STYLE = _HTML_STYLE


def _esc(text) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def escape_html(text) -> str:
    """Escape text for embedding in the shared HTML reports."""
    return _esc(text)


def render_html(agg: LiveAggregate, budget: float = DEFAULT_BUDGET,
                title: str = "repro watch") -> str:
    """Self-contained static dashboard page (no external assets)."""
    s = agg.summary()
    overhead = s["profile_overhead"]
    over = overhead > budget
    tiles = [
        ("Intervals", f"{s['intervals']}",
         f"{s['interval_rate']:.1f}/s host rate"),
        ("Sim time", f"{s['sim_time']:.3f} s",
         f"{s['tracks']} tracks, {s['tracks_done']} done"),
        ("Migration", f"{_esc(_fmt_bytes(s['migration_bandwidth']))}/s",
         f"{s['promoted_pages']} promoted / {s['demoted_pages']} demoted pages"),
        ("Cache hit", f"{s['cache_hit_ratio'] * 100:.1f}%",
         f"{s['cache_hits']:.0f} hits / {s['cache_misses']:.0f} misses"),
        ("Faults", f"{s['faults']}",
         f"{s['degraded_intervals']} degraded intervals, "
         f"{s['retries_succeeded']:.0f}/{s['retries_scheduled']:.0f} retries ok"),
        ("Stream drops", f"{s['dropped_events'] + s['relay_backpressure']:.0f}",
         f"events {s['dropped_events']:.0f} · relay "
         f"{s['relay_backpressure']:.0f}"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value}</div>'
        f'<div class="detail">{detail}</div></div>'
        for label, value, detail in tiles
    )
    tier_rows = ""
    for node, used, cap in s["tiers"]:
        frac = used / cap if cap else 0.0
        tier_rows += (
            f'<div class="meter-row"><span class="name">node {node}</span>'
            f'<span class="meter"><span class="fill" '
            f'style="width:{min(frac, 1.0) * 100:.1f}%"></span></span>'
            f'<span class="num">{int(used)}/{int(cap)} pages '
            f"({frac * 100:.1f}%)</span></div>"
        )
    overhead_frac = min(overhead / (2 * budget), 1.0) if budget else 0.0
    verdict_cls = "status-over" if over else "status-ok"
    verdict = "✗ over budget" if over else "✓ within budget"
    status = "done" if s["done"] else "running"
    svc = s["service"]
    service_panel = ""
    if svc:
        svc_tiles = [
            ("Result cache",
             f"{svc.get('service.cache.hits', 0):.0f} hits",
             f"{svc.get('service.cache.misses', 0):.0f} misses · "
             f"{svc.get('service.cache.stores', 0):.0f} stores · "
             f"{svc.get('service.cache.corrupt', 0):.0f} corrupt"),
            ("Warm snapshots",
             f"{svc.get('service.warm.hits', 0):.0f} hits",
             f"{svc.get('service.warm.misses', 0):.0f} misses · "
             f"{_esc(_fmt_bytes(svc.get('service.warm.cached_bytes', 0)))}"
             " cached"),
            ("Affinity",
             f"{svc.get('service.warm.affinity_hits', 0):.0f} warm grants",
             f"{svc.get('service.warm.affinity_skips', 0):.0f} redirects "
             "past the FIFO head"),
        ]
        svc_html = "".join(
            f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{value}</div>'
            f'<div class="detail">{detail}</div></div>'
            for label, value, detail in svc_tiles
        )
        service_panel = (
            f'<div class="panel"><h2>Sweep service</h2>'
            f'<div class="tiles">{svc_html}</div></div>'
        )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_HTML_STYLE}</style></head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{status} · {s['records']} stream records · schema v{STREAM_SCHEMA_VERSION}</p>
<div class="tiles">{tile_html}</div>
<div class="panel"><h2>Tier occupancy</h2>{tier_rows or '<p class="sub">no occupancy gauges yet</p>'}</div>
{service_panel}
<div class="panel"><h2>Profiling overhead vs budget</h2>
<div class="meter-row"><span class="name">profiling</span>
<span class="meter"><span class="fill" style="width:{overhead_frac * 100:.1f}%"></span>
<span class="budget" style="left:50%"></span></span>
<span class="num">{overhead * 100:.2f}% of app time ·
<span class="{verdict_cls}">{verdict}</span> ({budget * 100:.0f}%)</span></div>
</div>
</body></html>
"""


# -- the fleet dashboard ------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _spark(values, width: int = 24) -> str:
    """Unicode sparkline of the last ``width`` samples."""
    tail = [max(0.0, float(v)) for v in list(values)[-width:]]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_CHARS[0] * len(tail)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(steps, int(v / top * steps + 0.5))] for v in tail
    )


class FleetAggregate:
    """State behind ``repro fleet``: per-worker fleet health.

    Two feeding modes, mirrored onto the same summary:

    * **snapshot mode** (``--connect``): :meth:`feed_snapshot` replaces
      the state wholesale with a scheduler fleet snapshot (the ``fleet``
      protocol op / ``/fleet.json``);
    * **stream mode** (``--run``): :meth:`feed` folds ``service.*``
      stream records from a ``repro serve --obs-stream`` NDJSON file.

    :meth:`sample_throughput` turns the completions counter into a
    per-refresh rate series for the sparkline.
    """

    def __init__(self) -> None:
        #: wid -> {"cells_done", "staleness", "in_flight", "warm_keys",
        #:         "lost"}
        self.workers: dict[str, dict] = {}
        self.queue_depth = 0
        self.active_leases = 0
        self.dead_letters = 0
        self.counters = {"leases_granted": 0, "leases_expired": 0,
                         "requeues": 0, "completions": 0}
        self.lease_latency: dict = {}
        self.jobs = {"running": 0, "done": 0, "failed": 0}
        self.cache: dict = {}
        self.warm: dict = {}
        #: rule name -> alert entry (currently firing)
        self.alerts: dict[str, dict] = {}
        self.alert_history = 0
        self.records = 0
        self.stopping = False
        self._throughput: list[float] = []
        self._last_completions = 0.0
        self._last_sample: float | None = None

    # -- snapshot mode ---------------------------------------------------------

    def feed_snapshot(self, snapshot: dict) -> None:
        """Replace the aggregate's state from one ``fleet`` snapshot."""
        self.records += 1
        self.queue_depth = int(snapshot.get("queue_depth", 0))
        self.active_leases = int(snapshot.get("active_leases", 0))
        self.dead_letters = int(snapshot.get("dead_letters", 0))
        for key in self.counters:
            self.counters[key] = int(
                snapshot.get("counters", {}).get(key, self.counters[key]))
        self.lease_latency = dict(snapshot.get("lease_latency", {}))
        self.jobs.update(snapshot.get("jobs", {}))
        self.cache = dict(snapshot.get("cache", {}))
        self.warm = dict(snapshot.get("warm", {}))
        self.stopping = bool(snapshot.get("stopping", False))
        self.workers = {
            wid: {
                "cells_done": entry.get("cells_done", 0),
                "staleness": entry.get("staleness", 0.0),
                "in_flight": [
                    f"{lease.get('workload')}/{lease.get('solution')}"
                    for lease in entry.get("in_flight", [])
                ],
                "warm_keys": entry.get("warm_keys", 0),
                "lost": False,
            }
            for wid, entry in snapshot.get("workers", {}).items()
        }
        firing = {}
        for entry in snapshot.get("alerts", []) or []:
            firing[entry.get("rule", "?")] = dict(entry)
        self.alerts = firing

    # -- stream mode -----------------------------------------------------------

    def _worker(self, wid: str) -> dict:
        worker = self.workers.get(wid)
        if worker is None:
            worker = self.workers[wid] = {
                "cells_done": 0, "staleness": 0.0, "in_flight": [],
                "warm_keys": 0, "lost": False,
            }
        return worker

    def feed(self, record) -> None:
        """Fold one ``service.*`` stream record (others are ignored)."""
        if not isinstance(record, dict):
            return
        rtype = record.get("type")
        if rtype == "event":
            name = record.get("name", "")
            if not name.startswith("service."):
                return
            self.records += 1
            wid = record.get("worker")
            cell = f"{record.get('workload')}/{record.get('solution')}"
            if name == "service.worker_joined":
                self._worker(wid)["lost"] = False
            elif name == "service.worker_lost":
                if wid in self.workers:
                    self.workers[wid]["lost"] = True
                    self.workers[wid]["in_flight"] = []
            elif name == "service.lease_granted":
                self.counters["leases_granted"] += 1
                worker = self._worker(wid)
                if cell not in worker["in_flight"]:
                    worker["in_flight"].append(cell)
            elif name == "service.lease_expired":
                self.counters["leases_expired"] += 1
                if wid in self.workers:
                    flight = self.workers[wid]["in_flight"]
                    if cell in flight:
                        flight.remove(cell)
            elif name == "service.cell_done":
                self.counters["completions"] += 1
                worker = self._worker(wid)
                worker["cells_done"] += 1
                if cell in worker["in_flight"]:
                    worker["in_flight"].remove(cell)
            elif name == "service.cell_requeued":
                self.counters["requeues"] += 1
            elif name == "service.cell_dead_letter":
                self.dead_letters += 1
            elif name == "service.job_submitted":
                self.jobs["running"] += 1
            elif name in ("service.job_done", "service.job_failed"):
                state = "done" if name.endswith("done") else "failed"
                self.jobs["running"] = max(0, self.jobs["running"] - 1)
                self.jobs[state] += 1
            elif name == "service.alert.firing":
                rule = record.get("rule", "?")
                self.alerts[rule] = {
                    "rule": rule, "metric": record.get("metric", ""),
                    "value": record.get("value", 0.0),
                    "threshold": record.get("threshold", 0.0),
                    "description": record.get("description", ""),
                }
                self.alert_history += 1
            elif name == "service.alert.resolved":
                self.alerts.pop(record.get("rule", "?"), None)
                self.alert_history += 1
        elif rtype == "metric" and record.get("kind") == "gauge":
            name = record.get("name", "")
            if name.startswith("service.cache."):
                self.records += 1
                self.cache[name.rsplit(".", 1)[1]] = record.get("value", 0)
            elif name.startswith("service.warm."):
                self.records += 1
                self.warm[name.rsplit(".", 1)[1]] = record.get("value", 0)

    # -- derived ---------------------------------------------------------------

    def sample_throughput(self, now: float) -> None:
        """One rate sample (cells/s since the previous call)."""
        completions = float(self.counters["completions"])
        if self._last_sample is not None and now > self._last_sample:
            rate = (completions - self._last_completions) / (
                now - self._last_sample)
            self._throughput.append(max(0.0, rate))
            if len(self._throughput) > 120:
                del self._throughput[:-120]
        self._last_sample = now
        self._last_completions = completions

    def throughput(self) -> list[float]:
        return list(self._throughput)

    def summary(self) -> dict:
        live = [w for w in self.workers.values() if not w["lost"]]
        return {
            "workers": len(live),
            "workers_lost": sum(1 for w in self.workers.values() if w["lost"]),
            "queue_depth": self.queue_depth,
            "active_leases": self.active_leases or sum(
                len(w["in_flight"]) for w in live),
            "dead_letters": self.dead_letters,
            "counters": dict(self.counters),
            "lease_latency": dict(self.lease_latency),
            "jobs": dict(self.jobs),
            "cache": dict(self.cache),
            "warm": dict(self.warm),
            "alerts": sorted(self.alerts.values(),
                             key=lambda a: a.get("rule", "")),
            "alert_history": self.alert_history,
            "throughput": self.throughput(),
            "records": self.records,
            "stopping": self.stopping,
        }


def render_fleet_text(agg: FleetAggregate) -> str:
    """One ``repro fleet`` frame as plain text."""
    s = agg.summary()
    c = s["counters"]
    lines = []
    status = "draining" if s["stopping"] else "serving"
    lines.append(
        f"repro fleet · {status} · workers {s['workers']} "
        f"(+{s['workers_lost']} lost) · queue {s['queue_depth']} · "
        f"in flight {s['active_leases']}"
    )
    lines.append(
        f"leases: {c['leases_granted']} granted · {c['completions']} done · "
        f"{c['leases_expired']} expired · {c['requeues']} requeued · "
        f"{s['dead_letters']} dead-lettered"
    )
    latency = s["lease_latency"]
    if latency.get("count"):
        lines.append(
            f"lease latency: p50 {latency.get('p50', 0.0) * 1e3:.0f} ms · "
            f"p95 {latency.get('p95', 0.0) * 1e3:.0f} ms · "
            f"p99 {latency.get('p99', 0.0) * 1e3:.0f} ms "
            f"({latency['count']} samples)"
        )
    jobs = s["jobs"]
    lines.append(
        f"jobs: {jobs.get('running', 0)} running · "
        f"{jobs.get('done', 0)} done · {jobs.get('failed', 0)} failed"
    )
    spark = _spark(s["throughput"])
    if spark:
        current = s["throughput"][-1] if s["throughput"] else 0.0
        lines.append(f"throughput {spark} {current:.1f} cells/s")
    cache = s["cache"]
    if cache:
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        ratio = hits / (hits + misses) if (hits + misses) else 0.0
        lines.append(
            f"result cache: {ratio * 100:.0f}% hit ({hits:.0f}/{misses:.0f}) "
            f"· {cache.get('corrupt', 0):.0f} corrupt"
        )
    warm = s["warm"]
    if warm:
        lines.append(
            f"warm snapshots: {warm.get('hits', 0):.0f} hits / "
            f"{warm.get('misses', 0):.0f} misses · "
            f"{_fmt_bytes(warm.get('cached_bytes', 0))} cached"
        )
    if agg.workers:
        lines.append("workers:")
        for wid in sorted(agg.workers):
            worker = agg.workers[wid]
            state = "lost" if worker["lost"] else (
                "busy" if worker["in_flight"] else "idle")
            flight = ", ".join(worker["in_flight"][:3]) or "-"
            stale = worker.get("staleness", 0.0)
            lines.append(
                f"  {wid:<28} {state:<5} cells {worker['cells_done']:<5} "
                f"stale {stale:5.1f}s  warm {worker.get('warm_keys', 0):<3} "
                f"running {flight}"
            )
    if s["alerts"]:
        lines.append("ALERTS:")
        for alert in s["alerts"]:
            lines.append(
                f"  !! {alert['rule']}: {alert.get('description', '')} "
                f"(value {alert.get('value', 0):g}, "
                f"threshold {alert.get('threshold', 0):g})"
            )
    else:
        lines.append(f"alerts: none firing ({s['alert_history']} transitions)")
    return "\n".join(lines)


def render_fleet_html(agg: FleetAggregate,
                      title: str = "repro fleet") -> str:
    """Self-contained static fleet page (same dataviz skin as watch)."""
    s = agg.summary()
    c = s["counters"]
    latency = s["lease_latency"]
    tiles = [
        ("Workers", f"{s['workers']}",
         f"{s['workers_lost']} lost · {s['active_leases']} cells in flight"),
        ("Queue", f"{s['queue_depth']}",
         f"{c['leases_granted']} granted · {c['requeues']} requeued"),
        ("Completions", f"{c['completions']}",
         f"{c['leases_expired']} expired · {s['dead_letters']} dead letters"),
        ("Lease p95", f"{latency.get('p95', 0.0) * 1e3:.0f} ms",
         f"p50 {latency.get('p50', 0.0) * 1e3:.0f} · "
         f"p99 {latency.get('p99', 0.0) * 1e3:.0f} ms "
         f"({latency.get('count', 0)} samples)"),
        ("Jobs", f"{s['jobs'].get('running', 0)} running",
         f"{s['jobs'].get('done', 0)} done · "
         f"{s['jobs'].get('failed', 0)} failed"),
        ("Alerts", f"{len(s['alerts'])}",
         f"{s['alert_history']} transitions"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>'
        f'<div class="detail">{_esc(detail)}</div></div>'
        for label, value, detail in tiles
    )
    worker_rows = ""
    for wid in sorted(agg.workers):
        worker = agg.workers[wid]
        state = "lost" if worker["lost"] else (
            "busy" if worker["in_flight"] else "idle")
        flight = ", ".join(worker["in_flight"][:3]) or "—"
        worker_rows += (
            f'<div class="meter-row"><span class="name">{_esc(wid)}</span>'
            f'<span class="num">{_esc(state)} · '
            f"{worker['cells_done']} cells · "
            f"stale {worker.get('staleness', 0.0):.1f}s · "
            f"{_esc(flight)}</span></div>"
        )
    alert_rows = "".join(
        f'<div class="meter-row"><span class="name status-over">'
        f"{_esc(alert['rule'])}</span>"
        f'<span class="num">{_esc(alert.get("description", ""))} '
        f"(value {alert.get('value', 0):g})</span></div>"
        for alert in s["alerts"]
    ) or '<p class="sub">none firing</p>'
    spark = _spark(s["throughput"], width=48)
    status = "draining" if s["stopping"] else "serving"
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_HTML_STYLE}</style></head>
<body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{status} · {s['records']} updates</p>
<div class="tiles">{tile_html}</div>
<div class="panel"><h2>Throughput (cells/s)</h2>
<p style="font-size:20px;margin:0">{_esc(spark) or '—'}</p></div>
<div class="panel"><h2>Workers</h2>{worker_rows or '<p class="sub">none registered</p>'}</div>
<div class="panel"><h2>Alerts</h2>{alert_rows}</div>
</body></html>
"""


def run_fleet(
    connect: str | None = None,
    run: str | None = None,
    refresh: float = 1.0,
    once: bool = False,
    duration: float | None = None,
    wait: float | None = None,
    html: str | None = None,
    secret: bytes | None = None,
    out=None,
) -> int:
    """Drive the ``repro fleet`` dashboard.

    Exactly one of ``connect`` (poll the scheduler's ``fleet`` op over
    the wire protocol) or ``run`` (tail a ``repro serve --obs-stream``
    NDJSON file).  Returns 0 once the fleet drains / the stream ends,
    1 when nothing was ever observed.
    """
    if out is None:
        out = print
    agg = FleetAggregate()
    lock = threading.Lock()
    stop = threading.Event()
    client = None

    def write_html() -> None:
        if html:
            with lock:
                page = render_fleet_html(agg)
            with open(html, "w", encoding="utf-8") as fh:
                fh.write(page)

    if connect is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(connect, connect_timeout=wait or 10.0,
                               secret=secret)

        def poll_once() -> bool:
            """Fetch one fleet snapshot; False while the daemon is away."""
            from repro.errors import ServiceError

            try:
                snapshot = client.fleet()
            except ServiceError:
                return False
            with lock:
                agg.feed_snapshot(snapshot)
                agg.sample_throughput(time.monotonic())
            return True
    else:
        path = resolve_stream_path(run)

        def pump() -> None:
            for record in iter_ndjson(path, follow=not once,
                                      timeout=duration):
                with lock:
                    agg.feed(record)
                if stop.is_set():
                    return

        if once:
            deadline = time.monotonic() + (wait or 0.0)
            while True:
                attempt = FleetAggregate()
                for record in iter_ndjson(path):
                    attempt.feed(record)
                agg = attempt
                if agg.records or time.monotonic() >= deadline:
                    break
                time.sleep(0.2)
            write_html()
            out(render_fleet_text(agg))
            return 0 if agg.records else 1
        thread = threading.Thread(target=pump, daemon=True)
        thread.start()

    if once and connect is not None:
        observed = poll_once()
        write_html()
        out(render_fleet_text(agg))
        client.close()
        return 0 if observed else 1

    started = time.monotonic()
    is_tty = hasattr(sys.stdout, "isatty") and sys.stdout.isatty()
    try:
        while True:
            time.sleep(refresh)
            if client is not None:
                poll_once()
            else:
                with lock:
                    agg.sample_throughput(time.monotonic())
            with lock:
                frame = render_fleet_text(agg)
                draining = agg.stopping
            if is_tty:
                out("\x1b[2J\x1b[H" + frame)
            else:
                out(frame)
            write_html()
            if draining and not agg.workers:
                break
            if duration is not None and time.monotonic() - started >= duration:
                break
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        if client is not None:
            client.close()
        write_html()
    return 0 if agg.records else 1


# -- sources ------------------------------------------------------------------


def resolve_stream_path(run):
    """``--run`` accepts the obs dir or the stream file itself."""
    import os

    if os.path.isdir(run):
        return os.path.join(run, "stream.ndjson")
    return run


class SocketCollector:
    """Listening endpoint for SocketSink publishers (``--connect``).

    The watcher binds/listens; each connected simulation pushes its
    NDJSON lines, decoded and fed to the aggregate under ``lock``.
    """

    def __init__(self, address: str, agg: LiveAggregate,
                 lock: threading.Lock) -> None:
        import json as _json
        import socket as _socket

        from repro.obs.sinks import parse_address

        self._json = _json
        self.agg = agg
        self.lock = lock
        family, target = parse_address(address)
        if family == "unix":
            import os as _os

            try:
                _os.unlink(target)
            except OSError:
                pass
            self.sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        else:
            self.sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
            self.sock.setsockopt(
                _socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1
            )
        self.sock.bind(target)
        self.sock.listen(8)
        self.sock.settimeout(0.2)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        """Begin accepting publisher connections on a background thread."""
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except OSError:
                continue
            thread = threading.Thread(
                target=self._reader, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _reader(self, conn) -> None:
        conn.settimeout(0.2)
        buffer = b""
        while not self._stop.is_set():
            try:
                chunk = conn.recv(65536)
            except TimeoutError:
                continue
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line, buffer = buffer[:newline], buffer[newline + 1:]
                try:
                    record = self._json.loads(line)
                except ValueError:
                    continue
                with self.lock:
                    self.agg.feed(record)
        try:
            conn.close()
        except OSError:
            pass

    def close(self) -> None:
        self._stop.set()
        try:
            self.sock.close()
        except OSError:
            pass


# -- the watch loop -----------------------------------------------------------


def run_watch(
    run: str | None = None,
    connect: str | None = None,
    refresh: float = 1.0,
    once: bool = False,
    duration: float | None = None,
    wait: float | None = None,
    html: str | None = None,
    budget: float = DEFAULT_BUDGET,
    out=None,
) -> int:
    """Drive the dashboard until the stream ends (or forever).

    Exactly one of ``run``/``connect``.  ``once`` drains what is
    available and prints a single frame (CI's tail-while-running mode);
    ``wait`` bounds how long ``--once`` waits for the stream to appear.
    """
    if out is None:
        out = print
    agg = LiveAggregate()
    lock = threading.Lock()
    stop = threading.Event()
    collector = None

    def write_html() -> None:
        if html:
            with lock:
                page = render_html(agg, budget=budget)
            with open(html, "w", encoding="utf-8") as fh:
                fh.write(page)

    if run is not None:
        path = resolve_stream_path(run)
        if once:
            deadline = time.monotonic() + (wait or 0.0)
            while True:
                # Fresh aggregate per attempt: the file is re-read from
                # the start, so feeding into the old one would double.
                attempt = LiveAggregate()
                for record in iter_ndjson(path):
                    attempt.feed(record)
                agg = attempt
                if agg.records or time.monotonic() >= deadline:
                    break
                time.sleep(0.2)
            write_html()
            out(render_text(agg, budget=budget))
            return 0 if agg.records else 1

        def pump() -> None:
            for record in iter_ndjson(
                path, follow=True, timeout=duration
            ):
                with lock:
                    agg.feed(record)
                if stop.is_set():
                    return

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
    else:
        collector = SocketCollector(connect, agg, lock)
        collector.start()
        if once:
            time.sleep(wait if wait is not None else refresh)
            write_html()
            out(render_text(agg, budget=budget))
            collector.close()
            return 0 if agg.records else 1

    started = time.monotonic()
    is_tty = hasattr(sys.stdout, "isatty") and sys.stdout.isatty()
    try:
        while True:
            time.sleep(refresh)
            with lock:
                frame = render_text(agg, budget=budget)
                done = agg.done
            if is_tty:
                out("\x1b[2J\x1b[H" + frame)
            else:
                out(frame)
            write_html()
            if done:
                break
            if duration is not None and time.monotonic() - started >= duration:
                break
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        if collector is not None:
            collector.close()
        write_html()
    return 0


__all__ = [
    "DEFAULT_BUDGET",
    "FleetAggregate",
    "HTML_STYLE",
    "escape_html",
    "LiveAggregate",
    "SocketCollector",
    "TrackState",
    "render_fleet_html",
    "render_fleet_text",
    "render_html",
    "render_text",
    "resolve_stream_path",
    "run_fleet",
    "run_watch",
]
