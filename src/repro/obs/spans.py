"""Span tracer: nested host-wall-time phases, Perfetto-exportable.

A span covers one phase of work (an interval, a scan, a planner retry
loop) with a start time and duration on the *host* clock.  Spans nest:
the tracer keeps an explicit stack, and each finished span records its
depth so viewers can reconstruct the hierarchy.  Simulated-time context
(interval index, sim clock) travels in ``args`` — the tracer never reads
or advances the simulation, which is what keeps tracing bit-identity
neutral.

Export is the Chrome trace-event format (``ph: "X"`` complete events,
microsecond timestamps) understood by ``ui.perfetto.dev`` and
``chrome://tracing``; see :mod:`repro.obs.export` for the file writer.

Cross-process stitching
-----------------------

A :class:`TraceContext` carries one distributed trace's identity — a
``trace_id`` minted per sweep job plus the scheduler-side parent span id
— across process boundaries.  The sweep scheduler mints one per job
(:func:`mint_trace_context`), ships it to workers inside lease grants,
and workers echo it back attached to their cell spans, so the per-job
merged trace (:mod:`repro.service.tracing`) can nest every worker's
cell spans under the scheduler's job span.  Because each process times
spans against its own ``perf_counter`` origin, every
:class:`SpanTracer` also records the wall-clock ``epoch`` of that
origin; the stitcher aligns tracks by wall time.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter, time as wall_time


@dataclass
class Span:
    """One finished phase.

    Attributes:
        name: phase label, dotted for sub-phases (``scan.classify``).
        cat: coarse category used for Perfetto track colouring.
        ts: host seconds since the owning tracer was created.
        dur: host seconds the phase took.
        depth: nesting depth at the time the span was opened.
        args: small JSON-serialisable context (interval, counts, ...).
    """

    name: str
    cat: str
    ts: float
    dur: float
    depth: int
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceContext:
    """Identity of one distributed trace, shipped across processes.

    Attributes:
        trace_id: opaque hex id, one per sweep job.
        parent_span: name of the scheduler-side span worker spans nest
            under (the job span).
        job_id: owning job — redundant with the lease but kept so a
            trace payload is self-describing.
    """

    trace_id: str
    parent_span: str
    job_id: str

    def as_wire(self) -> dict:
        """Plain dict for the wire protocol (additive message field)."""
        return {"trace_id": self.trace_id, "parent_span": self.parent_span,
                "job_id": self.job_id}

    @classmethod
    def from_wire(cls, payload: dict) -> "TraceContext":
        return cls(trace_id=str(payload["trace_id"]),
                   parent_span=str(payload["parent_span"]),
                   job_id=str(payload.get("job_id", "")))


def mint_trace_context(job_id: str) -> TraceContext:
    """New trace identity for one job (parent span = ``job:<id>``)."""
    return TraceContext(trace_id=uuid.uuid4().hex, parent_span=f"job:{job_id}",
                        job_id=job_id)


class SpanTracer:
    """Records nested spans against a private host-clock origin.

    ``epoch`` is the wall-clock time of the perf_counter origin, so a
    remote consumer can place this tracer's relative timestamps on a
    shared wall-clock timeline (cross-process trace stitching).
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self._origin = perf_counter()
        self.epoch = wall_time()

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args):
        """Context manager timing one phase; nests freely."""
        depth = len(self._stack)
        self._stack.append(name)
        start = perf_counter()
        try:
            yield
        finally:
            dur = perf_counter() - start
            self._stack.pop()
            self.spans.append(
                Span(name, cat, start - self._origin, dur, depth, args)
            )

    def total(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.dur for s in self.spans if s.name == name)

    def counts(self) -> dict[str, int]:
        """Span counts by name."""
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out


def spans_to_trace_events(spans, pid: int = 1, tid: int = 0) -> list[dict]:
    """Chrome trace-event dicts (``ph: "X"``) for a span list."""
    out = []
    for span in spans:
        out.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.ts * 1e6,
            "dur": span.dur * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(span.args),
        })
    return out


def spans_as_dicts(spans) -> list[dict]:
    """JSON/pickle-safe dicts for shipping spans across processes."""
    return [{"name": s.name, "cat": s.cat, "ts": s.ts, "dur": s.dur,
             "depth": s.depth, "args": dict(s.args)} for s in spans]


def spans_from_dicts(payload) -> list[Span]:
    """Inverse of :func:`spans_as_dicts` (tolerates missing args)."""
    return [Span(name=str(d["name"]), cat=str(d.get("cat", "engine")),
                 ts=float(d["ts"]), dur=float(d["dur"]),
                 depth=int(d.get("depth", 0)), args=dict(d.get("args", {})))
            for d in payload]


def events_to_trace_events(events, pid: int = 1, tid: int = 0) -> list[dict]:
    """Chrome instant events (``ph: "i"``) for an event list."""
    out = []
    for event in events:
        out.append({
            "name": event.name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": event.ts * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"sim_time": event.sim_time, "interval": event.interval,
                     **event.fields},
        })
    return out


__all__ = ["Span", "SpanTracer", "TraceContext", "events_to_trace_events",
           "mint_trace_context", "spans_as_dicts", "spans_from_dicts",
           "spans_to_trace_events"]
