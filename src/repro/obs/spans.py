"""Span tracer: nested host-wall-time phases, Perfetto-exportable.

A span covers one phase of work (an interval, a scan, a planner retry
loop) with a start time and duration on the *host* clock.  Spans nest:
the tracer keeps an explicit stack, and each finished span records its
depth so viewers can reconstruct the hierarchy.  Simulated-time context
(interval index, sim clock) travels in ``args`` — the tracer never reads
or advances the simulation, which is what keeps tracing bit-identity
neutral.

Export is the Chrome trace-event format (``ph: "X"`` complete events,
microsecond timestamps) understood by ``ui.perfetto.dev`` and
``chrome://tracing``; see :mod:`repro.obs.export` for the file writer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class Span:
    """One finished phase.

    Attributes:
        name: phase label, dotted for sub-phases (``scan.classify``).
        cat: coarse category used for Perfetto track colouring.
        ts: host seconds since the owning tracer was created.
        dur: host seconds the phase took.
        depth: nesting depth at the time the span was opened.
        args: small JSON-serialisable context (interval, counts, ...).
    """

    name: str
    cat: str
    ts: float
    dur: float
    depth: int
    args: dict = field(default_factory=dict)


class SpanTracer:
    """Records nested spans against a private host-clock origin."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self._origin = perf_counter()

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args):
        """Context manager timing one phase; nests freely."""
        depth = len(self._stack)
        self._stack.append(name)
        start = perf_counter()
        try:
            yield
        finally:
            dur = perf_counter() - start
            self._stack.pop()
            self.spans.append(
                Span(name, cat, start - self._origin, dur, depth, args)
            )

    def total(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.dur for s in self.spans if s.name == name)

    def counts(self) -> dict[str, int]:
        """Span counts by name."""
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out


def spans_to_trace_events(spans, pid: int = 1, tid: int = 0) -> list[dict]:
    """Chrome trace-event dicts (``ph: "X"``) for a span list."""
    out = []
    for span in spans:
        out.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.ts * 1e6,
            "dur": span.dur * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(span.args),
        })
    return out


def events_to_trace_events(events, pid: int = 1, tid: int = 0) -> list[dict]:
    """Chrome instant events (``ph: "i"``) for an event list."""
    out = []
    for event in events:
        out.append({
            "name": event.name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": event.ts * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"sim_time": event.sim_time, "interval": event.interval,
                     **event.fields},
        })
    return out


__all__ = ["Span", "SpanTracer", "events_to_trace_events",
           "spans_to_trace_events"]
