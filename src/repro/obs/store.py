"""Deterministic columnar store for offline observability analytics.

The analytics engine (:mod:`repro.obs.analytics`) folds a run
directory's JSON artifacts into numpy column arrays and persists them
here as a versioned ``.npz``-style bundle (``analytics.npz``): a plain
zip whose members are one ``.npy`` file per column plus a
``manifest.json`` describing tables, dtypes, dictionaries, and run
metadata.  Two properties are load-bearing:

* **Determinism** — the writer fixes every zip timestamp, orders
  members canonically, and stores (never deflates) the payload, so
  ingesting the same directory twice produces *byte-identical* bundles.
  ``np.savez`` cannot promise this (it stamps member mtimes), hence the
  hand-rolled writer.
* **Laziness** — the reader parses only the manifest up front; each
  column array is decoded from the zip member on first access, so a
  query touching one table never pays for the others.

String-valued columns are dictionary-encoded: the column stores int32
codes and the manifest stores the code→string list, which keeps the
bundle compact and makes group-bys integer operations.

:func:`sim_fingerprint` hashes only the *simulation-domain* content —
host timestamps, ``cache.*``/``perf.*``/``obs.*`` telemetry, and span
wall-clock are excluded — extending the serial/pooled identity
guarantee of ``tests/test_obs_identity.py`` to the analytics layer.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import ConfigError

#: Bump when a table or column changes shape; the validator checks it.
STORE_SCHEMA_VERSION = 1

#: Default bundle name inside a run directory.
STORE_NAME = "analytics.npz"

#: Column kinds: fixed-width numerics, or ``cat`` (int32 codes into a
#: per-column dictionary held in the manifest).
_KIND_DTYPES = {"i64": np.int64, "i32": np.int32, "f64": np.float64,
                "cat": np.int32}

#: Numeric event fields lifted into dedicated columns (NaN when the
#: event does not carry the field); everything else in an event's
#: payload is dropped at ingest — the schema is closed on purpose.
EVENT_FIELD_COLUMNS = ("pages", "src", "dst", "score", "count",
                      "attempt", "nbytes")

#: Closed table schemas, column order significant (it is the member
#: order inside the bundle and the row tuple order in fingerprints).
TABLE_SCHEMAS: dict[str, dict[str, str]] = {
    "provenance": {
        "interval": "i64", "page_start": "i64", "npages": "i64",
        "src_node": "i32", "dst_node": "i32", "attempt": "i32",
        "score": "f64", "stage": "cat", "reason": "cat",
    },
    "events": {
        "interval": "i64", "ts": "f64", "sim_time": "f64",
        "name": "cat", "track": "cat",
        **{field: "f64" for field in EVENT_FIELD_COLUMNS},
    },
    "metrics": {
        "name": "cat", "kind": "cat", "value": "f64",
        "count": "f64", "total": "f64", "min": "f64", "max": "f64",
    },
    "spans": {
        "name": "cat", "track": "cat", "ts": "f64", "dur": "f64",
    },
    "journal": {
        "op": "cat", "job": "cat", "workload": "cat", "solution": "cat",
        "source": "cat", "state": "cat", "attempt": "i32",
    },
}

#: Metric/event name prefixes that are host-side, not simulated (see
#: tests/test_obs_identity.py); excluded from :func:`sim_fingerprint`.
HOST_METRIC_PREFIXES = ("cache.", "perf.", "obs.")
HOST_EVENT_PREFIXES = ("cache.",)
#: Name substrings marking host wall-clock metrics outside the host
#: prefixes (e.g. ``engine.interval_host_seconds``).
HOST_METRIC_SUBSTRINGS = ("host_seconds",)
#: Event columns carrying host wall-clock, excluded from the fingerprint.
_HOST_EVENT_COLUMNS = ("ts",)


class TableBuilder:
    """Accumulates one table's rows, then freezes into column arrays.

    Categorical values are dictionary-encoded in first-appearance order,
    so a deterministic row order yields deterministic dictionaries.
    """

    def __init__(self, name: str) -> None:
        if name not in TABLE_SCHEMAS:
            raise ConfigError(f"unknown analytics table {name!r}")
        self.name = name
        self.schema = TABLE_SCHEMAS[name]
        self._cells: dict[str, list] = {col: [] for col in self.schema}
        self._dicts: dict[str, dict[str, int]] = {
            col: {} for col, kind in self.schema.items() if kind == "cat"
        }

    def add(self, **values) -> None:
        for col, kind in self.schema.items():
            value = values.get(col)
            if kind == "cat":
                codes = self._dicts[col]
                text = "" if value is None else str(value)
                code = codes.setdefault(text, len(codes))
                self._cells[col].append(code)
            elif value is None:
                self._cells[col].append(np.nan if kind == "f64" else -1)
            else:
                self._cells[col].append(value)

    def __len__(self) -> int:
        return len(self._cells[next(iter(self.schema))])

    def freeze(self) -> dict:
        """Snapshot into ``{"columns": {col: array}, "dicts": {col: strings}}``."""
        columns = {
            col: np.asarray(cells, dtype=_KIND_DTYPES[self.schema[col]])
            for col, cells in self._cells.items()
        }
        dicts = {col: list(codes) for col, codes in self._dicts.items()}
        return {"columns": columns, "dicts": dicts}


def _member_bytes(array: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.lib.format.write_array(buf, np.ascontiguousarray(array),
                              allow_pickle=False)
    return buf.getvalue()


def write_store(path, tables: dict[str, dict], meta: dict | None = None) -> Path:
    """Persist frozen tables (from :meth:`TableBuilder.freeze`) to ``path``.

    Byte-deterministic: fixed zip timestamps (the DOS epoch), stored
    (uncompressed) members, canonical member order, canonical manifest
    JSON.  Determinism beats compression here — the idempotence test
    compares raw bundle bytes, and columns are small after dictionary
    encoding.
    """
    path = Path(path)
    manifest: dict = {
        "version": STORE_SCHEMA_VERSION,
        "meta": dict(sorted((meta or {}).items())),
        "tables": {},
    }
    members: list[tuple[str, bytes]] = []
    for table in sorted(tables):
        frozen = tables[table]
        columns, dicts = frozen["columns"], frozen["dicts"]
        schema = TABLE_SCHEMAS[table]
        rows = {len(arr) for arr in columns.values()}
        if len(rows) > 1:
            raise ConfigError(f"table {table!r} has ragged columns: {rows}")
        manifest["tables"][table] = {
            "rows": int(rows.pop()) if rows else 0,
            "columns": list(schema),
            "dicts": {col: dicts.get(col, []) for col, kind in schema.items()
                      if kind == "cat"},
        }
        for col in schema:
            members.append((f"{table}.{col}.npy",
                            _member_bytes(columns[col])))
    manifest_bytes = json.dumps(manifest, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        for name, data in [("manifest.json", manifest_bytes)] + members:
            info = zipfile.ZipInfo(name, date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o600 << 16
            zf.writestr(info, data)
    return path


class Store:
    """Lazy reader over a bundle written by :func:`write_store`.

    Only the manifest is parsed at open; column arrays decode from
    their zip members on first access and are cached thereafter.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigError(f"no analytics store at {self.path} — "
                              f"ingest one with `repro query --run DIR`")
        self._zf = zipfile.ZipFile(self.path, "r")
        try:
            manifest_bytes = self._zf.read("manifest.json")
        except KeyError:
            raise ConfigError(
                f"{self.path} has no manifest.json — not an analytics store"
            ) from None
        self.manifest = json.loads(manifest_bytes)
        self.version = self.manifest.get("version")
        self.meta: dict = self.manifest.get("meta", {})
        self._cache: dict[tuple[str, str], np.ndarray] = {}

    # -- context manager -----------------------------------------------------

    def close(self) -> None:
        self._zf.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- access --------------------------------------------------------------

    def tables(self) -> list[str]:
        return sorted(self.manifest.get("tables", {}))

    def rows(self, table: str) -> int:
        return int(self._table_manifest(table)["rows"])

    def columns(self, table: str) -> list[str]:
        return list(self._table_manifest(table)["columns"])

    def _table_manifest(self, table: str) -> dict:
        try:
            return self.manifest["tables"][table]
        except KeyError:
            raise ConfigError(
                f"store {self.path} has no table {table!r} "
                f"(tables: {', '.join(self.tables()) or 'none'})"
            ) from None

    def column(self, table: str, col: str) -> np.ndarray:
        """Raw column array (int32 codes for categorical columns)."""
        key = (table, col)
        if key not in self._cache:
            if col not in self._table_manifest(table)["columns"]:
                raise ConfigError(f"table {table!r} has no column {col!r}")
            data = self._zf.read(f"{table}.{col}.npy")
            self._cache[key] = np.lib.format.read_array(
                io.BytesIO(data), allow_pickle=False)
        return self._cache[key]

    def strings(self, table: str, col: str) -> list[str]:
        """Code→string dictionary of a categorical column."""
        dicts = self._table_manifest(table).get("dicts", {})
        if col not in dicts:
            raise ConfigError(f"column {table}.{col} is not categorical")
        return list(dicts[col])

    def decoded(self, table: str, col: str) -> np.ndarray:
        """Categorical column as an array of strings."""
        codes = self.column(table, col)
        return np.asarray(self.strings(table, col), dtype=object)[codes]

    def is_categorical(self, table: str, col: str) -> bool:
        return TABLE_SCHEMAS[table].get(col) == "cat"


def validate_store(store: "Store | str | Path") -> list[str]:
    """Structural problems with an analytics store ([] when valid)."""
    if not isinstance(store, Store):
        try:
            store = Store(store)
        except (ConfigError, zipfile.BadZipFile, ValueError) as exc:
            return [str(exc)]
    problems: list[str] = []
    if store.version != STORE_SCHEMA_VERSION:
        problems.append(f"schema version {store.version!r} "
                        f"!= {STORE_SCHEMA_VERSION}")
    for table, entry in sorted(store.manifest.get("tables", {}).items()):
        if table not in TABLE_SCHEMAS:
            problems.append(f"unknown table {table!r}")
            continue
        schema = TABLE_SCHEMAS[table]
        if list(entry.get("columns", [])) != list(schema):
            problems.append(f"{table}: columns {entry.get('columns')} "
                            f"!= schema {list(schema)}")
            continue
        rows = entry.get("rows")
        for col, kind in schema.items():
            try:
                arr = store.column(table, col)
            except Exception as exc:  # missing/corrupt member
                problems.append(f"{table}.{col}: unreadable ({exc})")
                continue
            if arr.ndim != 1 or len(arr) != rows:
                problems.append(f"{table}.{col}: length {len(arr)} "
                                f"!= rows {rows}")
            if arr.dtype != _KIND_DTYPES[kind]:
                problems.append(f"{table}.{col}: dtype {arr.dtype} "
                                f"!= {_KIND_DTYPES[kind].__name__}")
            if kind == "cat" and len(arr):
                ncodes = len(entry.get("dicts", {}).get(col, []))
                if arr.min(initial=0) < 0 or arr.max(initial=-1) >= ncodes:
                    problems.append(f"{table}.{col}: code out of range "
                                    f"(dictionary has {ncodes} entries)")
    return problems


def _hash_rows(digest, columns: list[np.ndarray]) -> None:
    for row in zip(*[c.tolist() for c in columns]):
        digest.update(repr(row).encode("utf-8"))
        digest.update(b"\n")


def sim_fingerprint(store: Store) -> str:
    """Hex digest of the store's simulation-domain content.

    Two stores built from a serial and a ``workers=K`` run of the same
    matrix must agree here: host wall-clock columns, ``cache.*`` events,
    ``cache.*``/``perf.*``/``obs.*`` metrics, and the spans table (pure
    wall-clock) are excluded; event rows are compared track-by-track in
    each track's own emission order, which the ingest canonicalization
    already guarantees.
    """
    digest = hashlib.sha256()
    tables = set(store.tables())
    if "provenance" in tables:
        digest.update(b"provenance\n")
        schema = TABLE_SCHEMAS["provenance"]
        cols = [store.decoded("provenance", c)
                if schema[c] == "cat" else store.column("provenance", c)
                for c in schema]
        _hash_rows(digest, cols)
    if "events" in tables:
        digest.update(b"events\n")
        names = store.decoded("events", "name")
        keep = ~np.array(
            [n.startswith(HOST_EVENT_PREFIXES) for n in names], dtype=bool
        ) if len(names) else np.zeros(0, dtype=bool)
        schema = TABLE_SCHEMAS["events"]
        cols = []
        for col in schema:
            if col in _HOST_EVENT_COLUMNS:
                continue
            arr = (store.decoded("events", col) if schema[col] == "cat"
                   else store.column("events", col))
            cols.append(arr[keep])
        _hash_rows(digest, cols)
    if "metrics" in tables:
        digest.update(b"metrics\n")
        names = store.decoded("metrics", "name")
        keep = ~np.array(
            [n.startswith(HOST_METRIC_PREFIXES)
             or any(s in n for s in HOST_METRIC_SUBSTRINGS)
             for n in names], dtype=bool
        ) if len(names) else np.zeros(0, dtype=bool)
        schema = TABLE_SCHEMAS["metrics"]
        cols = [(store.decoded("metrics", c) if schema[c] == "cat"
                 else store.column("metrics", c))[keep] for c in schema]
        _hash_rows(digest, cols)
    if "journal" in tables:
        digest.update(b"journal\n")
        schema = TABLE_SCHEMAS["journal"]
        cols = [store.decoded("journal", c) if schema[c] == "cat"
                else store.column("journal", c) for c in schema]
        _hash_rows(digest, cols)
    return digest.hexdigest()


__all__ = [
    "EVENT_FIELD_COLUMNS",
    "HOST_EVENT_PREFIXES",
    "HOST_METRIC_PREFIXES",
    "HOST_METRIC_SUBSTRINGS",
    "STORE_NAME",
    "STORE_SCHEMA_VERSION",
    "Store",
    "TABLE_SCHEMAS",
    "TableBuilder",
    "sim_fingerprint",
    "validate_store",
    "write_store",
]
