"""Offline analytics over observability artifacts.

Three layers on top of :mod:`repro.obs.store`:

* **Ingest** — :func:`ingest_run` folds a run/sweep/service directory
  (``events.jsonl``, ``metrics.json``, ``provenance.jsonl``,
  ``trace.json``, ``stream.ndjson``, ``journal.ndjson``; plain or
  ``.gz``) into the deterministic columnar bundle ``analytics.npz``.
  Final export artifacts are preferred over the live stream — the relay
  drain order of a pooled run is not deterministic, the export is.
  Rows are canonicalized (events stably sorted by track, provenance by
  its full key) so the bundle bytes do not depend on absorb order.
* **Analyses** — :func:`dwell_time`, :func:`top_pages`,
  :func:`lifecycle_funnel`, :func:`ping_pong`, and a generic
  :func:`query_table` verb with filter/group/top-N.  Each returns a
  machine-readable dict; the ping-pong report doubles as a deny-list
  seed for the planned admission-control plane (its ``deny_ranges`` are
  page ranges an admission filter can refuse to re-promote).
* **Diff** — :func:`diff_runs` compares two runs metric-by-metric with
  verdicts and bootstrap confidence intervals (reusing
  :mod:`repro.bench.stats`); :func:`diff_bench` compares the newest
  ``BENCH_history.jsonl`` record against the trajectory of earlier ones.

Page-resolved analyses (dwell, ping-pong, top pages) read the merged
provenance log.  A multi-cell matrix merges every cell's provenance
into one log without track tags, so page identities collide across
cells; run those analyses on single-run directories (``repro run
--obs``) for exact answers.  Hotness comes from the planner's region
scores — the artifacts carry no raw per-access counts — so "access
share" here is *hotness-mass share*.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.obs.provenance import (
    STAGE_COMMITTED,
    STAGE_PLANNED,
    ProvenanceLog,
    ProvenanceRecord,
)
from repro.obs.store import (
    EVENT_FIELD_COLUMNS,
    STORE_NAME,
    Store,
    TableBuilder,
    validate_store,
    write_store,
)

#: Report schema version stamped into every analysis dict.
REPORT_VERSION = 1

_PROV_SORT_KEY = ("interval", "page_start", "npages", "src_node",
                  "dst_node", "stage", "attempt", "score", "reason",
                  "detail")


# -- artifact resolution -------------------------------------------------------


def find_artifact(run_dir: Path, name: str) -> Path | None:
    """Resolve ``name`` in ``run_dir``, accepting a gzipped variant."""
    for candidate in (run_dir / name, run_dir / f"{name}.gz"):
        if candidate.exists():
            return candidate
    return None


# -- ingest --------------------------------------------------------------------


def _ingest_provenance(builder: TableBuilder, records) -> int:
    ordered = sorted(
        records, key=lambda r: tuple(getattr(r, k) for k in _PROV_SORT_KEY)
    )
    for r in ordered:
        builder.add(interval=r.interval, page_start=r.page_start,
                    npages=r.npages, src_node=r.src_node,
                    dst_node=r.dst_node, attempt=r.attempt, score=r.score,
                    stage=r.stage, reason=r.reason)
    return len(ordered)


def _event_row(builder: TableBuilder, record: dict) -> None:
    fields = {f: record.get(f) for f in EVENT_FIELD_COLUMNS
              if isinstance(record.get(f), (int, float))}
    builder.add(interval=int(record.get("interval", -1)),
                ts=float(record.get("ts", 0.0)),
                sim_time=float(record.get("sim_time", 0.0)),
                name=record.get("name", ""),
                track=record.get("track", ""), **fields)


def _ingest_events(builder: TableBuilder, rows: list[dict]) -> None:
    # Stable sort by track: absorb order (serial = cell order, pooled =
    # completion order) must not leak into the bundle; within a track
    # the simulation's own emission order is preserved.
    rows.sort(key=lambda r: str(r.get("track", "")))
    for record in rows:
        _event_row(builder, record)


def _ingest_metrics(builder: TableBuilder, data: dict) -> None:
    rows: list[tuple] = []
    for name, value in data.get("counters", {}).items():
        rows.append(("counter", name, float(value), None, None, None, None))
    for name, value in data.get("gauges", {}).items():
        rows.append(("gauge", name, float(value), None, None, None, None))
    for name, stat in data.get("histograms", {}).items():
        rows.append(("histogram", name, float(stat.get("mean", 0.0)),
                     float(stat.get("count", 0)), float(stat.get("total", 0.0)),
                     float(stat.get("min", 0.0)), float(stat.get("max", 0.0))))
    for kind, name, value, count, total, mn, mx in sorted(
            rows, key=lambda r: (r[0], r[1])):
        builder.add(name=name, kind=kind, value=value, count=count,
                    total=total, min=mn, max=mx)


def _ingest_spans(builder: TableBuilder, trace: dict) -> None:
    tracks: dict[tuple[int, int], str] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[(ev.get("pid", 0), ev.get("tid", 0))] = (
                ev.get("args", {}).get("name", ""))
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        track = tracks.get((ev.get("pid", 0), ev.get("tid", 0)), "")
        builder.add(name=ev.get("name", ""), track=track,
                    ts=float(ev.get("ts", 0.0)), dur=float(ev.get("dur", 0.0)))


def _ingest_journal(builder: TableBuilder, state_dir: Path) -> None:
    from repro.service.journal import Journal

    for record in Journal(state_dir).records():
        builder.add(op=record.get("op", ""),
                    job=record.get("job_id", ""),
                    workload=record.get("workload", ""),
                    solution=record.get("solution", ""),
                    source=record.get("source", ""),
                    state=record.get("state", ""),
                    attempt=int(record.get("attempt", -1)))


def _metric_key(record: dict) -> str:
    labels = sorted((str(k), str(v)) for k, v in (record.get("labels") or []))
    name = record.get("name", "")
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _ingest_stream(path: Path, events: TableBuilder,
                   prov_records: list) -> dict:
    """Reconstruct events/provenance/metrics from a live NDJSON stream.

    Fallback for directories that only have ``stream.ndjson`` (a run
    SIGKILLed before export).  Counters stream as deltas and are summed;
    gauges keep the last value; histograms keep the last cumulative
    summary — matching what the export would have written.
    """
    from repro.obs.stream import iter_ndjson

    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    rows: list[dict] = []
    for record in iter_ndjson(path):
        rtype = record.get("type") if isinstance(record, dict) else None
        if rtype == "event":
            rows.append(record)
        elif rtype == "provenance":
            prov_records.append(ProvenanceRecord(
                interval=int(record.get("interval", -1)),
                stage=str(record.get("stage", "")),
                page_start=int(record.get("page_start", 0)),
                npages=int(record.get("npages", 0)),
                src_node=int(record.get("src_node", -1)),
                dst_node=int(record.get("dst_node", -1)),
                reason=str(record.get("reason", "") or ""),
                score=float(record.get("score", 0.0)),
                attempt=int(record.get("attempt", 0)),
                detail=str(record.get("detail", "") or ""),
            ))
        elif rtype == "metric":
            key = _metric_key(record)
            kind = record.get("kind")
            if kind == "counter":
                counters[key] = counters.get(key, 0.0) + float(
                    record.get("delta", 0.0))
            elif kind == "gauge":
                gauges[key] = float(record.get("value", 0.0))
            elif kind == "histogram":
                count = float(record.get("count", 0))
                total = float(record.get("total", 0.0))
                histograms[key] = {
                    "count": count, "total": total,
                    "min": float(record.get("min", 0.0)),
                    "max": float(record.get("max", 0.0)),
                    "mean": total / count if count else 0.0,
                }
    _ingest_events(events, rows)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def ingest_run(run_dir, store_path=None) -> Path:
    """Fold one artifact directory into ``analytics.npz``; returns its path.

    Accepts a run/sweep export (``--obs-out``), a service state
    directory (journal + optional stream), or a bare ``--obs-stream``
    directory that never exported.  Deterministic: ingesting the same
    directory twice writes byte-identical bundles.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ConfigError(f"{run_dir} is not a directory")
    store_path = Path(store_path) if store_path else run_dir / STORE_NAME

    metrics_path = find_artifact(run_dir, "metrics.json")
    events_path = find_artifact(run_dir, "events.jsonl")
    prov_path = find_artifact(run_dir, "provenance.jsonl")
    trace_path = find_artifact(run_dir, "trace.json")
    stream_path = find_artifact(run_dir, "stream.ndjson")
    journal_path = find_artifact(run_dir, "journal.ndjson")
    if not any((metrics_path, events_path, prov_path, stream_path,
                journal_path)):
        raise ConfigError(
            f"{run_dir} holds no observability artifacts — was the run "
            f"made with --obs (or the service with --obs-stream)?"
        )

    from repro.obs.stream import open_text

    tables: dict[str, dict] = {}
    meta: dict = {"source": "export" if metrics_path else
                  ("service" if journal_path else "stream")}
    events = TableBuilder("events")
    prov = TableBuilder("provenance")
    prov_records: list = []

    if metrics_path:
        with open(metrics_path, encoding="utf-8") as fh:
            data = json.load(fh)
        metrics = TableBuilder("metrics")
        _ingest_metrics(metrics, data)
        tables["metrics"] = metrics.freeze()
        if data.get("label") is not None:
            meta["label"] = data["label"]
        if events_path:
            rows = []
            with open_text(events_path) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        rows.append(json.loads(line))
            _ingest_events(events, rows)
        if prov_path:
            prov_records = ProvenanceLog.read_jsonl(prov_path).records
    elif stream_path:
        # No export: rebuild what it would have said from the stream.
        data = _ingest_stream(stream_path, events, prov_records)
        metrics = TableBuilder("metrics")
        _ingest_metrics(metrics, data)
        tables["metrics"] = metrics.freeze()

    _ingest_provenance(prov, prov_records)
    tables["events"] = events.freeze()
    tables["provenance"] = prov.freeze()

    if trace_path:
        with open(trace_path, encoding="utf-8") as fh:
            trace = json.load(fh)
        spans = TableBuilder("spans")
        _ingest_spans(spans, trace)
        tables["spans"] = spans.freeze()
    if journal_path:
        journal = TableBuilder("journal")
        _ingest_journal(journal, run_dir)
        tables["journal"] = journal.freeze()

    last = -1
    if len(events):
        col = tables["events"]["columns"]["interval"]
        if len(col):
            last = max(last, int(col.max()))
    if len(prov):
        col = tables["provenance"]["columns"]["interval"]
        if len(col):
            last = max(last, int(col.max()))
    meta["intervals"] = last + 1

    write_store(store_path, tables, meta=meta)
    problems = validate_store(Store(store_path))
    if problems:  # pragma: no cover - would be an ingest bug
        raise ConfigError(f"ingest produced an invalid store: {problems[0]}")
    return store_path


def ensure_store(run_dir, store_path=None, reingest: bool = False) -> Store:
    """Open the directory's store, ingesting it first when needed."""
    run_dir = Path(run_dir)
    if run_dir.is_file():
        return Store(run_dir)
    path = Path(store_path) if store_path else run_dir / STORE_NAME
    if reingest or not path.exists():
        ingest_run(run_dir, path)
    return Store(path)


# -- provenance row access -----------------------------------------------------


def _committed_rows(source, start=None, end=None):
    """(interval, page_start, npages, src, dst) arrays of committed moves.

    ``source`` is a :class:`Store` or a :class:`ProvenanceLog`; the log
    path routes through :meth:`ProvenanceLog.for_interval` so windowed
    analyses share one range-query implementation.
    """
    if isinstance(source, ProvenanceLog):
        lo = 0 if start is None else start
        hi = (max((r.interval for r in source.records), default=-1) + 1
              if end is None else end)
        rows = [r for r in source.for_interval(lo, hi)
                if r.stage == STAGE_COMMITTED]
        rows.sort(key=lambda r: tuple(getattr(r, k) for k in _PROV_SORT_KEY))
        return (np.array([r.interval for r in rows], dtype=np.int64),
                np.array([r.page_start for r in rows], dtype=np.int64),
                np.array([r.npages for r in rows], dtype=np.int64),
                np.array([r.src_node for r in rows], dtype=np.int64),
                np.array([r.dst_node for r in rows], dtype=np.int64))
    stage = source.decoded("provenance", "stage")
    mask = stage == STAGE_COMMITTED
    interval = source.column("provenance", "interval")
    if start is not None:
        mask &= interval >= start
    if end is not None:
        mask &= interval < end
    return (interval[mask],
            source.column("provenance", "page_start")[mask],
            source.column("provenance", "npages")[mask],
            source.column("provenance", "src_node")[mask].astype(np.int64),
            source.column("provenance", "dst_node")[mask].astype(np.int64))


def _end_interval(source, end=None) -> int:
    if end is not None:
        return end
    if isinstance(source, ProvenanceLog):
        return max((r.interval for r in source.records), default=-1) + 1
    return int(source.meta.get("intervals", 0))


# -- built-in analyses ---------------------------------------------------------


def dwell_samples(source, start=None, end=None):
    """Closed/open dwell durations per tier, from committed migrations.

    Returns ``(closed, open_)``: dicts mapping tier id to an int64 array
    of dwell lengths (intervals a page spent on that tier before being
    migrated away / before the run ended).  A page's residence is only
    visible between migrations, so never-migrated pages contribute
    nothing — dwell describes the *migrated* population.
    """
    interval, page_start, npages, src, dst = _committed_rows(
        source, start, end)
    closed: dict[int, list[np.ndarray]] = {}
    if len(page_start) == 0:
        return {}, {}
    maxpage = int((page_start + npages).max())
    tier = np.full(maxpage, -1, dtype=np.int64)
    since = np.zeros(maxpage, dtype=np.int64)
    for iv, ps, n, s, d in zip(interval.tolist(), page_start.tolist(),
                               npages.tolist(), src.tolist(), dst.tolist()):
        sl = slice(ps, ps + n)
        known = tier[sl] >= 0
        if known.any():
            dwell = iv - since[sl][known]
            for t in np.unique(tier[sl][known]).tolist():
                closed.setdefault(t, []).append(
                    dwell[tier[sl][known] == t])
        tier[sl] = d
        since[sl] = iv
    horizon = _end_interval(source, end)
    open_: dict[int, np.ndarray] = {}
    resident = tier >= 0
    for t in np.unique(tier[resident]).tolist():
        open_[t] = horizon - since[resident & (tier == t)]
    return ({t: np.concatenate(parts) for t, parts in closed.items()},
            open_)


def dwell_time(source, start=None, end=None,
               bin_edges=(1, 2, 4, 8, 16, 32, 64, 128, 256)) -> dict:
    """Per-tier dwell-time histograms (machine-readable report)."""
    closed, open_ = dwell_samples(source, start, end)
    edges = list(bin_edges)
    tiers: dict[str, dict] = {}
    for t in sorted(set(closed) | set(open_)):
        samples = closed.get(t, np.zeros(0, dtype=np.int64))
        counts = np.bincount(
            np.digitize(samples, edges), minlength=len(edges) + 1)
        opens = open_.get(t, np.zeros(0, dtype=np.int64))
        tiers[str(t)] = {
            "closed_count": int(len(samples)),
            "mean": float(samples.mean()) if len(samples) else 0.0,
            "max": int(samples.max()) if len(samples) else 0,
            "bins": edges,
            "counts": counts.tolist(),
            "open_count": int(len(opens)),
            "open_mean": float(opens.mean()) if len(opens) else 0.0,
        }
    return {"v": REPORT_VERSION, "analysis": "dwell",
            "params": {"start": start, "end": end},
            "tiers": tiers,
            "samples_total": int(sum(len(v) for v in closed.values()))}


def top_pages(source, k: int = 10) -> dict:
    """Top-K hot pages by hotness-mass share.

    Share is each page's fraction of the total planner score mass
    accumulated over ``planned`` provenance records (the artifacts carry
    region scores, not raw access counts).
    """
    if isinstance(source, ProvenanceLog):
        rows = [r for r in source.records if r.stage == STAGE_PLANNED]
        page_start = np.array([r.page_start for r in rows], dtype=np.int64)
        npages = np.array([r.npages for r in rows], dtype=np.int64)
        score = np.array([r.score for r in rows], dtype=np.float64)
    else:
        stage = source.decoded("provenance", "stage")
        mask = stage == STAGE_PLANNED
        page_start = source.column("provenance", "page_start")[mask]
        npages = source.column("provenance", "npages")[mask]
        score = source.column("provenance", "score")[mask]
    if len(page_start) == 0:
        return {"v": REPORT_VERSION, "analysis": "top-pages", "k": k,
                "total_score": 0.0, "pages": []}
    maxpage = int((page_start + npages).max())
    mass = np.zeros(maxpage, dtype=np.float64)
    for ps, n, s in zip(page_start.tolist(), npages.tolist(),
                        score.tolist()):
        mass[ps:ps + n] += s
    total = float(mass.sum())
    order = np.lexsort((np.arange(maxpage), -mass))[:k]
    pages = [{"page": int(p), "score": float(mass[p]),
              "share": float(mass[p] / total) if total else 0.0}
             for p in order.tolist() if mass[p] > 0]
    return {"v": REPORT_VERSION, "analysis": "top-pages", "k": k,
            "total_score": total, "pages": pages}


#: Causal rank of lifecycle stages within one interval: a plan precedes
#: the commit it causes, so same-interval pairs must match in this
#: order, not the store's alphabetical canonical order.
_STAGE_RANK = {"planned": 0, "retry-scheduled": 1, "busy": 2,
               "pressure": 3, "demote-for-room": 4, "fallback": 5,
               "committed": 6, "exhausted": 7}


def lifecycle_funnel(source) -> dict:
    """Stage funnel + per-occurrence plan→commit latency distribution.

    Latencies FIFO-match each region's ``planned`` records to its
    subsequent ``committed`` records in the same direction — the
    log-wide analog of :meth:`ProvenanceLog.queue_latencies`.
    """
    if isinstance(source, ProvenanceLog):
        stages = [r.stage for r in source.records]
        keys = [(r.page_start, r.npages, r.src_node, r.dst_node)
                for r in source.records]
        intervals = [r.interval for r in source.records]
    else:
        stages = source.decoded("provenance", "stage").tolist()
        intervals = source.column("provenance", "interval").tolist()
        keys = list(zip(
            source.column("provenance", "page_start").tolist(),
            source.column("provenance", "npages").tolist(),
            source.column("provenance", "src_node").tolist(),
            source.column("provenance", "dst_node").tolist()))
    order = sorted(
        range(len(stages)),
        key=lambda i: (intervals[i], _STAGE_RANK.get(stages[i], 9), i))
    stage_counts: dict[str, int] = {}
    pending: dict[tuple, list[int]] = {}
    latencies: list[int] = []
    for i in order:
        stage, key, interval = stages[i], keys[i], intervals[i]
        stage_counts[stage] = stage_counts.get(stage, 0) + 1
        if stage == STAGE_PLANNED:
            pending.setdefault(key, []).append(interval)
        elif stage == STAGE_COMMITTED and pending.get(key):
            latencies.append(interval - pending[key].pop(0))
    lat = np.array(sorted(latencies), dtype=np.float64)
    planned = stage_counts.get(STAGE_PLANNED, 0)
    committed = stage_counts.get(STAGE_COMMITTED, 0)

    def _q(q: float) -> float:
        return float(np.quantile(lat, q)) if len(lat) else 0.0

    return {
        "v": REPORT_VERSION, "analysis": "funnel",
        "stages": dict(sorted(stage_counts.items())),
        "occurrences": len(latencies),
        "latency": {"mean": float(lat.mean()) if len(lat) else 0.0,
                    "p50": _q(0.5), "p95": _q(0.95),
                    "max": int(lat.max()) if len(lat) else 0},
        "commit_share": committed / planned if planned else 0.0,
    }


def ping_pong(source, min_round_trips: int = 2, window: int = 8,
              max_pages: int = 1000) -> dict:
    """Pages bouncing between tiers: the admission-control deny-list seed.

    A *round trip* is a committed migration that returns a page to the
    tier it left no more than ``window`` intervals earlier.  Pages with
    at least ``min_round_trips`` round trips are reported, and adjacent
    offenders coalesce into ``deny_ranges`` (``[start, end)`` page
    spans) that a future admission filter can consume directly.
    """
    interval, page_start, npages, src, dst = _committed_rows(source)
    params = {"min_round_trips": min_round_trips, "window": window}
    if len(page_start) == 0:
        return {"v": REPORT_VERSION, "analysis": "ping-pong",
                "params": params, "page_count": 0, "pages": [],
                "deny_ranges": []}
    maxpage = int((page_start + npages).max())
    last_src = np.full(maxpage, -1, dtype=np.int64)
    last_iv = np.full(maxpage, -(window + 1), dtype=np.int64)
    trips = np.zeros(maxpage, dtype=np.int64)
    for iv, ps, n, s, d in zip(interval.tolist(), page_start.tolist(),
                               npages.tolist(), src.tolist(), dst.tolist()):
        sl = slice(ps, ps + n)
        bounce = (last_src[sl] == d) & (iv - last_iv[sl] <= window)
        trips[sl] += bounce
        last_src[sl] = s
        last_iv[sl] = iv
    offenders = np.nonzero(trips >= min_round_trips)[0]
    ranges: list[list[int]] = []
    for p in offenders.tolist():
        if ranges and ranges[-1][1] == p:
            ranges[-1][1] = p + 1
        else:
            ranges.append([p, p + 1])
    pages = [{"page": int(p), "round_trips": int(trips[p])}
             for p in offenders[:max_pages].tolist()]
    return {"v": REPORT_VERSION, "analysis": "ping-pong", "params": params,
            "page_count": int(len(offenders)), "pages": pages,
            "deny_ranges": ranges}


def store_summary(store: Store) -> dict:
    """Bundle overview: meta, table sizes, stage/event totals."""
    tables = {name: store.rows(name) for name in store.tables()}
    out = {"v": REPORT_VERSION, "analysis": "summary",
           "meta": dict(store.meta), "tables": tables}
    if "provenance" in tables and tables["provenance"]:
        stages = store.decoded("provenance", "stage")
        uniq, counts = np.unique(stages, return_counts=True)
        out["stages"] = {str(s): int(c) for s, c in zip(uniq, counts)}
    if "events" in tables and tables["events"]:
        names = store.decoded("events", "name")
        uniq, counts = np.unique(names, return_counts=True)
        out["events"] = {str(s): int(c) for s, c in zip(uniq, counts)}
    return out


# -- generic query verb --------------------------------------------------------

_OPS = ("<=", ">=", "!=", "=", "<", ">")


def _parse_where(clause: str) -> tuple[str, str, str]:
    for op in _OPS:
        if op in clause:
            col, _, value = clause.partition(op)
            return col.strip(), op, value.strip()
    raise ConfigError(f"bad --where clause {clause!r} "
                      f"(expected COL{_OPS} VALUE)")


def _where_mask(store: Store, table: str, clauses) -> np.ndarray:
    mask = np.ones(store.rows(table), dtype=bool)
    for clause in clauses or ():
        col, op, value = _parse_where(clause)
        if store.is_categorical(table, col):
            if op not in ("=", "!="):
                raise ConfigError(
                    f"column {col!r} is categorical; only = and != apply")
            data = store.decoded(table, col)
            hit = data == value
        else:
            data = store.column(table, col)
            try:
                needle = float(value)
            except ValueError:
                raise ConfigError(
                    f"column {col!r} is numeric; {value!r} is not") from None
            hit = {"=": data == needle, "!=": data != needle,
                   "<": data < needle, ">": data > needle,
                   "<=": data <= needle, ">=": data >= needle}[op]
        mask &= hit
    return mask


def query_table(store: Store, table: str, where=None, group: str | None = None,
                agg: str = "count", top: int | None = None,
                limit: int = 20) -> dict:
    """Filter/group/top-N over one table; machine-readable result.

    ``agg`` is ``count`` or ``sum:COL``/``mean:COL``/``min:COL``/
    ``max:COL``.  Without ``group``, returns the first ``limit``
    matching rows, fully decoded.
    """
    mask = _where_mask(store, table, where)
    matched = int(mask.sum())
    if group is None:
        rows = []
        idx = np.nonzero(mask)[0][:limit]
        for i in idx.tolist():
            row = {}
            for col in store.columns(table):
                value = (store.decoded(table, col)[i]
                         if store.is_categorical(table, col)
                         else store.column(table, col)[i])
                row[col] = (value if isinstance(value, str)
                            else value.item())
            rows.append(row)
        return {"v": REPORT_VERSION, "table": table, "matched": matched,
                "rows": rows}

    op, _, target = agg.partition(":")
    if op not in ("count", "sum", "mean", "min", "max"):
        raise ConfigError(f"unknown aggregate {op!r}")
    if op != "count" and not target:
        raise ConfigError(f"aggregate {op!r} needs a column: {op}:COL")
    keys = (store.decoded(table, group) if store.is_categorical(table, group)
            else store.column(table, group))[mask]
    uniq, inverse = np.unique(keys, return_inverse=True)
    if op == "count":
        values = np.bincount(inverse, minlength=len(uniq)).astype(float)
    else:
        data = store.column(table, target)[mask].astype(float)
        if op == "sum":
            values = np.bincount(inverse, weights=data, minlength=len(uniq))
        elif op == "mean":
            counts = np.bincount(inverse, minlength=len(uniq))
            values = np.bincount(inverse, weights=data,
                                 minlength=len(uniq)) / np.maximum(counts, 1)
        else:
            values = np.full(len(uniq), np.nan)
            for j in range(len(uniq)):
                part = data[inverse == j]
                values[j] = part.min() if op == "min" else part.max()
    order = np.lexsort((np.arange(len(uniq)), -values))
    if top is not None:
        order = order[:top]
    rows = [[uniq[j] if isinstance(uniq[j], str) else uniq[j].item(),
             float(values[j])] for j in order.tolist()]
    return {"v": REPORT_VERSION, "table": table, "matched": matched,
            "group": group, "agg": agg, "rows": rows}


# -- differential layer --------------------------------------------------------

#: Metric-name prefixes where *lower* is better.
LOWER_BETTER = ("perf.", "faults.", "fault.", "obs.dropped",
                "obs.relay", "migrate.retries", "migrate.failed",
                "analysis.pingpong", "analysis.funnel.latency",
                "service.dead_letter", "seconds")
#: Metric-name prefixes where *higher* is better.
HIGHER_BETTER = ("cache.hits", "analysis.funnel.commit_share",
                 "service.cache.hits", "speedup", "throughput")


def _direction(name: str) -> int:
    """+1 higher-better, -1 lower-better, 0 unknown (neutral verdict)."""
    base = name.split("{", 1)[0]
    for prefix in HIGHER_BETTER:
        if base.startswith(prefix) or base.endswith(prefix):
            return 1
    for prefix in LOWER_BETTER:
        if base.startswith(prefix) or base.endswith(prefix):
            return -1
    return 0


def run_metrics(run_dir, reingest: bool = False) -> tuple[dict, Store]:
    """Flat metric map of one run dir: exported registry + derived analyses."""
    store = ensure_store(run_dir, reingest=reingest)
    out: dict[str, float] = {}
    if "metrics" in store.tables():
        names = store.decoded("metrics", "name")
        kinds = store.decoded("metrics", "kind")
        values = store.column("metrics", "value")
        for name, kind, value in zip(names, kinds, values):
            key = f"{name}.mean" if kind == "histogram" else str(name)
            out[key] = float(value)
    funnel = lifecycle_funnel(store)
    out["analysis.funnel.commit_share"] = funnel["commit_share"]
    out["analysis.funnel.latency.p50"] = funnel["latency"]["p50"]
    out["analysis.funnel.latency.p95"] = funnel["latency"]["p95"]
    pp = ping_pong(store)
    out["analysis.pingpong.pages"] = float(pp["page_count"])
    closed, _ = dwell_samples(store)
    for tier, samples in sorted(closed.items()):
        out[f"analysis.dwell.tier{tier}.mean"] = float(samples.mean())
    return out, store


def _compare(name: str, va: float, vb: float, tol: float,
             ci: tuple[float, float] | None = None) -> dict:
    delta = vb - va
    rel = (delta / abs(va)) if va else (0.0 if delta == 0 else math.inf)
    direction = _direction(name)
    insignificant = ci is not None and ci[0] <= 0.0 <= ci[1]
    if (abs(rel) <= tol and math.isfinite(rel)) or insignificant:
        verdict = "unchanged"
    elif direction == 0:
        verdict = "changed"
    elif (delta < 0) == (direction < 0):
        verdict = "improved"
    else:
        verdict = "regressed"
    entry = {"metric": name, "a": va, "b": vb, "delta": delta,
             "rel": rel if math.isfinite(rel) else None, "verdict": verdict}
    if ci is not None:
        entry["ci95"] = [ci[0], ci[1]]
    return entry


def diff_runs(a, b, tol: float = 0.01, reingest: bool = False) -> dict:
    """Metric-by-metric comparison of two runs (or sweep cells).

    Scalar registry metrics get relative-delta verdicts; dwell means —
    the metrics with full sample distributions in the store — also get a
    bootstrap 95% CI of the mean difference (B−A), and a CI containing
    zero downgrades the verdict to ``unchanged``.
    """
    from repro.bench.stats import bootstrap_diff_ci

    ma, store_a = run_metrics(a, reingest=reingest)
    mb, store_b = run_metrics(b, reingest=reingest)
    dwell_a, _ = dwell_samples(store_a)
    dwell_b, _ = dwell_samples(store_b)
    metrics: list[dict] = []
    for name in sorted(set(ma) & set(mb)):
        ci = None
        if name.startswith("analysis.dwell.tier"):
            tier = int(name.split("tier", 1)[1].split(".", 1)[0])
            sa, sb = dwell_a.get(tier), dwell_b.get(tier)
            if sa is not None and sb is not None and len(sa) > 1 \
                    and len(sb) > 1:
                ci = bootstrap_diff_ci(sb.tolist(), sa.tolist())
        metrics.append(_compare(name, ma[name], mb[name], tol, ci))
    only_a = sorted(set(ma) - set(mb))
    only_b = sorted(set(mb) - set(ma))
    summary = {v: 0 for v in ("improved", "regressed", "unchanged",
                              "changed")}
    for entry in metrics:
        summary[entry["verdict"]] += 1
    return {"v": REPORT_VERSION, "kind": "runs", "a": str(a), "b": str(b),
            "tol": tol, "metrics": metrics, "only_a": only_a,
            "only_b": only_b, "summary": summary}


def diff_bench(history_path, driver: str | None = None,
               tol: float = 0.05) -> dict:
    """Regression check of the newest bench-history record vs the past.

    For every numeric metric the latest record shares with its
    predecessors, the predecessors' samples form a bootstrap 95% CI of
    the expected value; a latest value outside the CI *and* beyond
    ``tol`` relative change is a regression (or an improvement,
    depending on the metric's direction).
    """
    from repro.bench.history import read_history
    from repro.bench.stats import bootstrap_ci

    records = read_history(history_path)
    if driver:
        records = [r for r in records if r.get("driver") == driver]
    if len(records) < 2:
        raise ConfigError(
            f"bench diff needs at least 2 history records"
            f"{f' for driver {driver!r}' if driver else ''}; "
            f"found {len(records)} in {history_path}"
        )
    latest, prior = records[-1], records[:-1]

    def _flat(record: dict) -> dict[str, float]:
        out = {"seconds": float(record.get("seconds", 0.0))}
        for key, value in (record.get("metrics") or {}).items():
            if isinstance(value, (int, float)):
                out[key] = float(value)
        return out

    latest_metrics = _flat(latest)
    metrics: list[dict] = []
    for name in sorted(latest_metrics):
        samples = [_flat(r)[name] for r in prior if name in _flat(r)]
        if not samples:
            continue
        baseline = sum(samples) / len(samples)
        entry = _compare(name, baseline, latest_metrics[name], tol)
        if len(samples) >= 2:
            lo, hi = bootstrap_ci(samples)
            entry["ci95"] = [lo, hi]
            if lo <= latest_metrics[name] <= hi:
                entry["verdict"] = "unchanged"
        metrics.append(entry)
    summary = {v: 0 for v in ("improved", "regressed", "unchanged",
                              "changed")}
    for entry in metrics:
        summary[entry["verdict"]] += 1
    return {"v": REPORT_VERSION, "kind": "bench",
            "history": str(history_path),
            "driver": driver or latest.get("driver"),
            "entries": len(records), "latest": {
                "iso": latest.get("iso"), "profile": latest.get("profile")},
            "tol": tol, "metrics": metrics, "summary": summary}


# -- rendering -----------------------------------------------------------------


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_diff_text(diff: dict, limit: int | None = None) -> str:
    """Terminal rendering of a diff report."""
    from repro.metrics.report import Table

    if diff["kind"] == "bench":
        title = (f"bench trajectory: {diff['driver']} "
                 f"({diff['entries']} records, latest {diff['latest']['iso']})")
    else:
        title = f"diff: {diff['a']} -> {diff['b']}"
    table = Table(title, ["metric", "a", "b", "delta", "rel", "ci95",
                          "verdict"])
    interesting = [m for m in diff["metrics"] if m["verdict"] != "unchanged"]
    shown = interesting if limit is None else interesting[:limit]
    for entry in shown:
        rel = entry.get("rel")
        ci = entry.get("ci95")
        table.add_row(
            entry["metric"], _fmt(entry["a"]), _fmt(entry["b"]),
            _fmt(entry["delta"]),
            f"{rel:+.1%}" if rel is not None else "-",
            f"[{_fmt(ci[0])}, {_fmt(ci[1])}]" if ci else "-",
            entry["verdict"],
        )
    s = diff["summary"]
    lines = [table.render(),
             f"{s['improved']} improved, {s['regressed']} regressed, "
             f"{s['changed']} changed (no known direction), "
             f"{s['unchanged']} unchanged"]
    if len(interesting) > len(shown):
        lines.append(f"... {len(interesting) - len(shown)} more changed "
                     f"metrics (raise --limit)")
    if diff.get("only_a") or diff.get("only_b"):
        lines.append(f"unmatched metrics: {len(diff.get('only_a', []))} "
                     f"only in A, {len(diff.get('only_b', []))} only in B")
    return "\n".join(lines)


_VERDICT_CLASS = {"improved": "status-ok", "regressed": "status-over",
                  "changed": "", "unchanged": ""}


def render_diff_html(diff: dict, title: str = "repro diff") -> str:
    """Self-contained HTML diff report (reuses the watch dataviz tokens)."""
    from repro.obs.watch import HTML_STYLE, escape_html

    s = diff["summary"]
    if diff["kind"] == "bench":
        sub = (f"bench trajectory · {escape_html(diff['driver'])} · "
               f"{diff['entries']} history records")
    else:
        sub = (f"{escape_html(diff['a'])} → {escape_html(diff['b'])} · "
               f"tolerance {diff['tol']:.1%}")
    tiles = [("Improved", s["improved"], "status-ok"),
             ("Regressed", s["regressed"], "status-over"),
             ("Changed", s["changed"], ""),
             ("Unchanged", s["unchanged"], "")]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{label}</div>'
        f'<div class="value {cls}">{count}</div></div>'
        for label, count, cls in tiles)
    rows = []
    for entry in diff["metrics"]:
        if entry["verdict"] == "unchanged":
            continue
        rel = entry.get("rel")
        ci = entry.get("ci95")
        cls = _VERDICT_CLASS.get(entry["verdict"], "")
        rows.append(
            "<tr>"
            f"<td>{escape_html(entry['metric'])}</td>"
            f"<td class=num>{_fmt(entry['a'])}</td>"
            f"<td class=num>{_fmt(entry['b'])}</td>"
            f"<td class=num>{f'{rel:+.1%}' if rel is not None else '-'}</td>"
            f"<td class=num>"
            f"{f'[{_fmt(ci[0])}, {_fmt(ci[1])}]' if ci else '-'}</td>"
            f'<td><span class="{cls}">{entry["verdict"]}</span></td>'
            "</tr>")
    body = "".join(rows) or ("<tr><td colspan=6>no metric moved beyond "
                             "tolerance</td></tr>")
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{escape_html(title)}</title>
<style>{HTML_STYLE}
.viz-root table {{ border-collapse: collapse; width: 100%; font-size: 13px; }}
.viz-root th, .viz-root td {{ text-align: left; padding: 4px 10px;
  border-bottom: 1px solid var(--grid); }}
.viz-root td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
</style></head>
<body class="viz-root">
<h1>{escape_html(title)}</h1>
<p class="sub">{sub}</p>
<div class="tiles">{tile_html}</div>
<div class="panel"><h2>Metric deltas</h2>
<table><tr><th>metric</th><th>a</th><th>b</th><th>rel</th><th>95% CI</th>
<th>verdict</th></tr>
{body}
</table></div>
</body></html>
"""


__all__ = [
    "REPORT_VERSION",
    "diff_bench",
    "diff_runs",
    "dwell_samples",
    "dwell_time",
    "ensure_store",
    "find_artifact",
    "ingest_run",
    "lifecycle_funnel",
    "ping_pong",
    "query_table",
    "render_diff_html",
    "render_diff_text",
    "run_metrics",
    "store_summary",
    "top_pages",
]
