"""DAMOS: DAMON operation schemes as a migration policy.

Linux pairs DAMON's region monitor with *operation schemes* (DAMOS) that
act on regions matching (size, access-count, age) filters —
``DAMOS_MIGRATE_HOT`` / ``DAMOS_MIGRATE_COLD`` in recent kernels.  The
paper evaluates DAMON only as a profiler; this policy completes the pair
so DAMON can run end to end as a tiering solution and be compared with
MTM on equal terms (an extension, not a paper experiment).

The scheme semantics follow upstream: regions whose access count is at or
above ``hot_threshold`` migrate toward the fastest tier, regions at or
below ``cold_threshold`` migrate one tier down, and a quota bounds the
bytes moved per interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class DamosConfig:
    """DAMOS scheme parameters.

    Attributes:
        hot_threshold: region access count (nr_accesses) at or above which
            the migrate-hot scheme applies.
        cold_threshold: count at or below which migrate-cold applies.
        quota_bytes: max bytes migrated per interval (upstream's quota);
            ``None`` scales the paper's 200 MB with a 16-region floor.
        scale: machine capacity scale.
        default_socket: view socket for tier ranking.
    """

    hot_threshold: float = 1.0
    cold_threshold: float = 0.0
    quota_bytes: int | None = None
    scale: float = 1.0
    default_socket: int = 0

    def __post_init__(self) -> None:
        if self.cold_threshold > self.hot_threshold:
            raise ConfigError("cold_threshold must not exceed hot_threshold")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.quota_bytes is not None:
            return self.quota_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(200 * MiB * self.scale), floor)


class DamosPolicy(Policy):
    """migrate_hot / migrate_cold schemes over DAMON regions."""

    name = "damos"

    def __init__(self, config: DamosConfig | None = None) -> None:
        self.config = config if config is not None else DamosConfig()

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        view = state.topology.view(cfg.default_socket)
        fastest = view.node_at_tier(1)
        budget = cfg.budget_bytes // PAGE_SIZE
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        orders: list[MigrationOrder] = []
        spent = 0

        # migrate_cold first: free space on the fast tiers.
        cold = sorted(
            (r for r in snapshot.reports
             if r.score <= cfg.cold_threshold and r.node == fastest),
            key=lambda r: r.score,
        )
        for report in cold:
            if spent >= budget:
                break
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0:
                continue
            target = self._next_lower_with_space(view, 1, pages.size, free)
            if target is None:
                continue
            orders.append(MigrationOrder(
                pages=pages, src_node=fastest, dst_node=target,
                reason="demotion", score=report.score,
            ))
            free[target] -= pages.size
            free[fastest] += pages.size
            spent += pages.size

        # migrate_hot: hottest first, straight to the fastest tier.
        hot = sorted(
            (r for r in snapshot.reports
             if r.score >= cfg.hot_threshold and r.node >= 0 and r.node != fastest),
            key=lambda r: r.score,
            reverse=True,
        )
        for report in hot:
            if spent >= budget:
                break
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0 or free[fastest] < pages.size:
                continue
            remaining = budget - spent
            if pages.size > remaining:
                cut = (remaining // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
                if cut == 0:
                    break
                pages = pages[:cut]
            orders.append(MigrationOrder(
                pages=pages, src_node=report.node, dst_node=fastest,
                reason="promotion", score=report.score,
            ))
            free[fastest] -= pages.size
            free[report.node] += pages.size
            spent += pages.size
        return orders

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]

    @staticmethod
    def _next_lower_with_space(view, from_tier: int, need: int, free) -> int | None:
        for tier in range(from_tier + 1, view.num_tiers + 1):
            node = view.node_at_tier(tier)
            if free[node] >= need:
                return node
        return None
