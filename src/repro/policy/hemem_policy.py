"""HeMem's two-tier policy (baseline of Sec. 9.6).

HeMem manages exactly two tiers: DRAM and NVM.  Chunks whose PEBS sample
counts cross a hot threshold are promoted to DRAM; when DRAM is full the
coldest resident chunks are demoted.  On a machine with more than two
components HeMem simply treats tier 1 as "DRAM" and everything else as
"NVM" — it "fails to explore more than two tiers" (Sec. 2.1), so pages
never distinguish tier 2 from tier 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class HeMemPolicyConfig:
    """HeMem tunables.

    Attributes:
        hot_threshold: PEBS samples (accumulated, cooled) above which a
            chunk is hot.
        migration_budget_bytes: bytes promoted per interval; ``None``
            scales the paper's 200 MB with a 16-region floor.
        scale: machine capacity scale.
        default_socket: socket whose view defines "DRAM" (tier 1).
    """

    hot_threshold: float = 4.0
    migration_budget_bytes: int | None = None
    scale: float = 1.0
    default_socket: int = 0

    def __post_init__(self) -> None:
        if self.hot_threshold < 0:
            raise ConfigError("hot_threshold must be >= 0")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.migration_budget_bytes is not None:
            return self.migration_budget_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(200 * MiB * self.scale), floor)


class HeMemPolicy(Policy):
    """Two-tier hot/cold placement driven by PEBS counts."""

    name = "hemem"

    def __init__(self, config: HeMemPolicyConfig | None = None) -> None:
        self.config = config if config is not None else HeMemPolicyConfig()

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        view = state.topology.view(cfg.default_socket)
        dram = view.node_at_tier(1)
        budget_pages = cfg.budget_bytes // PAGE_SIZE
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        orders: list[MigrationOrder] = []
        moved: set[tuple[int, int]] = set()
        promoted = 0

        hot = sorted(
            (r for r in snapshot.reports if r.score >= cfg.hot_threshold and r.node >= 0 and r.node != dram),
            key=lambda r: r.score,
            reverse=True,
        )
        for report in hot:
            if promoted >= budget_pages:
                break
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0:
                continue
            if free[dram] < pages.size:
                self._demote_coldest(dram, pages.size, snapshot, state, free, orders, moved)
            if free[dram] < pages.size:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=report.node, dst_node=dram,
                    reason="promotion", score=report.score,
                )
            )
            moved.add((report.start, report.npages))
            free[dram] -= pages.size
            free[report.node] += pages.size
            promoted += pages.size
        return orders

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]

    def _demote_coldest(
        self,
        dram: int,
        need: int,
        snapshot: ProfileSnapshot,
        state: PlacementState,
        free: dict[int, int],
        orders: list[MigrationOrder],
        moved: set[tuple[int, int]],
    ) -> None:
        """HeMem demotes the coldest DRAM chunks to "NVM": the PM
        components.  It is blind to the remote-DRAM middle tier — a page
        leaving DRAM goes straight to persistent memory."""
        from repro.hw.tier import MemoryKind

        # Only chunks the threshold classifies as cold are demotable: a
        # stale chunk whose cooled count still sits above the threshold
        # keeps its DRAM residence (HeMem's hot/cold lists), which is why
        # HeMem reacts slowly when the hot set moves.
        victims = sorted(
            (
                r for r in snapshot.reports
                if r.node == dram
                and r.score < self.config.hot_threshold
                and (r.start, r.npages) not in moved
            ),
            key=lambda r: r.score,
        )
        nvm_nodes = [
            c.node_id for c in state.topology.components
            if c.kind != MemoryKind.DRAM
        ] or [n for n in state.topology.node_ids if n != dram]
        for victim in victims:
            if free[dram] >= need:
                break
            pages = self._pages_on_node(victim, state, dram)
            if pages.size == 0:
                continue
            target = next((n for n in nvm_nodes if free[n] >= pages.size), None)
            if target is None:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=dram, dst_node=target,
                    reason="demotion", score=victim.score,
                )
            )
            moved.add((victim.start, victim.npages))
            free[target] -= pages.size
            free[dram] += pages.size
