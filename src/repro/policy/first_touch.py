"""First-touch NUMA: allocate near the first toucher, never migrate.

The common default allocation policy and one of the paper's baselines.
Initial placement is handled by the manager (pages land on the fastest
local tier with space, spilling down); the policy itself never emits
orders.
"""

from __future__ import annotations

from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot


class FirstTouchPolicy(Policy):
    """No migration at all."""

    name = "first-touch"

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        return []

    def wants_profiling(self) -> bool:
        return False
