"""Migration policies: MTM's global ranking and all baselines.

Implements Sec. 6 (which regions to migrate, where to) plus the policies
of the evaluated baselines: first-touch (no migration), vanilla and patched
tiered-AutoNUMA (tier-by-tier), AutoTiering (opportunistic), HeMem and
Thermostat (two-tier).  Policies consume :class:`~repro.profile.base.ProfileSnapshot`
objects and produce :class:`MigrationOrder` lists; they never touch the
page table directly.
"""

from repro.policy.base import MigrationOrder, Policy, PlacementState
from repro.policy.histogram import WhiHistogram
from repro.policy.mtm_policy import MtmPolicy, MtmPolicyConfig
from repro.policy.first_touch import FirstTouchPolicy
from repro.policy.tiered_autonuma import TieredAutoNumaPolicy, TieredAutoNumaConfig
from repro.policy.autotiering import AutoTieringPolicy, AutoTieringConfig
from repro.policy.hemem_policy import HeMemPolicy, HeMemPolicyConfig
from repro.policy.thermostat_policy import ThermostatPolicy, ThermostatPolicyConfig

__all__ = [
    "MigrationOrder",
    "Policy",
    "PlacementState",
    "WhiHistogram",
    "MtmPolicy",
    "MtmPolicyConfig",
    "FirstTouchPolicy",
    "TieredAutoNumaPolicy",
    "TieredAutoNumaConfig",
    "AutoTieringPolicy",
    "AutoTieringConfig",
    "HeMemPolicy",
    "HeMemPolicyConfig",
    "ThermostatPolicy",
    "ThermostatPolicyConfig",
]
