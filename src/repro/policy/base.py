"""Policy interface and migration orders.

A policy looks at one interval's :class:`~repro.profile.base.ProfileSnapshot`
plus the current placement state and emits an ordered list of
:class:`MigrationOrder` — demotions first where space must be made, then
promotions.  The planner executes them in order through a mechanism and
charges the time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hw.frames import FrameAccountant
from repro.hw.topology import TierTopology
from repro.mm.pagetable import PageTable
from repro.profile.base import ProfileSnapshot
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class MigrationOrder:
    """Move one region's pages between components.

    Attributes:
        pages: base page numbers to move (one contiguous region, usually).
        src_node: component currently holding the pages.
        dst_node: destination component.
        reason: "promotion" or "demotion" (reporting only).
        score: the hotness score that justified the order (reporting only).
    """

    pages: np.ndarray
    src_node: int
    dst_node: int
    reason: str = "promotion"
    score: float = 0.0

    def __post_init__(self) -> None:
        if self.src_node == self.dst_node:
            raise ConfigError("order moves pages to their current node")
        if self.src_node < 0 or self.dst_node < 0:
            raise ConfigError("invalid node in migration order")

    @property
    def npages(self) -> int:
        return int(self.pages.size)

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE


@dataclass
class PlacementState:
    """Everything a policy may inspect when deciding.

    Attributes:
        page_table: current placement.
        frames: per-component capacity accounting.
        topology: the machine.
    """

    page_table: PageTable
    frames: FrameAccountant
    topology: TierTopology

    def free_pages(self, node: int) -> int:
        return self.frames.free_pages(node)


class Policy(abc.ABC):
    """Common contract for all migration policies."""

    #: Short name used in reports ("mtm", "tiered-autonuma", ...).
    name: str = "base"

    @abc.abstractmethod
    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        """Plan this interval's migrations (demotions before promotions)."""

    def wants_profiling(self) -> bool:
        """Whether this policy consumes profiling results at all."""
        return True
