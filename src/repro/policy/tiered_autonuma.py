"""Tiered-AutoNUMA: tier-by-tier promotion within the NUMA abstraction.

Linux's memory-tiering extension of NUMA balancing (the paper's vanilla
and patched baselines).  Its defining limitation (Sec. 1, Sec. 9.1): page
migration happens between *neighboring* tiers with at most two NUMA
distances in view, and swapping is prioritized within a socket.  A page on
the remote PM therefore reaches the local DRAM only via multiple
decisions across multiple intervals — the "takes multiple seconds and
fails to timely migrate pages" problem MTM's global view removes.

Vanilla vs patched is a profiler-side distinction (plain hint faults vs
MFU accumulation with an auto-adjusted hot threshold); the policy here
implements the shared tier-by-tier strategy, with the auto threshold
applied to the scores it receives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class TieredAutoNumaConfig:
    """Tiered-AutoNUMA tunables.

    Attributes:
        migration_budget_bytes: promotion throughput cap per interval (set
            equal to MTM's 200 MB in the paper's comparison); ``None``
            scales by ``scale`` with a 16-region floor.
        scale: machine capacity scale.
        auto_threshold: adjust the hot threshold to track the budget
            (the patched kernel's behaviour); False promotes anything with
            a positive score (vanilla).
        default_socket: view socket for tier ranking.
    """

    migration_budget_bytes: int | None = None
    scale: float = 1.0
    auto_threshold: bool = True
    default_socket: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.migration_budget_bytes is not None:
            return self.migration_budget_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(200 * MiB * self.scale), floor)


class TieredAutoNumaPolicy(Policy):
    """Tier-by-tier promotion with socket-local preference."""

    name = "tiered-autonuma"

    def __init__(self, config: TieredAutoNumaConfig | None = None) -> None:
        self.config = config if config is not None else TieredAutoNumaConfig()
        self._hot_threshold = 0.0

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        budget_pages = cfg.budget_bytes // PAGE_SIZE
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        orders: list[MigrationOrder] = []
        moved: set[tuple[int, int]] = set()
        promoted = 0

        candidates = [r for r in snapshot.reports if r.score > self._hot_threshold and r.node >= 0]
        candidates.sort(key=lambda r: r.score, reverse=True)
        for report in candidates:
            if promoted >= budget_pages:
                break
            dst = self._one_step_up(report, state)
            if dst is None:
                continue
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0:
                continue
            if free[dst] < pages.size:
                self._demote_for_space(dst, pages.size, snapshot, state, free, orders, moved)
            if free[dst] < pages.size:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=report.node, dst_node=dst,
                    reason="promotion", score=report.score,
                )
            )
            moved.add((report.start, report.npages))
            free[dst] -= pages.size
            free[report.node] += pages.size
            promoted += pages.size

        if cfg.auto_threshold:
            self._adjust_threshold(candidates, promoted, budget_pages)
        return orders

    # -- internals --------------------------------------------------------------

    def _one_step_up(self, report: RegionReport, state: PlacementState) -> int | None:
        """Next faster component, preferring moves within the page's socket.

        PM_s -> DRAM_s (same socket), then DRAM_remote -> DRAM_local of the
        dominant accessor.  Cross-socket PM moves are never taken directly,
        which is what makes promotion lag on multi-tier machines.
        """
        topo = state.topology
        component = topo.component(report.node)
        socket = component.socket if component.socket is not None else self.config.default_socket
        view = topo.view(socket)
        tier_here = view.tier_of(report.node)
        # Within the page's own socket view, find the next faster component
        # on the same socket.
        for tier in range(tier_here - 1, 0, -1):
            node = view.node_at_tier(tier)
            if topo.component(node).socket == component.socket:
                return node
        # Already on this socket's fastest component: allow one cross-socket
        # step toward the accessor's local tier, if the accessor differs.
        accessor = report.dominant_socket if report.dominant_socket >= 0 else self.config.default_socket
        if accessor != socket:
            accessor_view = topo.view(accessor)
            target = accessor_view.node_at_tier(1)
            if target != report.node and accessor_view.tier_of(target) < accessor_view.tier_of(report.node):
                return target
        return None

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]

    def _demote_for_space(
        self,
        dst: int,
        need: int,
        snapshot: ProfileSnapshot,
        state: PlacementState,
        free: dict[int, int],
        orders: list[MigrationOrder],
        moved: set[tuple[int, int]],
    ) -> None:
        """Demote coldest regions from ``dst`` one step down, same socket."""
        topo = state.topology
        component = topo.component(dst)
        socket = component.socket if component.socket is not None else self.config.default_socket
        view = topo.view(socket)
        down: int | None = None
        for tier in range(view.tier_of(dst) + 1, view.num_tiers + 1):
            node = view.node_at_tier(tier)
            if topo.component(node).socket == component.socket:
                down = node
                break
        if down is None:
            return
        victims = sorted(
            (r for r in snapshot.reports if r.node == dst and (r.start, r.npages) not in moved),
            key=lambda r: r.score,
        )
        for victim in victims:
            if free[dst] >= need:
                break
            pages = self._pages_on_node(victim, state, dst)
            if pages.size == 0 or free[down] < pages.size:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=dst, dst_node=down,
                    reason="demotion", score=victim.score,
                )
            )
            moved.add((victim.start, victim.npages))
            free[down] -= pages.size
            free[dst] += pages.size

    def _adjust_threshold(self, candidates: list[RegionReport], promoted: int, budget: int) -> None:
        """The patched kernel's automatic hot-threshold adjustment: raise
        the bar when there is more hot memory than throughput, lower it
        when promotions undershoot."""
        if promoted >= budget and candidates:
            scores = sorted((r.score for r in candidates), reverse=True)
            self._hot_threshold = scores[min(len(scores) - 1, max(0, len(scores) // 2))]
        else:
            self._hot_threshold *= 0.5
            if self._hot_threshold < 1e-9:
                self._hot_threshold = 0.0
