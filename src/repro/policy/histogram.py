"""Histogram over regions' EMA hotness (Sec. 6.1).

MTM segments the range of WHI values into buckets and tracks which regions
fall into each.  Promotion drains the highest buckets; demotion drains the
lowest.  The histogram is rebuilt from the snapshot each interval — with a
few thousand regions this is microseconds, matching the paper's "low
overhead" claim for maintaining it incrementally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.profile.base import RegionReport


class WhiHistogram:
    """Buckets region reports by hotness score.

    Args:
        reports: the interval's region reports.
        num_buckets: histogram resolution.
    """

    def __init__(self, reports: list[RegionReport], num_buckets: int = 16) -> None:
        if num_buckets < 2:
            raise ConfigError(f"num_buckets must be >= 2, got {num_buckets}")
        self.num_buckets = num_buckets
        self.reports = list(reports)
        scores = np.array([r.score for r in reports], dtype=np.float64)
        if scores.size == 0:
            self._edges = np.linspace(0.0, 1.0, num_buckets + 1)
            self._bucket_of = np.empty(0, dtype=np.int64)
            self._scores = scores
            self._hottest = None
            return
        lo, hi = float(scores.min()), float(scores.max())
        if hi <= lo:
            hi = lo + 1.0
        self._edges = np.linspace(lo, hi, num_buckets + 1)
        # Highest bucket index = hottest.
        self._bucket_of = np.clip(
            np.searchsorted(self._edges, scores, side="right") - 1, 0, num_buckets - 1
        )
        self._scores = scores
        self._hottest: list[RegionReport] | None = None

    def bucket(self, idx: int) -> list[RegionReport]:
        """Regions in bucket ``idx`` (0 = coldest)."""
        if not 0 <= idx < self.num_buckets:
            raise ConfigError(f"bucket {idx} out of range 0..{self.num_buckets - 1}")
        return [r for r, b in zip(self.reports, self._bucket_of) if b == idx]

    def hottest_first(self) -> list[RegionReport]:
        """All regions, hottest bucket first, score-descending within.

        The histogram is immutable after construction, so the ranking is
        computed once and memoized — promotion planning asks for it per
        candidate region.
        """
        if self._hottest is None:
            order = np.lexsort((-self._scores, -self._bucket_of))
            self._hottest = [self.reports[i] for i in order]
        return list(self._hottest)

    def coldest_first(self) -> list[RegionReport]:
        """All regions, coldest bucket first, score-ascending within."""
        return list(reversed(self.hottest_first()))

    def bucket_counts(self) -> np.ndarray:
        """Regions per bucket, index 0 = coldest."""
        return np.bincount(self._bucket_of, minlength=self.num_buckets).astype(np.int64)

    def bucket_index(self, report_idx: int) -> int:
        """Bucket of the ``report_idx``-th report."""
        return int(self._bucket_of[report_idx])
