"""AutoTiering: flexible cross-tier migration without systematic ranking.

AutoTiering (ATC'21) removed tiered-AutoNUMA's neighbor-only restriction —
pages can move between any tiers — but, as the paper notes (Sec. 9.1), it
"does not have a systematic migration strategy guided by page hotness":
candidates come from random sampling, promotion is straight to the fastest
tier with room, and demotion is *opportunistic* (random victims when space
is needed).  That combination is why it trails MTM by up to 42%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class AutoTieringConfig:
    """AutoTiering tunables.

    Attributes:
        migration_budget_bytes: promotion throughput cap per interval;
            ``None`` scales the paper's 200 MB with a 16-region floor.
        scale: machine capacity scale.
        default_socket: view socket for tier ranking.
        seed: RNG seed for the opportunistic choices.
    """

    migration_budget_bytes: int | None = None
    scale: float = 1.0
    default_socket: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.migration_budget_bytes is not None:
            return self.migration_budget_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(200 * MiB * self.scale), floor)


class AutoTieringPolicy(Policy):
    """Promotion straight to the fastest tier; random-victim demotion."""

    name = "autotiering"

    def __init__(self, config: AutoTieringConfig | None = None) -> None:
        self.config = config if config is not None else AutoTieringConfig()
        self.rng = np.random.default_rng(self.config.seed)

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        budget_pages = cfg.budget_bytes // PAGE_SIZE
        view = state.topology.view(cfg.default_socket)
        fastest = view.node_at_tier(1)
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        orders: list[MigrationOrder] = []
        moved: set[tuple[int, int]] = set()
        promoted = 0

        # Candidates: anything the random-window profiler saw accessed, in
        # arbitrary (shuffled) order — no hotness ranking.
        candidates = [r for r in snapshot.reports if r.score > 0 and r.node >= 0 and r.node != fastest]
        self.rng.shuffle(candidates)
        for report in candidates:
            if promoted >= budget_pages:
                break
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0:
                continue
            if free[fastest] < pages.size:
                self._opportunistic_demotion(
                    fastest, pages.size, snapshot, state, free, orders, moved
                )
            if free[fastest] < pages.size:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=report.node, dst_node=fastest,
                    reason="promotion", score=report.score,
                )
            )
            moved.add((report.start, report.npages))
            free[fastest] -= pages.size
            free[report.node] += pages.size
            promoted += pages.size
        return orders

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]

    def _opportunistic_demotion(
        self,
        dst: int,
        need: int,
        snapshot: ProfileSnapshot,
        state: PlacementState,
        free: dict[int, int],
        orders: list[MigrationOrder],
        moved: set[tuple[int, int]],
    ) -> None:
        """Evict *random* resident regions (hot or not) to any lower tier
        with room — AutoTiering's opportunistic demotion."""
        view = state.topology.view(self.config.default_socket)
        residents = [
            r for r in snapshot.reports
            if r.node == dst and (r.start, r.npages) not in moved
        ]
        self.rng.shuffle(residents)
        for victim in residents:
            if free[dst] >= need:
                break
            pages = self._pages_on_node(victim, state, dst)
            if pages.size == 0:
                continue
            target = None
            for tier in range(view.tier_of(dst) + 1, view.num_tiers + 1):
                node = view.node_at_tier(tier)
                if free[node] >= pages.size:
                    target = node
                    break
            if target is None:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=dst, dst_node=target,
                    reason="demotion", score=victim.score,
                )
            )
            moved.add((victim.start, victim.npages))
            free[target] -= pages.size
            free[dst] += pages.size
