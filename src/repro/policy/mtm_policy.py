"""MTM's migration policy: global ranking, fast promotion, slow demotion.

Sec. 6 of the paper:

* decisions use a **global view** — all regions on all tiers are ranked in
  one WHI histogram, so a region on the slowest tier can jump straight to
  the fastest (no tier-by-tier staging);
* per interval, a constant budget ``N`` (200 MB at paper scale) of regions
  is promoted, hottest-histogram-buckets first; when the hottest buckets
  are already resident in the fastest tier, the next bucket down is
  promoted to the *second*-fastest tier, and so on ("fast promotion");
* demotion happens only to make room, coldest-buckets first, one tier down
  to the next tier with capacity ("slow demotion");
* the destination tier is interpreted through the view of the socket that
  accesses the region most (multi-view, Sec. 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nputil

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.policy.histogram import WhiHistogram
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE

#: The paper's per-interval migration budget (Sec. 6.1).
PAPER_MIGRATION_BUDGET = 200 * MiB


@dataclass
class MtmPolicyConfig:
    """MTM policy tunables.

    Attributes:
        migration_budget_bytes: promoted bytes per interval (the paper's
            ``N``).  ``None`` scales the paper's 200 MB by ``scale`` with a
            floor of two regions so scaled machines still migrate whole
            regions.
        scale: machine capacity scale (for the default budget).
        num_buckets: WHI histogram resolution.
        default_socket: view used when a region's accessor is unknown.
        min_score: regions scoring at or below this are never promoted.
        headroom: fraction of each tier's capacity left unassigned so
            promotion always has room to land without cascading demotions.
        displacement_margin: a promotion that must *demote* residents to
            make room only proceeds when the promoted region outscores
            every victim by this margin.  Filling free space needs no
            margin.  This keeps equal-hotness regions from endlessly
            swapping places (the histogram's bucket quantization plays the
            same role in the paper).
    """

    migration_budget_bytes: int | None = None
    scale: float = 1.0
    num_buckets: int = 16
    default_socket: int = 0
    min_score: float = 0.0
    headroom: float = 0.02
    displacement_margin: float = 0.2

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.num_buckets < 2:
            raise ConfigError("num_buckets must be >= 2")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.migration_budget_bytes is not None:
            return self.migration_budget_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(PAPER_MIGRATION_BUDGET * self.scale), floor)


class MtmPolicy(Policy):
    """Fast promotion / slow demotion over the global WHI histogram."""

    name = "mtm"

    def __init__(self, config: MtmPolicyConfig | None = None) -> None:
        self.config = config if config is not None else MtmPolicyConfig()

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        hist = WhiHistogram(snapshot.reports, num_buckets=cfg.num_buckets)
        budget_pages = cfg.budget_bytes // PAGE_SIZE

        # Simulated free-page ledger so orders are consistent as a batch.
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        orders: list[MigrationOrder] = []
        moved_regions: set[tuple[int, int]] = set()

        # Global view (Sec. 6): rank every region on every tier by WHI and
        # assign tiers by capacity — the hottest fill the fastest tier,
        # the next hottest the second tier, and so on.  "Fast promotion"
        # is then: move the hottest mis-placed regions straight to their
        # assigned tier (no tier-by-tier staging), up to the budget N.
        # "Slow demotion" happens only inside _make_space.
        targets = self._assign_targets(hist, state)

        promoted_pages = 0
        for report, target_node in targets:
            if promoted_pages >= budget_pages:
                break
            view = self._view_for(report, state)
            target_tier = view.tier_of(target_node)
            # A region may straddle components (partial promotions, stale
            # placement); promote its pages from every slower component.
            region_pages = np.arange(report.start, report.end, dtype=np.int64)
            region_nodes = state.page_table.node[region_pages]
            for src_node in [int(n) for n in nputil.unique(region_nodes) if n >= 0]:
                if promoted_pages >= budget_pages:
                    break
                if view.tier_of(src_node) <= target_tier:
                    continue  # equal or faster: demotion is pressure-driven only
                pages = region_pages[region_nodes == src_node]
                # A chunk larger than the remaining budget is promoted
                # partially, truncated at a huge-page boundary so THP
                # mappings survive.
                remaining = budget_pages - promoted_pages
                if pages.size > remaining:
                    cut = (remaining // PAGES_PER_HUGE_PAGE) * PAGES_PER_HUGE_PAGE
                    if cut == 0:
                        break
                    pages = pages[:cut]
                if not self._make_space(
                    target_node, int(pages.size), free, hist, state, orders,
                    moved_regions, promoting_score=report.score,
                ):
                    continue
                orders.append(
                    MigrationOrder(
                        pages=pages,
                        src_node=src_node,
                        dst_node=target_node,
                        reason="promotion",
                        score=report.score,
                    )
                )
                moved_regions.add((report.start, report.npages))
                free[target_node] -= pages.size
                free[src_node] += pages.size
                promoted_pages += pages.size
        return orders

    def _assign_targets(
        self, hist: WhiHistogram, state: PlacementState
    ) -> list[tuple[RegionReport, int]]:
        """Match regions to tiers: hottest first into the fastest tiers.

        Ranking is *bucket-quantized*: regions in the same histogram
        bucket are equally hot, and within a bucket the ones already on
        faster tiers come first — so the assignment is stable and equal
        regions never trade places.  Each region's tier ladder follows the
        view of its dominant accessor socket (multi-view, Sec. 6.2);
        per-component capacity is shared across views.  Regions scoring at
        or below ``min_score`` are left wherever they are.
        """
        remaining = {
            n: int(state.frames.capacity_pages(n) * (1.0 - self.config.headroom))
            for n in state.topology.node_ids
        }

        def current_tier(report: RegionReport) -> int:
            if report.node < 0:
                return state.topology.num_tiers + 1
            return self._view_for(report, state).tier_of(report.node)

        ranked = sorted(
            (
                (hist.bucket_index(i), report)
                for i, report in enumerate(hist.reports)
                if report.score > self.config.min_score
            ),
            key=lambda item: (-item[0], current_tier(item[1]), -item[1].score),
        )
        assignment: list[tuple[RegionReport, int]] = []
        for _, report in ranked:
            view = self._view_for(report, state)
            for tier in range(1, view.num_tiers + 1):
                node = view.node_at_tier(tier)
                if remaining[node] >= report.npages:
                    remaining[node] -= report.npages
                    assignment.append((report, node))
                    break
        return assignment

    # -- internals --------------------------------------------------------------

    def _view_for(self, report: RegionReport, state: PlacementState):
        socket = report.dominant_socket if report.dominant_socket >= 0 else self.config.default_socket
        return state.topology.view(socket)

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]

    def _make_space(
        self,
        dst: int,
        need: int,
        free: dict[int, int],
        hist: WhiHistogram,
        state: PlacementState,
        orders: list[MigrationOrder],
        moved_regions: set[tuple[int, int]],
        promoting_score: float = float("inf"),
    ) -> bool:
        """Demote coldest regions out of ``dst`` until ``need`` pages fit.

        Demotion is slow: one tier down at a time, to the next lower tier
        with capacity (Sec. 6.2).  Victims must be colder than the
        promoting region by the displacement margin.  Returns False when
        space cannot be made.
        """
        if free[dst] >= need:
            return True
        view = state.topology.view(self.config.default_socket)
        dst_tier = view.tier_of(dst)
        staged: list[MigrationOrder] = []
        staged_keys: list[tuple[int, int]] = []
        freed = 0
        for report in hist.coldest_first():
            if free[dst] + freed >= need:
                break
            if report.score + self.config.displacement_margin >= promoting_score:
                break  # coldest-first order: no colder victims remain
            key = (report.start, report.npages)
            if key in moved_regions:
                continue
            # A straddling region may hold pages on dst even when its
            # majority lives elsewhere; demote exactly those pages.
            pages = self._pages_on_node(report, state, dst)
            if pages.size == 0:
                continue
            victim_dst = self._next_lower_tier_with_space(
                view, dst_tier, pages.size, free, state
            )
            if victim_dst is None:
                continue
            staged.append(
                MigrationOrder(
                    pages=pages,
                    src_node=dst,
                    dst_node=victim_dst,
                    reason="demotion",
                    score=report.score,
                )
            )
            staged_keys.append(key)
            free[victim_dst] -= pages.size
            freed += pages.size
        if free[dst] + freed < need:
            # Roll back the simulated ledger; orders were not emitted.
            for order in staged:
                free[order.dst_node] += order.npages
            return False
        orders.extend(staged)
        moved_regions.update(staged_keys)
        free[dst] += freed
        return True

    @staticmethod
    def _next_lower_tier_with_space(view, from_tier: int, need: int, free, state) -> int | None:
        for tier in range(from_tier + 1, view.num_tiers + 1):
            node = view.node_at_tier(tier)
            if free[node] >= need:
                return node
        return None
