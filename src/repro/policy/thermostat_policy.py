"""Thermostat's placement policy (two-tier, demotion-driven).

Thermostat allocates everything in the fast tier and *selectively moves
cold pages down*, bounding the slowdown it may cause.  It "cannot support
applications with footprint larger than the fast tier" (Sec. 9) — here the
manager spills the initial allocation when it must, and the policy then
demotes the coldest regions until the fast tier has the configured
headroom, promoting back regions it misjudged (hot ones found below).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.policy.base import MigrationOrder, PlacementState, Policy
from repro.profile.base import ProfileSnapshot, RegionReport
from repro.units import MiB, PAGE_SIZE, PAGES_PER_HUGE_PAGE


@dataclass
class ThermostatPolicyConfig:
    """Thermostat policy tunables.

    Attributes:
        headroom_fraction: free space to maintain on the fast tier.
        migration_budget_bytes: bytes moved per interval; ``None`` scales
            the paper's 200 MB with a 16-region floor.
        scale: machine capacity scale.
        default_socket: view socket defining the fast tier.
        cold_threshold: scores at or below this are demotable.
    """

    headroom_fraction: float = 0.05
    migration_budget_bytes: int | None = None
    scale: float = 1.0
    default_socket: int = 0
    cold_threshold: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.headroom_fraction < 1.0:
            raise ConfigError("headroom_fraction must be in [0, 1)")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")

    @property
    def budget_bytes(self) -> int:
        """Per-interval migration byte budget (scaled paper N, floored)."""
        if self.migration_budget_bytes is not None:
            return self.migration_budget_bytes
        floor = 16 * PAGES_PER_HUGE_PAGE * PAGE_SIZE
        return max(int(200 * MiB * self.scale), floor)


class ThermostatPolicy(Policy):
    """Demote cold pages from the fast tier; recover misjudged hot ones."""

    name = "thermostat"

    def __init__(self, config: ThermostatPolicyConfig | None = None) -> None:
        self.config = config if config is not None else ThermostatPolicyConfig()

    def decide(self, snapshot: ProfileSnapshot, state: PlacementState) -> list[MigrationOrder]:
        cfg = self.config
        view = state.topology.view(cfg.default_socket)
        fast = view.node_at_tier(1)
        budget_pages = cfg.budget_bytes // PAGE_SIZE
        free = {n: state.frames.free_pages(n) for n in state.topology.node_ids}
        target_free = int(state.frames.capacity_pages(fast) * cfg.headroom_fraction)
        orders: list[MigrationOrder] = []
        spent = 0

        # Demote coldest fast-tier regions until the headroom target holds.
        if free[fast] < target_free:
            victims = sorted(
                (r for r in snapshot.reports if r.node == fast and r.score <= cfg.cold_threshold),
                key=lambda r: r.score,
            )
            for victim in victims:
                if free[fast] >= target_free or spent >= budget_pages:
                    break
                pages = self._pages_on_node(victim, state, fast)
                if pages.size == 0:
                    continue
                target = None
                for tier in range(2, view.num_tiers + 1):
                    node = view.node_at_tier(tier)
                    if free[node] >= pages.size:
                        target = node
                        break
                if target is None:
                    break
                orders.append(
                    MigrationOrder(
                        pages=pages, src_node=fast, dst_node=target,
                        reason="demotion", score=victim.score,
                    )
                )
                free[target] -= pages.size
                free[fast] += pages.size
                spent += pages.size

        # Recover hot regions that ended up below (poor man's promotion).
        hot = sorted(
            (r for r in snapshot.reports if r.node >= 0 and r.node != fast and r.score > cfg.cold_threshold),
            key=lambda r: r.score,
            reverse=True,
        )
        for report in hot:
            if spent >= budget_pages:
                break
            pages = self._pages_on_node(report, state, report.node)
            if pages.size == 0 or free[fast] < pages.size:
                continue
            orders.append(
                MigrationOrder(
                    pages=pages, src_node=report.node, dst_node=fast,
                    reason="promotion", score=report.score,
                )
            )
            free[fast] -= pages.size
            free[report.node] += pages.size
            spent += pages.size
        return orders

    @staticmethod
    def _pages_on_node(report: RegionReport, state: PlacementState, node: int) -> np.ndarray:
        pages = np.arange(report.start, report.end, dtype=np.int64)
        return pages[state.page_table.node[pages] == node]
