"""SLO alert rules over the fleet snapshot.

A declarative, dependency-free rules engine: each :class:`AlertRule`
names a metric (a dotted path into
:meth:`~repro.service.scheduler.SchedulerCore.fleet_snapshot`, or one of
a few derived series), a comparison, a threshold, and a hold time
(``for_seconds``) the breach must persist before the rule *fires* —
momentary blips never page.  Transitions emit ``service.alert.firing`` /
``service.alert.resolved`` obs events (so they ride the NDJSON stream
into ``repro watch`` / ``repro fleet``) and append ``alert`` records to
the scheduler journal for post-hoc history (``repro report``).

The engine is evaluated once per scheduler tick against a snapshot the
scheduler already builds — it holds no locks of its own and touches no
hot path.  Custom rule sets load from JSON (``repro serve
--alert-rules``); :func:`default_rules` covers the SLOs the chaos suite
cares about: worker heartbeat staleness, lease-expiry rate, result-cache
corruption, and dead letters.

Derived metrics (everything else is a dotted snapshot path):

* ``worker_staleness_max`` — the stalest worker's heartbeat age;
* ``lease_expiry_rate`` — lease expiries per second over the
  evaluation window (delta of the ``leases_expired`` counter).
"""

from __future__ import annotations

import json
import time

from repro.errors import ConfigError

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}


class AlertRule:
    """One declarative threshold."""

    def __init__(self, name: str, metric: str, op: str, threshold: float,
                 for_seconds: float = 0.0, description: str = "") -> None:
        if op not in _OPS:
            raise ConfigError(
                f"alert rule {name!r}: unknown op {op!r} "
                f"(expected one of {sorted(_OPS)})"
            )
        if for_seconds < 0:
            raise ConfigError(
                f"alert rule {name!r}: for_seconds must be >= 0"
            )
        self.name = name
        self.metric = metric
        self.op = op
        self.threshold = float(threshold)
        self.for_seconds = float(for_seconds)
        self.description = description or f"{metric} {op} {threshold}"

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def as_dict(self) -> dict:
        return {"name": self.name, "metric": self.metric, "op": self.op,
                "threshold": self.threshold,
                "for_seconds": self.for_seconds,
                "description": self.description}


def default_rules(lease_timeout: float = 30.0) -> list[AlertRule]:
    """The stock SLO set, scaled to the scheduler's lease timeout."""
    return [
        AlertRule(
            "worker_stale", "worker_staleness_max", ">",
            3.0 * lease_timeout, for_seconds=0.0,
            description="a worker has not spoken for 3x the lease timeout",
        ),
        AlertRule(
            "lease_expiry_storm", "lease_expiry_rate", ">", 1.0,
            for_seconds=2.0 * lease_timeout,
            description="leases are expiring faster than 1/s sustained",
        ),
        AlertRule(
            "cache_corruption", "cache.corrupt", ">", 0.0,
            description="the result cache quarantined a corrupt entry",
        ),
        AlertRule(
            "dead_letters", "dead_letters", ">", 0.0,
            description="a cell exhausted its attempts",
        ),
    ]


def load_rules(path) -> list[AlertRule]:
    """Rules from a JSON file: a list of AlertRule field objects."""
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    if not isinstance(raw, list):
        raise ConfigError(f"{path}: alert rules must be a JSON list")
    rules = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ConfigError(f"{path}: rule {i} is not an object")
        try:
            rules.append(AlertRule(
                name=str(entry["name"]),
                metric=str(entry["metric"]),
                op=str(entry.get("op", ">")),
                threshold=float(entry["threshold"]),
                for_seconds=float(entry.get("for_seconds", 0.0)),
                description=str(entry.get("description", "")),
            ))
        except KeyError as exc:
            raise ConfigError(
                f"{path}: rule {i} missing field {exc}"
            ) from None
    return rules


def resolve_metric(snapshot: dict, metric: str) -> float | None:
    """Dotted-path lookup into a fleet snapshot (None when absent)."""
    node = snapshot
    for part in metric.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool):
        return float(node)
    return float(node) if isinstance(node, (int, float)) else None


class AlertEngine:
    """Tracks rule state across evaluations; fires/resolves on edges."""

    def __init__(self, rules: list[AlertRule], obs=None, journal=None) -> None:
        self.rules = list(rules)
        self.obs = obs
        self.journal = journal
        #: rule name -> {"breach_since": float|None, "firing": bool,
        #:               "value": float}
        self._state = {rule.name: {"breach_since": None, "firing": False,
                                   "value": 0.0}
                       for rule in self.rules}
        self._last_eval: float | None = None
        self._last_expired = 0.0
        self.fired_total = 0

    # -- derived series --------------------------------------------------------

    def _derive(self, snapshot: dict, now: float) -> dict:
        workers = snapshot.get("workers", {})
        staleness = [w.get("staleness", 0.0) for w in workers.values()]
        expired = float(
            snapshot.get("counters", {}).get("leases_expired", 0))
        window = (now - self._last_eval) if self._last_eval is not None \
            else None
        rate = 0.0
        if window is not None and window > 0:
            rate = max(0.0, expired - self._last_expired) / window
        return {
            "worker_staleness_max": max(staleness) if staleness else 0.0,
            "lease_expiry_rate": rate,
        }

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, snapshot: dict, now: float | None = None) -> list[dict]:
        """One pass over every rule; returns the transitions it made."""
        from repro.obs.events import (
            EV_SERVICE_ALERT_FIRING,
            EV_SERVICE_ALERT_RESOLVED,
        )

        if now is None:
            now = time.monotonic()
        derived = self._derive(snapshot, now)
        self._last_eval = now
        self._last_expired = float(
            snapshot.get("counters", {}).get("leases_expired", 0))
        transitions: list[dict] = []
        for rule in self.rules:
            value = derived.get(rule.metric)
            if value is None:
                value = resolve_metric(snapshot, rule.metric)
            if value is None:
                continue  # metric absent in this snapshot; rule idles
            state = self._state[rule.name]
            state["value"] = value
            if rule.breached(value):
                if state["breach_since"] is None:
                    state["breach_since"] = now
                held = now - state["breach_since"]
                if not state["firing"] and held >= rule.for_seconds:
                    state["firing"] = True
                    self.fired_total += 1
                    entry = {"rule": rule.name, "state": "firing",
                             "metric": rule.metric, "value": value,
                             "threshold": rule.threshold,
                             "description": rule.description}
                    transitions.append(entry)
                    if self.obs is not None:
                        self.obs.emit(EV_SERVICE_ALERT_FIRING, **entry)
                        self.obs.stream_flush(force=True)
                    if self.journal is not None:
                        self.journal.record_alert(entry)
            else:
                state["breach_since"] = None
                if state["firing"]:
                    state["firing"] = False
                    entry = {"rule": rule.name, "state": "resolved",
                             "metric": rule.metric, "value": value,
                             "threshold": rule.threshold,
                             "description": rule.description}
                    transitions.append(entry)
                    if self.obs is not None:
                        self.obs.emit(EV_SERVICE_ALERT_RESOLVED, **entry)
                        self.obs.stream_flush(force=True)
                    if self.journal is not None:
                        self.journal.record_alert(entry)
        return transitions

    def active(self) -> list[dict]:
        """Currently-firing rules (for /metrics, /fleet.json, dashboards)."""
        out = []
        for rule in self.rules:
            state = self._state[rule.name]
            if state["firing"]:
                out.append({"rule": rule.name, "metric": rule.metric,
                            "value": state["value"],
                            "threshold": rule.threshold,
                            "description": rule.description})
        return out


__all__ = ["AlertEngine", "AlertRule", "default_rules", "load_rules",
           "resolve_metric"]
